"""Setup shim: this offline environment lacks the `wheel` package, so
PEP 517 editable installs fail; this file enables pip's legacy
`setup.py develop` path. All metadata lives in pyproject.toml."""
from setuptools import setup

setup()
