"""Registry exporters: Prometheus text format and JSON snapshots.

The Prometheus exporter emits the subset of the text exposition format
that counters, gauges, and summary-style histograms need::

    # TYPE repro_journal_commits counter
    repro_journal_commits 42
    # TYPE repro_dbfs_store_latency summary
    repro_dbfs_store_latency{quantile="0.5"} 1.23e-05
    repro_dbfs_store_latency_sum 0.0042
    repro_dbfs_store_latency_count 42

Histogram quantile values are exported in **seconds** (the Prometheus
base unit for time).  :func:`parse_prometheus` is the matching reader —
used by the test suite and the CI gate to prove the export actually
parses rather than eyeballing it.
"""

from __future__ import annotations

import re
from typing import Dict, Optional, Tuple

from .registry import MetricsRegistry

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)$"
)
_LABEL = re.compile(r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>[^"]*)"')

_QUANTILES = (("0.5", 0.50), ("0.95", 0.95), ("0.99", 0.99))


def sanitize_metric_name(name: str, prefix: str = "repro") -> str:
    """Map a dotted registry name onto a legal Prometheus name."""
    flat = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    candidate = f"{prefix}_{flat}" if prefix else flat
    if not _NAME_OK.match(candidate):
        candidate = "_" + candidate
    return candidate


def to_prometheus(registry: MetricsRegistry, prefix: str = "repro",
                  refresh: bool = True) -> str:
    """Render the registry in the Prometheus text exposition format."""
    if refresh:
        registry.collect()
    lines = []
    for name in sorted(registry.counters):
        metric = sanitize_metric_name(name, prefix)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {registry.counters[name].value}")
    for name in sorted(registry.gauges):
        metric = sanitize_metric_name(name, prefix)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {registry.gauges[name].value}")
    for name in sorted(registry.histograms):
        histogram = registry.histograms[name]
        metric = sanitize_metric_name(name, prefix) + "_latency"
        lines.append(f"# TYPE {metric} summary")
        for label, fraction in _QUANTILES:
            seconds = histogram.percentile(fraction) / 1e9
            lines.append(f'{metric}{{quantile="{label}"}} {seconds:.9g}')
        lines.append(f"{metric}_sum {histogram.sum_ns / 1e9:.9g}")
        lines.append(f"{metric}_count {histogram.count}")
    return "\n".join(lines) + "\n"


def parse_prometheus(text: str) -> Dict[Tuple[str, Optional[Tuple[Tuple[str, str], ...]]], float]:
    """Parse Prometheus text back into ``{(name, labels): value}``.

    ``labels`` is a sorted tuple of (key, value) pairs, or ``None`` when
    the sample carries no labels.  Raises ``ValueError`` on any line
    that is neither a comment, blank, nor a well-formed sample — which
    is exactly what the CI gate wants.
    """
    samples: Dict[Tuple[str, Optional[Tuple[Tuple[str, str], ...]]], float] = {}
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_LINE.match(line)
        if match is None:
            raise ValueError(f"line {line_no}: not a valid sample: {raw!r}")
        labels_text = match.group("labels")
        labels: Optional[Tuple[Tuple[str, str], ...]] = None
        if labels_text is not None:
            pairs = _LABEL.findall(labels_text)
            rebuilt = ",".join(f'{k}="{v}"' for k, v in pairs)
            if rebuilt != labels_text.strip().rstrip(","):
                raise ValueError(
                    f"line {line_no}: malformed labels: {labels_text!r}")
            labels = tuple(sorted(pairs))
        try:
            value = float(match.group("value"))
        except ValueError as exc:
            raise ValueError(
                f"line {line_no}: bad value {match.group('value')!r}"
            ) from exc
        samples[(match.group("name"), labels)] = value
    return samples


def snapshot(registry: MetricsRegistry, refresh: bool = True) -> Dict[str, object]:
    """JSON-safe registry snapshot (collectors run unless refresh=False)."""
    return registry.as_dict(refresh=refresh)
