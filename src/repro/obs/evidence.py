"""Tamper-evident evidence trail: hash-chained, append-only JSONL.

The audit engine (``repro.obs.audit``) and the continuous monitors
(``repro.obs.monitors``) both *claim* things about a live system —
"no PD outlived its TTL", "the residue sweep found nothing".  A
regulator has no reason to trust claims whose history the operator can
quietly rewrite, so every claim is appended to an
:class:`EvidenceTrail`: each entry carries the SHA-256 of its
predecessor, the whole chain re-verifies from the genesis hash, and
flipping a single byte anywhere in a persisted trail breaks
:meth:`EvidenceTrail.verify_chain` (see
``tests/obs/test_evidence.py`` for the property test).

Entries are canonical-JSON hashed (sorted keys, fixed separators) so a
trail exported to JSONL and re-loaded verifies bit-for-bit.  The trail
is thread-safe: monitors append from the engine's worker threads while
the audit engine reads.
"""

from __future__ import annotations

import copy
import hashlib
import json
import threading
from typing import Callable, Dict, Iterable, List, Mapping, Optional

from .. import errors

#: The hash a chain starts from (no predecessor).
GENESIS_HASH = "0" * 64


class EvidenceChainError(errors.RgpdOSError):
    """A trail failed verification (tampered, truncated, reordered)."""


def _canonical(payload: Mapping[str, object]) -> str:
    """Deterministic JSON: the byte form the chain hashes are over."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def entry_hash(entry: Mapping[str, object]) -> str:
    """SHA-256 over the canonical entry *minus* its own ``hash`` field.

    The predecessor's hash is part of the hashed content (``prev``), so
    the digest commits to the whole history, not just this entry.
    """
    unsealed = {key: value for key, value in entry.items() if key != "hash"}
    return hashlib.sha256(_canonical(unsealed).encode("utf-8")).hexdigest()


class EvidenceTrail:
    """Append-only, hash-chained list of evidence entries.

    Each entry is a JSON-safe dict::

        {"seq": 3, "at": 120.5, "kind": "monitor", "source": "residue",
         "payload": {...}, "prev": "<sha256>", "hash": "<sha256>"}

    ``append`` seals the entry; nothing mutates a sealed entry.  An
    optional ``path`` makes the trail durable: every append is also
    written through to the JSONL file, so the on-disk trail is exactly
    the in-memory one (and :meth:`verify_file` checks it standalone).
    """

    def __init__(self, path: Optional[str] = None) -> None:
        self._entries: List[Dict[str, object]] = []
        self._lock = threading.Lock()
        self._path = path
        self._handle = open(path, "a", encoding="utf-8") if path else None

    # -- writing ---------------------------------------------------------

    def append(
        self,
        kind: str,
        source: str,
        payload: Mapping[str, object],
        at: float,
    ) -> Dict[str, object]:
        """Seal one entry onto the chain and return it."""
        with self._lock:
            prev = self._entries[-1]["hash"] if self._entries else GENESIS_HASH
            entry: Dict[str, object] = {
                "seq": len(self._entries),
                "at": at,
                "kind": kind,
                "source": source,
                "payload": copy.deepcopy(dict(payload)),
                "prev": prev,
            }
            entry["hash"] = entry_hash(entry)
            self._entries.append(entry)
            if self._handle is not None:
                self._handle.write(_canonical(entry) + "\n")
                self._handle.flush()
            return copy.deepcopy(entry)

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    # -- reading ---------------------------------------------------------

    def entries(self) -> List[Dict[str, object]]:
        # Deep copies: a sealed entry must stay immutable even if the
        # caller edits what it got back (payloads nest dicts/lists).
        with self._lock:
            return copy.deepcopy(self._entries)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def head(self) -> str:
        """The latest hash — quote it externally to anchor the chain."""
        with self._lock:
            return self._entries[-1]["hash"] if self._entries else GENESIS_HASH

    def tail(self, count: int) -> List[Dict[str, object]]:
        with self._lock:
            return copy.deepcopy(self._entries[-count:])

    def find(
        self, predicate: Callable[[Mapping[str, object]], bool]
    ) -> List[Dict[str, object]]:
        with self._lock:
            return copy.deepcopy(
                [e for e in self._entries if predicate(e)])

    # -- verification ----------------------------------------------------

    def verify_chain(self) -> int:
        """Re-verify every link; returns the entry count.

        Raises :class:`EvidenceChainError` naming the first bad entry
        on any tamper: edited payload, re-ordered entries, truncation
        in the middle, or a forged predecessor hash.
        """
        with self._lock:
            return verify_entries(self._entries)

    # -- persistence -----------------------------------------------------

    def export_jsonl(self, path: str) -> int:
        """Write the whole trail to ``path``; returns the entry count."""
        with self._lock:
            with open(path, "w", encoding="utf-8") as handle:
                for entry in self._entries:
                    handle.write(_canonical(entry) + "\n")
            return len(self._entries)

    @classmethod
    def load_jsonl(cls, path: str) -> "EvidenceTrail":
        """Load and verify a persisted trail (round-trips with export)."""
        trail = cls()
        with open(path, "rb") as handle:
            for line_no, raw in enumerate(handle, start=1):
                raw = raw.strip()
                if not raw:
                    continue
                try:
                    entry = json.loads(raw.decode("utf-8"))
                except (ValueError, UnicodeDecodeError) as exc:
                    raise EvidenceChainError(
                        f"{path}:{line_no}: not canonical JSON: {exc}"
                    ) from exc
                trail._entries.append(entry)
        trail.verify_chain()
        return trail

    @staticmethod
    def verify_file(path: str) -> int:
        """Standalone check of a persisted trail; returns entry count."""
        return len(EvidenceTrail.load_jsonl(path).entries())


def verify_entries(entries: Iterable[Mapping[str, object]]) -> int:
    """Verify an entry sequence as a chain (shared by trail and file)."""
    prev = GENESIS_HASH
    count = 0
    for index, entry in enumerate(entries):
        for field in ("seq", "at", "kind", "source", "payload",
                      "prev", "hash"):
            if field not in entry:
                raise EvidenceChainError(
                    f"entry {index}: missing field {field!r}"
                )
        if entry["seq"] != index:
            raise EvidenceChainError(
                f"entry {index}: sequence says {entry['seq']!r} "
                f"(reordered or truncated mid-chain)"
            )
        if entry["prev"] != prev:
            raise EvidenceChainError(
                f"entry {index}: predecessor hash mismatch"
            )
        expected = entry_hash(entry)
        if entry["hash"] != expected:
            raise EvidenceChainError(
                f"entry {index}: content hash mismatch (tampered)"
            )
        prev = entry["hash"]
        count += 1
    return count
