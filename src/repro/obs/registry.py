"""Named metrics: counters, gauges, histograms, and timers.

The :class:`MetricsRegistry` is the single store every layer publishes
into.  Instruments are created lazily by name (``registry.counter(
"journal.commits")``), so call sites never coordinate; asking twice for
the same name returns the same object.

Two properties matter for the hot paths:

* **disabled mode is near-free** — a disabled registry hands out shared
  null singletons whose methods are empty; call sites can also cache
  ``registry.histogram(...) if registry.enabled else None`` and guard
  with ``is not None`` so the per-op cost is one attribute test.
* **pull-based gauges** — a layer can register a *collector* callback
  that publishes its current state (cache hit counts, live journal
  records, ...) only when somebody actually reads the registry via
  :meth:`MetricsRegistry.collect`.  Steady-state operation pays nothing
  for stats that are only interesting at snapshot time.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional, Union

from .histogram import LatencyHistogram

Number = Union[int, float]


class Counter:
    """A monotonically increasing named value.

    ``inc`` is locked: ``value += amount`` is a read-modify-write, and
    the request engine runs instrumented code on many threads — an
    unlocked counter silently loses increments under contention.
    """

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: Number = 1) -> None:
        with self._lock:
            self.value += amount


class Gauge:
    """A named value that can go up and down (locked, like Counter)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value: Number = 0
        self._lock = threading.Lock()

    def set(self, value: Number) -> None:
        with self._lock:
            self.value = value

    def inc(self, amount: Number = 1) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: Number = 1) -> None:
        with self._lock:
            self.value -= amount


class Timer:
    """Context manager recording its wall time into a histogram."""

    __slots__ = ("histogram", "_start_ns")

    def __init__(self, histogram: LatencyHistogram):
        self.histogram = histogram
        self._start_ns = 0

    def __enter__(self) -> "Timer":
        self._start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, *exc_info) -> bool:
        self.histogram.observe(time.perf_counter_ns() - self._start_ns)
        return False


class _NullCounter:
    __slots__ = ()
    name = ""
    value = 0

    def inc(self, amount: Number = 1) -> None:
        pass


class _NullGauge:
    __slots__ = ()
    name = ""
    value = 0

    def set(self, value: Number) -> None:
        pass

    def inc(self, amount: Number = 1) -> None:
        pass

    def dec(self, amount: Number = 1) -> None:
        pass


class _NullHistogram:
    __slots__ = ()
    name = ""
    count = 0
    sum_ns = 0
    max_ns = 0
    min_ns = None
    mean_ns = 0.0

    def observe(self, duration_ns: int) -> None:
        pass

    def percentile(self, fraction: float) -> float:
        return 0.0

    def summary(self) -> Dict[str, float]:
        return {"count": 0, "p50_us": 0.0, "p95_us": 0.0,
                "p99_us": 0.0, "max_us": 0.0, "mean_us": 0.0}

    def reset(self) -> None:
        pass


class _NullTimer:
    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


NULL_COUNTER = _NullCounter()
NULL_GAUGE = _NullGauge()
NULL_HISTOGRAM = _NullHistogram()
NULL_TIMER = _NullTimer()


class MetricsRegistry:
    """Lazy, name-keyed store of counters, gauges, and histograms."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, LatencyHistogram] = {}
        self._collectors: List[Callable[["MetricsRegistry"], None]] = []
        # Guards lazy instrument creation: without it two threads asking
        # for the same name could each build an instrument, and whoever
        # publishes second silently orphans the other's samples.
        # Reentrant because collectors run under it and may themselves
        # ask the registry for gauges to publish into.
        self._lock = threading.RLock()

    # -- instrument accessors -------------------------------------------

    def counter(self, name: str) -> Counter:
        if not self.enabled:
            return NULL_COUNTER  # type: ignore[return-value]
        counter = self.counters.get(name)
        if counter is None:
            with self._lock:
                counter = self.counters.get(name)
                if counter is None:
                    counter = self.counters[name] = Counter(name)
        return counter

    def gauge(self, name: str) -> Gauge:
        if not self.enabled:
            return NULL_GAUGE  # type: ignore[return-value]
        gauge = self.gauges.get(name)
        if gauge is None:
            with self._lock:
                gauge = self.gauges.get(name)
                if gauge is None:
                    gauge = self.gauges[name] = Gauge(name)
        return gauge

    def histogram(self, name: str) -> LatencyHistogram:
        if not self.enabled:
            return NULL_HISTOGRAM  # type: ignore[return-value]
        histogram = self.histograms.get(name)
        if histogram is None:
            with self._lock:
                histogram = self.histograms.get(name)
                if histogram is None:
                    histogram = self.histograms[name] = LatencyHistogram(name)
        return histogram

    def timer(self, name: str) -> Union[Timer, _NullTimer]:
        if not self.enabled:
            return NULL_TIMER
        return Timer(self.histogram(name))

    # -- convenience reads ----------------------------------------------

    def counter_value(self, name: str, default: Number = 0) -> Number:
        counter = self.counters.get(name)
        return counter.value if counter is not None else default

    def gauge_value(self, name: str, default: Number = 0) -> Number:
        gauge = self.gauges.get(name)
        return gauge.value if gauge is not None else default

    # -- collectors ------------------------------------------------------

    def register_collector(
            self, callback: Callable[["MetricsRegistry"], None]) -> None:
        """Register a pull-based publisher run on every :meth:`collect`."""
        if self.enabled:
            with self._lock:
                self._collectors.append(callback)

    def collect(self) -> None:
        """Run every registered collector so gauges reflect live state."""
        with self._lock:
            collectors = list(self._collectors)
        for callback in collectors:
            callback(self)

    # -- export ----------------------------------------------------------

    def as_dict(self, refresh: bool = True) -> Dict[str, Dict[str, object]]:
        """A JSON-safe snapshot of every instrument in the registry."""
        if not self.enabled:
            return {"counters": {}, "gauges": {}, "histograms": {}}
        if refresh:
            self.collect()
        # Snapshot the instrument maps under the lock so a worker
        # creating a new instrument mid-export cannot perturb the sort.
        with self._lock:
            counters = sorted(self.counters.items())
            gauges = sorted(self.gauges.items())
            histograms = sorted(self.histograms.items())
        return {
            "counters": {name: c.value for name, c in counters},
            "gauges": {name: g.value for name, g in gauges},
            "histograms": {name: h.summary() for name, h in histograms},
        }

    def reset(self) -> None:
        for counter in self.counters.values():
            counter.value = 0
        for gauge in self.gauges.values():
            gauge.value = 0
        for histogram in self.histograms.values():
            histogram.reset()
