"""Article-indexed compliance audit engine.

The paper's pitch is that the OS can *demonstrate* GDPR compliance,
not merely enforce it: § 4's processing log "logs every executed
processing", and the design replaces sysadmin eyeballs with
machine-checked obligations.  This module is the demonstrating half:
:class:`AuditEngine` evaluates a live :class:`~repro.core.system.RgpdOS`
against a **control map** keyed by GDPR article —

* Art. 6   — lawful basis declared (and consent actually granted) for
  every purpose that processed PD;
* Art. 5(1)(c) — data minimisation: purposes scoped to views, decode
  counters showing only projected fields were materialised;
* Art. 5(1)(e) — storage limitation: no live membrane past its TTL;
* Art. 32  — security of processing: outsider probes refused at every
  DBFS entry point (probed negatively, not trusted);
* Art. 33  — breach notification: every notifiable breach report is
  either notified or inside its 72-hour window;
* Art. 30  — records of processing: the log covers every subject that
  holds PD and every entry went through the PS.

Each control pulls concrete :class:`Evidence` — processing-log
entries, telemetry counters and gauges, membrane state, journal
stats — and every evidence item carries a ``ref`` that
:func:`resolve_evidence` can re-resolve against the live system, so a
report is checkable, not just readable.  The pre-existing
:class:`~repro.core.compliance.ComplianceAuditor` rules (membrane
presence, erasure, sensitive-field separation, ...) are *folded into*
the same report rather than duplicated: each of its findings becomes
one more article-indexed control result.

Reports render as JSON (``to_dict``) and regulator-ready markdown
(``to_markdown``), and every audit run seals a summary entry into the
system's hash-chained :class:`~repro.obs.evidence.EvidenceTrail`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, TYPE_CHECKING

from .. import errors
from ..core.active_data import AccessCredential
from ..core.breach import NOTIFICATION_DEADLINE_SECONDS
from ..core.membrane import LAWFUL_BASES

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.system import RgpdOS

STATUS_PASS = "pass"
STATUS_WARN = "warn"
STATUS_FAIL = "fail"

#: Metric evidence attached to each folded ComplianceAuditor rule, so
#: even the structural probes carry a registry-resolvable reference.
_FOLDED_RULE_METRICS = {
    "dbfs-ded-only": "rgpdos.dbfs.denied_accesses",
    "every-pd-has-membrane": "rgpdos.dbfs.records",
    "erased-pd-unreadable": "rgpdos.dbfs.deletes",
    "all-processing-via-ps": "rgpdos.audit.log_entries",
}
_FOLDED_DEFAULT_METRIC = "rgpdos.dbfs.records"


@dataclass(frozen=True)
class Evidence:
    """One concrete, re-resolvable piece of evidence.

    ``ref`` is a ``kind:locator`` string :func:`resolve_evidence`
    understands (``metric:...``, ``log:entry:...``, ``membrane:...``,
    ``purpose:...``, ``journal:shard:...``, ``breach:...``,
    ``trail:...``); ``data`` is the value observed at audit time.
    """

    kind: str
    ref: str
    summary: str
    data: object = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "ref": self.ref,
            "summary": self.summary,
            "data": self.data,
        }


@dataclass
class ControlResult:
    """One control's verdict plus the evidence it rests on."""

    control_id: str
    article: str
    title: str
    status: str
    detail: str = ""
    evidence: List[Evidence] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return {
            "control_id": self.control_id,
            "article": self.article,
            "title": self.title,
            "status": self.status,
            "detail": self.detail,
            "evidence": [item.to_dict() for item in self.evidence],
        }


@dataclass
class AuditReport:
    """All control results of one audit run, article-indexed."""

    at: float
    operator: str
    controls: List[ControlResult] = field(default_factory=list)
    evidence_head: str = ""

    @property
    def ok(self) -> bool:
        return not any(c.status == STATUS_FAIL for c in self.controls)

    def counts(self) -> Dict[str, int]:
        counts = {STATUS_PASS: 0, STATUS_WARN: 0, STATUS_FAIL: 0}
        for control in self.controls:
            counts[control.status] = counts.get(control.status, 0) + 1
        return counts

    def by_article(self) -> Dict[str, List[ControlResult]]:
        grouped: Dict[str, List[ControlResult]] = {}
        for control in self.controls:
            grouped.setdefault(control.article, []).append(control)
        return grouped

    def failures(self) -> List[ControlResult]:
        return [c for c in self.controls if c.status == STATUS_FAIL]

    def summary(self) -> str:
        counts = self.counts()
        status = "COMPLIANT" if self.ok else "NON-COMPLIANT"
        return (
            f"{status}: {counts[STATUS_PASS]} pass, "
            f"{counts[STATUS_WARN]} warn, {counts[STATUS_FAIL]} fail "
            f"across {len(self.controls)} controls"
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "report": "rgpdOS article-indexed compliance audit",
            "at": self.at,
            "operator": self.operator,
            "summary": self.summary(),
            "counts": self.counts(),
            "compliant": self.ok,
            "evidence_head": self.evidence_head,
            "controls": [control.to_dict() for control in self.controls],
        }

    def to_markdown(self) -> str:
        """Regulator-ready rendering, grouped by article."""
        lines = [
            "# GDPR compliance audit",
            "",
            f"- **Operator:** {self.operator}",
            f"- **Audited at:** t={self.at:.3f} (simulated seconds)",
            f"- **Verdict:** {self.summary()}",
            f"- **Evidence chain head:** `{self.evidence_head or 'empty'}`",
            "",
        ]
        for article, controls in sorted(self.by_article().items()):
            lines.append(f"## {article}")
            lines.append("")
            for control in controls:
                marker = {STATUS_PASS: "PASS", STATUS_WARN: "WARN",
                          STATUS_FAIL: "FAIL"}[control.status]
                lines.append(f"### [{marker}] {control.title}")
                lines.append("")
                if control.detail:
                    lines.append(control.detail)
                    lines.append("")
                if control.evidence:
                    lines.append("Evidence:")
                    for item in control.evidence:
                        lines.append(
                            f"- `{item.ref}` — {item.summary}"
                        )
                    lines.append("")
        return "\n".join(lines)


class AuditEngine:
    """Evaluates the control map against a live system.

    Construct once per :class:`RgpdOS` (the system does this itself as
    ``system.audit_engine``); each :meth:`run` produces a fresh
    :class:`AuditReport`, refreshes the ``rgpdos.audit.*`` gauges, and
    seals a summary entry into the system's evidence trail.
    """

    def __init__(self, system: "RgpdOS") -> None:
        self.system = system
        self._ded = AccessCredential(holder="audit-engine", is_ded=True)
        self.last_report: Optional[AuditReport] = None

    # -- the control map --------------------------------------------------

    def control_map(self) -> List[Callable[[], ControlResult]]:
        return [
            self._control_lawful_basis,
            self._control_minimisation,
            self._control_retention,
            self._control_security,
            self._control_breach_notification,
            self._control_records_of_processing,
        ]

    def run(self) -> AuditReport:
        """Run every control; never raises — crashes become failures."""
        system = self.system
        self._publish_observables()
        report = AuditReport(
            at=system.clock.now(), operator=system.operator_name
        )
        for control in self.control_map():
            try:
                report.controls.append(control())
            except errors.RgpdOSError as exc:
                report.controls.append(ControlResult(
                    control_id=control.__name__.replace("_control_", "art-"),
                    article="-",
                    title=control.__name__,
                    status=STATUS_FAIL,
                    detail=f"control crashed: {exc}",
                ))
        report.controls.extend(self._folded_auditor_controls())
        self._publish_verdicts(report)
        trail_entry = system.evidence.append(
            kind="audit",
            source="audit-engine",
            payload={
                "summary": report.counts(),
                "compliant": report.ok,
                "controls": {
                    c.control_id: c.status for c in report.controls
                },
            },
            at=report.at,
        )
        report.evidence_head = trail_entry["hash"]
        self.last_report = report
        return report

    # -- observable gauges -------------------------------------------------

    def _publish_observables(self) -> None:
        """Refresh the ``rgpdos.audit.*`` gauges the controls cite.

        Publishing *before* evidence is gathered means every
        ``metric:`` ref in the report resolves against the registry at
        the values the verdicts were computed from.
        """
        system = self.system
        registry = system.telemetry.registry
        now = system.clock.now()
        overdue = self._ttl_overdue()
        registry.gauge("rgpdos.audit.ttl_overdue").set(len(overdue))
        registry.gauge("rgpdos.audit.log_entries").set(len(system.log))
        status = self._breach_status(now)
        registry.gauge("rgpdos.audit.breach_notifiable").set(
            status["notifiable"])
        registry.gauge("rgpdos.audit.breach_overdue").set(status["overdue"])
        registry.gauge("rgpdos.audit.breach_countdown_seconds").set(
            status["countdown_seconds"])

    def _publish_verdicts(self, report: AuditReport) -> None:
        registry = self.system.telemetry.registry
        counts = report.counts()
        registry.gauge("rgpdos.audit.last_run").set(report.at)
        registry.gauge("rgpdos.audit.controls_pass").set(counts[STATUS_PASS])
        registry.gauge("rgpdos.audit.controls_warn").set(counts[STATUS_WARN])
        registry.gauge("rgpdos.audit.controls_fail").set(counts[STATUS_FAIL])

    # -- shared observations ----------------------------------------------

    def _membranes(self):
        return self.system.dbfs.iter_membranes(self._ded)

    def _ttl_overdue(self) -> List[str]:
        """Live membranes past their TTL, on the canonical inclusive
        boundary (:meth:`Membrane.is_expired`): a PD exactly at its
        deadline is already overdue here, exactly as the DED already
        refuses to serve it and the expiry daemon already erases it."""
        now = self.system.clock.now()
        return [
            uid
            for uid, membrane in self._membranes()
            if not membrane.erased and membrane.is_expired(now)
        ]

    def _breach_status(self, now: float) -> Dict[str, float]:
        monitor = self.system.breach_monitor
        pending = monitor.pending_notifications()
        overdue = [r for r in pending if r.notification_deadline < now]
        countdown = min(
            (r.notification_deadline - now for r in pending
             if r.notification_deadline >= now),
            default=0.0,
        )
        return {
            "notifiable": len(monitor.notifiable_reports()),
            "pending": len(pending),
            "overdue": len(overdue),
            "countdown_seconds": countdown,
        }

    # -- controls ----------------------------------------------------------

    def _control_lawful_basis(self) -> ControlResult:
        """Art. 6: every purpose names a lawful basis; consent-based
        purposes that processed PD are actually granted somewhere."""
        system = self.system
        purposes = dict(system.ps._purposes)
        bad_basis = [
            name for name, p in purposes.items()
            if p.basis not in LAWFUL_BASES
        ]
        granted: Dict[str, int] = {name: 0 for name in purposes}
        for _uid, membrane in self._membranes():
            if membrane.erased:
                continue
            for purpose, decision in membrane.consents.items():
                if purpose in granted and decision.scope != "none":
                    granted[purpose] += 1
        ungrounded = [
            name for name, p in purposes.items()
            if p.basis == "consent"
            and granted.get(name, 0) == 0
            and any(e.outcome == "completed"
                    for e in system.log.for_purpose(name))
        ]
        evidence = [
            Evidence(
                kind="telemetry",
                ref="metric:rgpdos.dbfs.subjects",
                summary="subjects whose membranes were inspected",
                data=len(system.dbfs.list_subjects()),
            )
        ]
        for name, purpose in sorted(purposes.items()):
            evidence.append(Evidence(
                kind="purpose",
                ref=f"purpose:{name}",
                summary=(f"basis={purpose.basis}, "
                         f"granted by {granted.get(name, 0)} membrane(s)"),
                data={"basis": purpose.basis,
                      "granted_membranes": granted.get(name, 0)},
            ))
            entries = system.log.for_purpose(name)
            if entries:
                evidence.append(Evidence(
                    kind="processing_log",
                    ref=f"log:entry:{entries[0].entry_id}",
                    summary=f"first logged processing under {name!r}",
                    data=entries[0].outcome,
                ))
        if bad_basis:
            status, detail = STATUS_FAIL, (
                f"purposes with unknown lawful basis: {bad_basis}"
            )
        elif ungrounded:
            status, detail = STATUS_WARN, (
                f"consent-based purposes processed PD but no live membrane "
                f"grants them (consent may have been withdrawn since): "
                f"{ungrounded}"
            )
        else:
            status, detail = STATUS_PASS, (
                f"all {len(purposes)} purposes carry a lawful basis "
                f"({sorted(LAWFUL_BASES)})"
            )
        return ControlResult(
            control_id="art6-lawful-basis", article="Art. 6",
            title="Lawful basis declared for every purpose",
            status=status, detail=detail, evidence=evidence,
        )

    def _control_minimisation(self) -> ControlResult:
        """Art. 5(1)(c): purposes scoped to views; decode counters show
        the store materialises only projected fields."""
        system = self.system
        purposes = dict(system.ps._purposes)
        unknown_types: List[str] = []
        whole_type_consent: List[str] = []
        view_scoped = 0
        for name, purpose in purposes.items():
            for type_name, view in purpose.uses:
                try:
                    pd_type = system.dbfs.get_type(type_name)
                except errors.RgpdOSError:
                    unknown_types.append(f"{name} uses {type_name}")
                    continue
                if view is not None:
                    view_scoped += 1
                elif purpose.basis == "consent" and pd_type.sensitive_fields:
                    whole_type_consent.append(f"{name} uses {type_name}")
        stats = system.dbfs.stats
        registry = system.telemetry.registry
        registry.gauge("rgpdos.audit.partial_decodes").set(
            stats.partial_decodes)
        registry.gauge("rgpdos.audit.full_decodes").set(stats.full_decodes)
        evidence = [
            Evidence(
                kind="telemetry",
                ref="metric:rgpdos.audit.partial_decodes",
                summary="rows decoded partially (projected fields only)",
                data=stats.partial_decodes,
            ),
            Evidence(
                kind="telemetry",
                ref="metric:rgpdos.audit.full_decodes",
                summary="rows fully decoded",
                data=stats.full_decodes,
            ),
        ]
        for name, purpose in sorted(purposes.items()):
            views = [f"{t} via {v}" if v else f"{t} (whole type)"
                     for t, v in purpose.uses]
            evidence.append(Evidence(
                kind="purpose", ref=f"purpose:{name}",
                summary="uses " + (", ".join(views) or "nothing"),
                data=list(purpose.uses),
            ))
        if unknown_types:
            status, detail = STATUS_FAIL, (
                f"purposes using undeclared types: {unknown_types}"
            )
        elif whole_type_consent:
            status, detail = STATUS_WARN, (
                f"consent-based purposes using whole sensitive types "
                f"(no view scope): {whole_type_consent}"
            )
        else:
            status, detail = STATUS_PASS, (
                f"{view_scoped} view-scoped purpose uses; decode path "
                f"materialised {stats.partial_decodes} partial vs "
                f"{stats.full_decodes} full rows"
            )
        return ControlResult(
            control_id="art5c-minimisation", article="Art. 5(1)(c)",
            title="Data minimisation via view-scoped purposes",
            status=status, detail=detail, evidence=evidence,
        )

    def _control_retention(self) -> ControlResult:
        """Art. 5(1)(e): no live PD outlives its TTL.

        The verdict rests on *proactive* enforcement: the expiry
        daemon's sealed retention waves in the evidence trail prove the
        OS erased overdue PD because its timers fired — not because a
        request happened to touch an expired record and the DED refused
        it lazily.  A clean membrane scan with sealed waves behind it
        passes; a clean scan with no enforcement history still passes
        but says so honestly in the detail.
        """
        overdue = self._ttl_overdue()
        evidence = [
            Evidence(
                kind="telemetry",
                ref="metric:rgpdos.audit.ttl_overdue",
                summary="live membranes past their retention TTL",
                data=len(overdue),
            ),
        ]
        registry = self.system.telemetry.registry
        residue = registry.gauges.get("rgpdos.residue.device_blocks")
        if residue is not None:
            evidence.append(Evidence(
                kind="telemetry",
                ref="metric:rgpdos.residue.device_blocks",
                summary="device residue blocks found by the last "
                        "completed scrubber sweep",
                data=residue.value,
            ))
        # Sealed erasure waves: the daemon's proof-of-work.  The trail
        # is hash-chained, so each cited seq is tamper-evident.
        waves = self.system.evidence.find(
            lambda entry: entry["kind"] == "retention-wave"
        )
        waves_erased = sum(
            int(entry["payload"].get("erased", 0)) for entry in waves
        )
        for entry in waves[-3:]:
            evidence.append(Evidence(
                kind="trail",
                ref=f"trail:{entry['seq']}",
                summary="sealed expiry-daemon erasure wave "
                        f"({entry['payload'].get('erased', 0)} erased)",
                data=entry["hash"],
            ))
        for uid in overdue[:5]:
            evidence.append(Evidence(
                kind="membrane", ref=f"membrane:{uid}",
                summary="membrane past TTL", data=uid,
            ))
        if overdue:
            status = STATUS_FAIL
            detail = f"{len(overdue)} PD record(s) past TTL: {overdue[:5]}"
        elif waves:
            status = STATUS_PASS
            detail = (
                "no live PD past its retention TTL; proactively enforced "
                f"by the expiry daemon ({len(waves)} sealed wave(s), "
                f"{waves_erased} PD erased)"
            )
        else:
            status = STATUS_PASS
            detail = (
                "no live PD past its retention TTL (no expiry-daemon "
                "waves sealed yet — nothing has expired, or the daemon "
                "is not running)"
            )
        return ControlResult(
            control_id="art5e-retention", article="Art. 5(1)(e)",
            title="Storage limitation (TTL retention)",
            status=status, detail=detail, evidence=evidence,
        )

    def _control_security(self) -> ControlResult:
        """Art. 32: outsider probes refused (reuses the auditor's
        negative probe rather than trusting the refusal code)."""
        system = self.system
        finding = system.auditor._check_dbfs_ded_only()
        denied = system.dbfs.stats.denied_accesses
        evidence = [
            Evidence(
                kind="telemetry",
                ref="metric:rgpdos.dbfs.denied_accesses",
                summary="non-DED access attempts refused at the DBFS "
                        "boundary (includes this audit's probes)",
                data=denied,
            ),
            Evidence(
                kind="auditor", ref="metric:rgpdos.dbfs.records",
                summary=f"probe outcome: {finding.detail}",
                data=finding.ok,
            ),
        ]
        return ControlResult(
            control_id="art32-security", article="Art. 32",
            title="Security of processing (DED-only mediation)",
            status=STATUS_PASS if finding.ok else STATUS_FAIL,
            detail=finding.detail, evidence=evidence,
        )

    def _control_breach_notification(self) -> ControlResult:
        """Art. 33: notifiable breaches notified inside 72 hours."""
        system = self.system
        now = system.clock.now()
        status_map = self._breach_status(now)
        monitor = system.breach_monitor
        evidence = [
            Evidence(
                kind="telemetry",
                ref="metric:rgpdos.audit.breach_countdown_seconds",
                summary="seconds left on the tightest pending "
                        "Art. 33 notification deadline",
                data=status_map["countdown_seconds"],
            ),
            Evidence(
                kind="telemetry",
                ref="metric:rgpdos.audit.breach_notifiable",
                summary="notifiable breach reports on record",
                data=status_map["notifiable"],
            ),
        ]
        for index, report in enumerate(monitor.reports):
            if report.notifiable:
                evidence.append(Evidence(
                    kind="breach", ref=f"breach:{index}",
                    summary=report.summary(),
                    data={"deadline": report.notification_deadline,
                          "notified_at": report.notified_at},
                ))
        if status_map["overdue"]:
            status = STATUS_FAIL
            detail = (
                f"{status_map['overdue']} notifiable breach report(s) "
                f"past the {NOTIFICATION_DEADLINE_SECONDS / 3600:.0f}h "
                f"deadline without notification"
            )
        elif status_map["pending"]:
            status = STATUS_WARN
            detail = (
                f"{status_map['pending']} notifiable breach(es) awaiting "
                f"notification; {status_map['countdown_seconds']:.0f}s left"
            )
        else:
            status = STATUS_PASS
            detail = (
                f"{status_map['notifiable']} notifiable report(s), "
                f"none pending past notification"
            )
        return ControlResult(
            control_id="art33-breach", article="Art. 33",
            title="Breach notification within 72 hours",
            status=status, detail=detail, evidence=evidence,
        )

    def _control_records_of_processing(self) -> ControlResult:
        """Art. 30: the processing log is the record of processing
        activities — complete per subject, all entries via the PS."""
        system = self.system
        rogue = [e.entry_id for e in system.log.entries() if not e.via_ps]
        uncovered = [
            subject for subject in system.dbfs.list_subjects()
            if not system.log.for_subject(subject)
        ]
        activity = system.log.activity_report()
        evidence = [
            Evidence(
                kind="telemetry",
                ref="metric:rgpdos.audit.log_entries",
                summary="processing-log entries (Art. 30 records)",
                data=len(system.log),
            ),
            Evidence(
                kind="processing_log", ref="log:activity",
                summary="aggregate record of processing activities",
                data=activity,
            ),
        ]
        entries = system.log.entries()
        if entries:
            evidence.append(Evidence(
                kind="processing_log",
                ref=f"log:entry:{entries[-1].entry_id}",
                summary="latest logged processing",
                data=entries[-1].processing,
            ))
        if rogue:
            status = STATUS_FAIL
            detail = f"{len(rogue)} log entries bypassed the PS: {rogue[:5]}"
        elif uncovered:
            status = STATUS_FAIL
            detail = (
                f"subjects holding PD with no logged processing "
                f"(collection unrecorded): {uncovered[:5]}"
            )
        elif not entries:
            status = STATUS_WARN
            detail = "no processing logged yet (empty system?)"
        else:
            status = STATUS_PASS
            detail = (
                f"{len(entries)} entries, all via the PS, covering "
                f"{activity['subjects_touched']} subject(s)"
            )
        return ControlResult(
            control_id="art30-records", article="Art. 30",
            title="Records of processing activities (§ 4 log)",
            status=status, detail=detail, evidence=evidence,
        )

    # -- folding the legacy auditor ---------------------------------------

    def _folded_auditor_controls(self) -> List[ControlResult]:
        """Every :class:`ComplianceAuditor` rule as a control result.

        The technical-rule probes keep living in ``core.compliance``;
        the audit engine lifts their findings into the article-indexed
        report with a registry-resolvable metric reference attached.
        """
        results: List[ControlResult] = []
        for finding in self.system.auditor.audit().findings:
            metric = _FOLDED_RULE_METRICS.get(
                finding.rule, _FOLDED_DEFAULT_METRIC
            )
            results.append(ControlResult(
                control_id=f"rule-{finding.rule}",
                article=finding.article,
                title=f"Technical rule: {finding.rule}",
                status=STATUS_PASS if finding.ok else STATUS_FAIL,
                detail=finding.detail,
                evidence=[Evidence(
                    kind="auditor", ref=f"metric:{metric}",
                    summary=finding.detail, data=finding.ok,
                )],
            ))
        return results


def resolve_evidence(system: "RgpdOS", ref: str) -> object:
    """Resolve an evidence ``ref`` against the live system.

    Raises :class:`~repro.errors.GDPRError` when the reference does not
    resolve — the report cited something the system cannot produce,
    which is itself an audit failure.
    """
    kind, _, locator = ref.partition(":")
    try:
        if kind == "metric":
            registry = system.telemetry.registry
            registry.collect()
            if locator in registry.gauges:
                return registry.gauges[locator].value
            if locator in registry.counters:
                return registry.counters[locator].value
            if locator in registry.histograms:
                return registry.histograms[locator].summary()
            raise KeyError(locator)
        if kind == "log":
            sub, _, rest = locator.partition(":")
            if sub == "entry":
                wanted = int(rest)
                for entry in system.log.entries():
                    if entry.entry_id == wanted:
                        return entry.to_dict()
                raise KeyError(rest)
            if sub == "subject":
                return [e.to_dict() for e in system.log.for_subject(rest)]
            if sub == "purpose":
                return [e.to_dict() for e in system.log.for_purpose(rest)]
            if locator == "activity":
                return system.log.activity_report()
            raise KeyError(locator)
        if kind == "membrane":
            ded = AccessCredential(holder="evidence-resolver", is_ded=True)
            return system.dbfs.get_membrane(locator, ded).to_dict()
        if kind == "purpose":
            purpose = system.ps._purposes[locator]
            return {"name": purpose.name, "basis": purpose.basis,
                    "uses": list(purpose.uses)}
        if kind == "breach":
            report = system.breach_monitor.reports[int(locator)]
            return {"at": report.at, "notifiable": report.notifiable,
                    "deadline": report.notification_deadline,
                    "notified_at": report.notified_at}
        if kind == "journal":
            _, _, index = locator.partition(":")
            shard = system.dbfs.shards[int(index)]
            return {"live_records": len(shard.journal),
                    "blocks_in_use": shard.journal.blocks_in_use}
        if kind == "trail":
            return system.evidence.entries()[int(locator)]
    except (KeyError, IndexError, ValueError, errors.RgpdOSError) as exc:
        raise errors.GDPRError(
            f"evidence reference {ref!r} does not resolve: {exc}"
        ) from exc
    raise errors.GDPRError(f"unknown evidence reference kind in {ref!r}")
