"""Always-on compliance monitors: residue, TTL, breach, journal.

ROADMAP item 2 asks for the one-shot forensic residue scan to become
an *always-on invariant*.  These monitors run continuously in the
background (on the request engine's thread infrastructure when one is
running, so monitor work queues in its own purpose-fair lane and can
never starve foreground rights requests) and publish what they see as
``rgpdos.residue.*`` / ``rgpdos.audit.*`` gauges — the same registry
Prometheus scrapes and the audit engine cites as evidence.

* :class:`ResidueScrubberMonitor` — samples a window of device blocks
  per tick, scanning for needles of erased PD (registered by the
  erasure built-in via the :class:`ResidueWatchlist`), and turns the
  one-shot ``residue_counts`` scan into a continuously-updated
  ``rgpdos.residue.device_blocks`` gauge.  A planted residue block is
  found within one full sweep by construction: the cursor covers every
  block of every shard before wrapping.
* :class:`TTLWatcherMonitor` — counts live membranes past retention
  (Art. 5(1)(e)).
* :class:`BreachDeadlineWatcherMonitor` — runs the Art. 33 breach scan
  and exposes the 72-hour notification countdown as a gauge.
* :class:`JournalBoundWatcherMonitor` — watches journal extent
  utilisation so retention enforcement never silently stalls on a
  full journal.

Every significant observation is sealed into the system's
hash-chained :class:`~repro.obs.evidence.EvidenceTrail`; payloads
carry needle *digests*, never plaintext PD — the trail must not itself
become a leak.
"""

from __future__ import annotations

import hashlib
import threading
from collections import deque
from typing import (
    Deque, Dict, List, Mapping, Optional, Sequence, Tuple, TYPE_CHECKING,
)

from .. import errors
from ..core.active_data import AccessCredential, PDRef
from ..kernel.timerwheel import TimerWheel
from .evidence import EvidenceTrail

if TYPE_CHECKING:  # pragma: no cover - typing only
    from . import Telemetry

#: Fairness lane monitor ticks run under when an engine is installed.
MONITOR_LANE = "monitors"

#: Fairness lane the expiry daemon's erasure waves run under — separate
#: from ``monitors`` so a deep retention backlog queues behind its own
#: lane and can never crowd monitor ticks or foreground rights work.
RETENTION_LANE = "retention"


def needle_digest(needle: bytes) -> str:
    """Short stable digest naming a needle without exposing the PD."""
    return hashlib.sha256(needle).hexdigest()[:16]


class ResidueWatchlist:
    """Needles of erased PD the scrubber keeps looking for.

    The erasure built-in registers the distinctive plaintext values it
    computed for its one-shot residue scan; the scrubber then re-scans
    for them forever (bounded by ``max_needles``, oldest evicted
    first — an erased value that has stayed residue-free for many
    sweeps is the safest to retire).
    """

    def __init__(self, max_needles: int = 512) -> None:
        self.max_needles = max_needles
        self._lock = threading.Lock()
        self._needles: Dict[bytes, str] = {}  # needle -> subject_id

    def register(self, subject_id: str, needles: Sequence[bytes]) -> int:
        with self._lock:
            for needle in needles:
                if needle:
                    self._needles[needle] = subject_id
            while len(self._needles) > self.max_needles:
                self._needles.pop(next(iter(self._needles)))
            return len(self._needles)

    def needles(self) -> List[bytes]:
        with self._lock:
            return list(self._needles)

    def subjects(self) -> List[str]:
        with self._lock:
            return sorted(set(self._needles.values()))

    def discard_subject(self, subject_id: str) -> int:
        with self._lock:
            victims = [n for n, s in self._needles.items() if s == subject_id]
            for needle in victims:
                del self._needles[needle]
            return len(victims)

    def __len__(self) -> int:
        with self._lock:
            return len(self._needles)


class Monitor:
    """One background invariant check.

    ``tick(now)`` publishes the monitor's gauges and returns a payload
    dict when the observation is *significant* (worth sealing into the
    evidence trail), else ``None``.
    """

    name = "monitor"

    def tick(self, now: float) -> Optional[Mapping[str, object]]:
        raise NotImplementedError


class ResidueScrubberMonitor(Monitor):
    """Incremental device-residue scrubber.

    Each tick samples ``sample_blocks`` device blocks (the same window
    on every shard) through
    :meth:`~repro.storage.dbfs.DatabaseFS.residue_sample`, advancing a
    cursor until the whole device span is covered — one *sweep*.  The
    ``rgpdos.residue.device_blocks`` gauge holds the last completed
    sweep's residue count; ``rgpdos.residue.sweep_matches`` the running
    count of the sweep in progress, so a planted block shows up at the
    tick that crosses it, not only at sweep end.
    """

    name = "residue-scrubber"

    def __init__(
        self,
        dbfs,
        watchlist: ResidueWatchlist,
        telemetry: "Telemetry",
        sample_blocks: int = 64,
    ) -> None:
        self.dbfs = dbfs
        self.watchlist = watchlist
        self.telemetry = telemetry
        self.sample_blocks = max(1, sample_blocks)
        self._cursor = 0
        self._sweep_matches = 0
        self._sweeps_completed = 0
        self._last_sweep_matches = 0

    @property
    def device_span(self) -> int:
        """Blocks one sweep must cover (largest shard device)."""
        return max(shard.device.block_count for shard in self.dbfs.shards)

    def ticks_per_sweep(self) -> int:
        span = self.device_span
        return (span + self.sample_blocks - 1) // self.sample_blocks

    @property
    def sweeps_completed(self) -> int:
        return self._sweeps_completed

    def tick(self, now: float) -> Optional[Mapping[str, object]]:
        registry = self.telemetry.registry
        needles = self.watchlist.needles()
        registry.gauge("rgpdos.residue.watch_needles").set(len(needles))
        if not needles:
            registry.gauge("rgpdos.residue.sweep_progress_pct").set(0)
            return None
        result = self.dbfs.residue_sample(
            needles, self._cursor, self.sample_blocks
        )
        self._cursor += self.sample_blocks
        self._sweep_matches += result["device_blocks"]
        registry.counter("rgpdos.residue.scanned_blocks").inc(
            result["scanned_blocks"])
        registry.gauge("rgpdos.residue.sweep_matches").set(
            self._sweep_matches)
        span = self.device_span
        finished = self._cursor >= span
        progress = 100.0 if finished else 100.0 * self._cursor / span
        registry.gauge("rgpdos.residue.sweep_progress_pct").set(
            round(progress, 1))
        significant = result["device_blocks"] > 0
        payload: Dict[str, object] = {
            "matches": result["device_blocks"],
            "scanned_blocks": result["scanned_blocks"],
            "cursor": min(self._cursor, span),
            "needle_digests": sorted(
                needle_digest(n) for n in needles
            )[:16],
        }
        if finished:
            self._last_sweep_matches = self._sweep_matches
            self._sweeps_completed += 1
            registry.gauge("rgpdos.residue.device_blocks").set(
                self._last_sweep_matches)
            registry.counter("rgpdos.residue.sweeps").inc()
            payload["sweep_completed"] = self._sweeps_completed
            payload["sweep_residue_blocks"] = self._last_sweep_matches
            self._cursor = 0
            self._sweep_matches = 0
            significant = True
        return payload if significant else None


class TTLWatcherMonitor(Monitor):
    """Counts live membranes past their retention TTL (Art. 5(1)(e))."""

    name = "ttl-watcher"

    def __init__(self, dbfs, clock, telemetry: "Telemetry") -> None:
        self.dbfs = dbfs
        self.clock = clock
        self.telemetry = telemetry
        self._ded = AccessCredential(holder="ttl-watcher", is_ded=True)
        self._last_overdue = -1

    def tick(self, now: float) -> Optional[Mapping[str, object]]:
        # Canonical boundary (Membrane.is_expired): a membrane exactly
        # at its deadline is overdue here at the same instant the DED
        # stops serving it.  The watcher must never use a strict `>`
        # of its own.
        overdue = [
            uid
            for uid, membrane in self.dbfs.iter_membranes(self._ded)
            if not membrane.erased and membrane.is_expired(now)
        ]
        self.telemetry.registry.gauge("rgpdos.audit.ttl_overdue").set(
            len(overdue))
        changed = len(overdue) != self._last_overdue
        self._last_overdue = len(overdue)
        if not changed:
            return None
        return {"overdue": len(overdue), "uids": sorted(overdue)[:8]}


class BreachDeadlineWatcherMonitor(Monitor):
    """Runs the Art. 33 scan and exposes the 72-hour countdown."""

    name = "breach-watcher"

    def __init__(self, breach_monitor, clock, telemetry: "Telemetry") -> None:
        self.breach_monitor = breach_monitor
        self.clock = clock
        self.telemetry = telemetry
        self._last: Tuple[int, int, int] = (-1, -1, -1)

    def tick(self, now: float) -> Optional[Mapping[str, object]]:
        scan = self.breach_monitor.scan()
        pending = self.breach_monitor.pending_notifications()
        overdue = [
            r for r in pending if r.notification_deadline < now
        ]
        countdown = min(
            (r.notification_deadline - now for r in pending
             if r.notification_deadline >= now),
            default=0.0,
        )
        registry = self.telemetry.registry
        registry.gauge("rgpdos.audit.breach_notifiable").set(
            len(self.breach_monitor.notifiable_reports()))
        registry.gauge("rgpdos.audit.breach_overdue").set(len(overdue))
        registry.gauge("rgpdos.audit.breach_countdown_seconds").set(
            countdown)
        state = (len(self.breach_monitor.notifiable_reports()),
                 len(pending), len(overdue))
        changed = state != self._last or bool(scan.indicators)
        self._last = state
        if not changed:
            return None
        return {
            "notifiable": state[0],
            "pending": state[1],
            "overdue": state[2],
            "countdown_seconds": countdown,
            "new_indicators": [
                {"source": i.source, "count": i.count,
                 "severity": i.severity}
                for i in scan.indicators
            ],
        }


class JournalBoundWatcherMonitor(Monitor):
    """Watches journal extent utilisation across the shard fleet."""

    name = "journal-watcher"

    def __init__(self, dbfs, telemetry: "Telemetry",
                 warn_utilization: float = 0.8) -> None:
        self.dbfs = dbfs
        self.telemetry = telemetry
        self.warn_utilization = warn_utilization
        self._last_warned: Optional[bool] = None

    def tick(self, now: float) -> Optional[Mapping[str, object]]:
        utilizations = []
        live_records = 0
        for shard in self.dbfs.shards:
            journal = shard.journal
            capacity = max(1, journal.reserved_blocks - 2)
            utilizations.append(journal.blocks_in_use / capacity)
            live_records += len(journal)
        worst = max(utilizations) if utilizations else 0.0
        registry = self.telemetry.registry
        registry.gauge("rgpdos.audit.journal_utilization_pct").set(
            round(100.0 * worst, 1))
        registry.gauge("rgpdos.audit.journal_live_records").set(live_records)
        warned = worst >= self.warn_utilization
        changed = warned != self._last_warned
        self._last_warned = warned
        if not changed:
            return None
        return {
            "utilization_pct": round(100.0 * worst, 1),
            "live_records": live_records,
            "over_threshold": warned,
            "threshold_pct": round(100.0 * self.warn_utilization, 1),
        }


class ExpiryDaemon(Monitor):
    """Proactive Art. 5(1)(e) enforcement: timer-wheel TTL expiry.

    Every membrane with a TTL is indexed in a hierarchical
    :class:`~repro.kernel.timerwheel.TimerWheel` by its absolute
    expiry deadline (fed on store/evolve/transfer through the DBFS TTL
    observer hook, and on remount via :meth:`seed`).  Each tick
    advances the wheel to the shared clock's ``now`` and drains the
    due deadlines into **erasure waves**:

    * bounded at ``wave_size`` records each, so foreground traffic
      never stalls behind a mass expiry;
    * one journal group commit per shard per wave
      (``shard.batch()``), so an N-record wave costs one flush per
      shard, not N;
    * submitted on the request engine's ``retention`` fairness lane
      when an engine is running (shed waves return to the backlog),
      inline otherwise — tests and the CLI's ``--continuous`` stay
      deterministic;
    * sealed into the hash-chained evidence trail as a
      ``retention-wave`` entry.  The Art. 5(1)(e) audit control cites
      these entries: the control goes green because the daemon
      provably ran, not because traffic happened to touch expired
      records.

    The wheel is an index, never the authority: every due uid is
    re-checked against its membrane's canonical
    :meth:`~repro.core.membrane.Membrane.is_expired` before erasure,
    so a stale wheel entry can waste a lookup but cannot erase
    unexpired PD.
    """

    name = "expiry-daemon"

    def __init__(
        self,
        dbfs,
        clock,
        builtins,
        trail: EvidenceTrail,
        telemetry: "Telemetry",
        engine=None,
        wave_size: int = 64,
        mode: str = "escrow",
        wheel: Optional[TimerWheel] = None,
    ) -> None:
        self.dbfs = dbfs
        self.clock = clock
        self.builtins = builtins
        self.trail = trail
        self.telemetry = telemetry
        self.engine = engine
        self.wave_size = max(1, wave_size)
        self.mode = mode
        self.wheel = wheel if wheel is not None else TimerWheel(
            start=clock.now()
        )
        self._ded = AccessCredential(holder="expiry-daemon", is_ded=True)
        self._lock = threading.Lock()
        self._backlog: Deque[str] = deque()
        self._inflight: List[object] = []
        self.waves = 0
        self.erased_total = 0
        self.shed_waves = 0
        self.wave_seqs: Deque[int] = deque(maxlen=16)
        hook = getattr(dbfs, "add_ttl_observer", None)
        if hook is not None:
            hook(self._on_ttl_event)
        self.seed()

    # -- wheel feeding ---------------------------------------------------

    def _on_ttl_event(
        self, uid: str, subject_id: str, deadline: Optional[float]
    ) -> None:
        """DBFS TTL observer: store/evolve/transfer reschedule, erase
        cancels.  Runs on whatever thread mutated the store."""
        with self._lock:
            if deadline is None:
                self.wheel.cancel(uid)
            else:
                self.wheel.schedule(uid, deadline)

    def seed(self) -> int:
        """(Re)index every live TTL'd membrane — construction and
        post-remount feeding.  Returns the number indexed."""
        count = 0
        with self._lock:
            for uid, membrane in self.dbfs.iter_membranes(self._ded):
                if membrane.erased:
                    continue
                deadline = membrane.expiry_deadline()
                if deadline is not None:
                    self.wheel.schedule(uid, deadline)
                    count += 1
        return count

    def rebind(self, dbfs, builtins=None) -> int:
        """Re-attach after a true-crash remount.

        An in-place ``remount()`` keeps the store object, so the
        daemon's observer registration and wheel survive on their own.
        ``remount_from_device`` / ``remount_from_devices`` build
        *fresh* store objects with empty observer lists — without this
        call the daemon would keep feeding a dead store's wheel and
        never hear another TTL event.  Re-registers the TTL hook on
        the new store, swaps in a fresh wheel (stale pre-crash entries
        drop), re-seeds it from the recovered membranes, and clears
        the backlog of uids that may no longer exist.  Returns the
        number of deadlines re-indexed.
        """
        with self._lock:
            self.dbfs = dbfs
            if builtins is not None:
                self.builtins = builtins
            self.wheel = TimerWheel(start=self.clock.now())
            self._backlog.clear()
        hook = getattr(dbfs, "add_ttl_observer", None)
        if hook is not None:
            hook(self._on_ttl_event)
        return self.seed()

    @property
    def pending(self) -> int:
        with self._lock:
            return len(self.wheel)

    @property
    def backlog(self) -> int:
        with self._lock:
            return len(self._backlog)

    # -- ticking ---------------------------------------------------------

    def tick(self, now: float) -> Optional[Mapping[str, object]]:
        self._harvest()
        with self._lock:
            due = self.wheel.advance(now)
            due.extend(self._backlog)
            self._backlog.clear()
        candidates = self._verify(due, now)
        submitted = 0
        shed = 0
        engine = self.engine
        while candidates:
            wave, candidates = (
                candidates[: self.wave_size],
                candidates[self.wave_size:],
            )
            if engine is not None and engine.running:
                future = engine.try_submit(
                    self._erase_wave, wave, now, purpose=RETENTION_LANE
                )
                if future is None:
                    # Lane full: foreground traffic wins; the wave
                    # returns to the backlog for the next tick.
                    shed += 1
                    with self._lock:
                        self._backlog.extend(uid for uid, _, _ in wave)
                        self._backlog.extend(
                            uid for uid, _, _ in candidates)
                    candidates = []
                    break
                self._inflight.append(future)
            else:
                self._erase_wave(wave, now)
            submitted += 1
        registry = self.telemetry.registry
        with self._lock:
            pending = len(self.wheel)
            backlog = len(self._backlog)
        if shed:
            self.shed_waves += shed
            registry.counter("rgpdos.retention.shed_waves").inc(shed)
        registry.gauge("rgpdos.retention.pending").set(pending)
        registry.gauge("rgpdos.retention.backlog").set(backlog)
        if not due and not submitted:
            return None
        return {
            "due": len(due),
            "waves_submitted": submitted,
            "shed_waves": shed,
            "backlog": backlog,
            "pending": pending,
        }

    def _verify(
        self, uids: Sequence[str], now: float
    ) -> List[Tuple[str, str, str]]:
        """Authoritative membrane check for every due uid.

        Erased/unknown uids drop out; uids whose TTL moved (membrane
        evolution) go back on the wheel; only canonically-expired PD
        becomes an erasure candidate."""
        candidates: List[Tuple[str, str, str]] = []
        seen = set()
        for uid in uids:
            if uid in seen:
                continue
            seen.add(uid)
            try:
                membrane = self.dbfs.get_membrane(uid, self._ded)
            except errors.RgpdOSError:
                continue
            if membrane.erased:
                continue
            if not membrane.is_expired(now):
                deadline = membrane.expiry_deadline()
                if deadline is not None:
                    with self._lock:
                        self.wheel.schedule(uid, deadline)
                continue
            candidates.append(
                (uid, membrane.pd_type, membrane.subject_id)
            )
        return candidates

    # -- erasure waves ---------------------------------------------------

    def _erase_wave(
        self, wave: Sequence[Tuple[str, str, str]], now: float
    ) -> int:
        """Erase one bounded wave: one journal group commit per shard,
        sealed as a ``retention-wave`` evidence entry."""
        by_shard: Dict[int, List[Tuple[str, str, str]]] = {}
        shard_of = {
            subject_id: index
            for index, group in self.dbfs.subjects_by_shard(
                sorted({subject for _, _, subject in wave})
            ).items()
            for subject_id in group
        }
        for entry in wave:
            by_shard.setdefault(shard_of[entry[2]], []).append(entry)
        erased: List[str] = []
        residue_blocks = 0
        shards = self.dbfs.shards
        for index in sorted(by_shard):
            with shards[index].batch():
                for uid, pd_type, subject_id in by_shard[index]:
                    try:
                        membrane = self.dbfs.get_membrane(uid, self._ded)
                        if membrane.erased:
                            continue
                        report = self.builtins.delete(
                            PDRef(
                                uid=uid, pd_type=pd_type,
                                subject_id=subject_id,
                            ),
                            mode=self.mode,
                            actor="sysadmin",
                            include_copies=False,
                        )
                        erased.extend(report.erased_lineage)
                        residue_blocks += report.residue_device_blocks
                    except errors.RgpdOSError:
                        continue
        entry = self.trail.append(
            kind="retention-wave",
            source=self.name,
            payload={
                "wave_records": len(wave),
                "erased": len(set(erased)),
                "uids": sorted(set(erased))[:16],
                "residue_device_blocks": residue_blocks,
                "shards": sorted(by_shard),
                "mode": self.mode,
            },
            at=now,
        )
        registry = self.telemetry.registry
        registry.counter("rgpdos.retention.waves").inc()
        registry.counter("rgpdos.retention.erased").inc(len(set(erased)))
        registry.gauge("rgpdos.retention.last_wave_size").set(len(wave))
        with self._lock:
            self.waves += 1
            self.erased_total += len(set(erased))
            self.wave_seqs.append(int(entry["seq"]))
        return len(set(erased))

    def _harvest(self) -> None:
        """Reap finished engine-submitted waves (results already
        accounted inside ``_erase_wave``)."""
        still = []
        for future in self._inflight:
            if not future.done():
                still.append(future)
        self._inflight = still

    def drain(self, timeout: float = 30.0) -> bool:
        """Block until every submitted wave has completed (tests, CLI,
        benchmarks — never called from an engine worker)."""
        for future in list(self._inflight):
            try:
                future.result(timeout=timeout)
            except Exception:  # noqa: BLE001 - wave errors are sealed
                pass
        self._harvest()
        return not self._inflight

    def run_until_drained(self, max_ticks: int = 64) -> int:
        """Tick (inline) until wheel past-due work and backlog are
        empty; returns erased-so-far.  Drives the daemon to a fixpoint
        at a frozen clock instant."""
        for _ in range(max_ticks):
            self.tick(self.clock.now())
            self.drain()
            with self._lock:
                idle = not self._backlog and not self._inflight
            if idle:
                break
        return self.erased_total

    def as_dict(self) -> Dict[str, object]:
        with self._lock:
            return {
                "pending": len(self.wheel),
                "backlog": len(self._backlog),
                "waves": self.waves,
                "erased_total": self.erased_total,
                "shed_waves": self.shed_waves,
                "wave_size": self.wave_size,
                "mode": self.mode,
                "wheel": self.wheel.as_dict(),
            }


class MonitorDaemon:
    """Drives the monitors, inline or on the request engine.

    ``tick_all()`` runs one synchronous round (tests and the CLI's
    ``--continuous`` drive this directly for determinism);
    :meth:`start` spins a daemon thread ticking every
    ``interval_seconds`` of *wall* time.  When a running
    :class:`~repro.engine.engine.RequestEngine` is installed, each
    monitor's tick is submitted to the engine under the ``monitors``
    fairness lane, so background compliance work shares worker threads
    with (but cannot starve) foreground requests.
    """

    def __init__(
        self,
        monitors: Sequence[Monitor],
        clock,
        trail: EvidenceTrail,
        telemetry: "Telemetry",
        interval_seconds: float = 0.05,
        engine=None,
    ) -> None:
        self.monitors = list(monitors)
        self.clock = clock
        self.trail = trail
        self.telemetry = telemetry
        self.interval_seconds = interval_seconds
        self.engine = engine
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self.ticks = 0
        self.evidence_appended = 0

    # -- driving ---------------------------------------------------------

    def tick_all(self) -> int:
        """One round over every monitor; returns evidence entries sealed."""
        now = self.clock.now()
        engine = self.engine
        if engine is not None and engine.running:
            futures = [
                (monitor, engine.try_submit(
                    monitor.tick, now, purpose=MONITOR_LANE))
                for monitor in self.monitors
            ]
            outcomes = [
                (monitor, future.result() if future is not None
                 else monitor.tick(now))
                for monitor, future in futures
            ]
        else:
            outcomes = [
                (monitor, monitor.tick(now)) for monitor in self.monitors
            ]
        sealed = 0
        for monitor, payload in outcomes:
            if payload is not None:
                self.trail.append(
                    kind="monitor", source=monitor.name,
                    payload=dict(payload), at=now,
                )
                sealed += 1
        self.ticks += 1
        self.evidence_appended += sealed
        registry = self.telemetry.registry
        registry.counter("rgpdos.audit.monitor_ticks").inc()
        registry.gauge("rgpdos.audit.evidence_entries").set(len(self.trail))
        return sealed

    def run_for_ticks(self, ticks: int) -> int:
        """Drive ``ticks`` synchronous rounds; returns evidence sealed."""
        return sum(self.tick_all() for _ in range(ticks))

    # -- lifecycle -------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "MonitorDaemon":
        if self.running:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="rgpdos-monitors", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None

    def _loop(self) -> None:
        while not self._stop.is_set():
            self.tick_all()
            self._stop.wait(self.interval_seconds)

    # -- reporting -------------------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        return {
            "running": self.running,
            "interval_seconds": self.interval_seconds,
            "monitors": [monitor.name for monitor in self.monitors],
            "ticks": self.ticks,
            "evidence_appended": self.evidence_appended,
            "on_engine": bool(self.engine is not None
                              and self.engine.running),
        }
