"""Always-on compliance monitors: residue, TTL, breach, journal.

ROADMAP item 2 asks for the one-shot forensic residue scan to become
an *always-on invariant*.  These monitors run continuously in the
background (on the request engine's thread infrastructure when one is
running, so monitor work queues in its own purpose-fair lane and can
never starve foreground rights requests) and publish what they see as
``rgpdos.residue.*`` / ``rgpdos.audit.*`` gauges — the same registry
Prometheus scrapes and the audit engine cites as evidence.

* :class:`ResidueScrubberMonitor` — samples a window of device blocks
  per tick, scanning for needles of erased PD (registered by the
  erasure built-in via the :class:`ResidueWatchlist`), and turns the
  one-shot ``residue_counts`` scan into a continuously-updated
  ``rgpdos.residue.device_blocks`` gauge.  A planted residue block is
  found within one full sweep by construction: the cursor covers every
  block of every shard before wrapping.
* :class:`TTLWatcherMonitor` — counts live membranes past retention
  (Art. 5(1)(e)).
* :class:`BreachDeadlineWatcherMonitor` — runs the Art. 33 breach scan
  and exposes the 72-hour notification countdown as a gauge.
* :class:`JournalBoundWatcherMonitor` — watches journal extent
  utilisation so retention enforcement never silently stalls on a
  full journal.

Every significant observation is sealed into the system's
hash-chained :class:`~repro.obs.evidence.EvidenceTrail`; payloads
carry needle *digests*, never plaintext PD — the trail must not itself
become a leak.
"""

from __future__ import annotations

import hashlib
import threading
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, TYPE_CHECKING

from ..core.active_data import AccessCredential
from .evidence import EvidenceTrail

if TYPE_CHECKING:  # pragma: no cover - typing only
    from . import Telemetry

#: Fairness lane monitor ticks run under when an engine is installed.
MONITOR_LANE = "monitors"


def needle_digest(needle: bytes) -> str:
    """Short stable digest naming a needle without exposing the PD."""
    return hashlib.sha256(needle).hexdigest()[:16]


class ResidueWatchlist:
    """Needles of erased PD the scrubber keeps looking for.

    The erasure built-in registers the distinctive plaintext values it
    computed for its one-shot residue scan; the scrubber then re-scans
    for them forever (bounded by ``max_needles``, oldest evicted
    first — an erased value that has stayed residue-free for many
    sweeps is the safest to retire).
    """

    def __init__(self, max_needles: int = 512) -> None:
        self.max_needles = max_needles
        self._lock = threading.Lock()
        self._needles: Dict[bytes, str] = {}  # needle -> subject_id

    def register(self, subject_id: str, needles: Sequence[bytes]) -> int:
        with self._lock:
            for needle in needles:
                if needle:
                    self._needles[needle] = subject_id
            while len(self._needles) > self.max_needles:
                self._needles.pop(next(iter(self._needles)))
            return len(self._needles)

    def needles(self) -> List[bytes]:
        with self._lock:
            return list(self._needles)

    def subjects(self) -> List[str]:
        with self._lock:
            return sorted(set(self._needles.values()))

    def discard_subject(self, subject_id: str) -> int:
        with self._lock:
            victims = [n for n, s in self._needles.items() if s == subject_id]
            for needle in victims:
                del self._needles[needle]
            return len(victims)

    def __len__(self) -> int:
        with self._lock:
            return len(self._needles)


class Monitor:
    """One background invariant check.

    ``tick(now)`` publishes the monitor's gauges and returns a payload
    dict when the observation is *significant* (worth sealing into the
    evidence trail), else ``None``.
    """

    name = "monitor"

    def tick(self, now: float) -> Optional[Mapping[str, object]]:
        raise NotImplementedError


class ResidueScrubberMonitor(Monitor):
    """Incremental device-residue scrubber.

    Each tick samples ``sample_blocks`` device blocks (the same window
    on every shard) through
    :meth:`~repro.storage.dbfs.DatabaseFS.residue_sample`, advancing a
    cursor until the whole device span is covered — one *sweep*.  The
    ``rgpdos.residue.device_blocks`` gauge holds the last completed
    sweep's residue count; ``rgpdos.residue.sweep_matches`` the running
    count of the sweep in progress, so a planted block shows up at the
    tick that crosses it, not only at sweep end.
    """

    name = "residue-scrubber"

    def __init__(
        self,
        dbfs,
        watchlist: ResidueWatchlist,
        telemetry: "Telemetry",
        sample_blocks: int = 64,
    ) -> None:
        self.dbfs = dbfs
        self.watchlist = watchlist
        self.telemetry = telemetry
        self.sample_blocks = max(1, sample_blocks)
        self._cursor = 0
        self._sweep_matches = 0
        self._sweeps_completed = 0
        self._last_sweep_matches = 0

    @property
    def device_span(self) -> int:
        """Blocks one sweep must cover (largest shard device)."""
        return max(shard.device.block_count for shard in self.dbfs.shards)

    def ticks_per_sweep(self) -> int:
        span = self.device_span
        return (span + self.sample_blocks - 1) // self.sample_blocks

    @property
    def sweeps_completed(self) -> int:
        return self._sweeps_completed

    def tick(self, now: float) -> Optional[Mapping[str, object]]:
        registry = self.telemetry.registry
        needles = self.watchlist.needles()
        registry.gauge("rgpdos.residue.watch_needles").set(len(needles))
        if not needles:
            registry.gauge("rgpdos.residue.sweep_progress_pct").set(0)
            return None
        result = self.dbfs.residue_sample(
            needles, self._cursor, self.sample_blocks
        )
        self._cursor += self.sample_blocks
        self._sweep_matches += result["device_blocks"]
        registry.counter("rgpdos.residue.scanned_blocks").inc(
            result["scanned_blocks"])
        registry.gauge("rgpdos.residue.sweep_matches").set(
            self._sweep_matches)
        span = self.device_span
        finished = self._cursor >= span
        progress = 100.0 if finished else 100.0 * self._cursor / span
        registry.gauge("rgpdos.residue.sweep_progress_pct").set(
            round(progress, 1))
        significant = result["device_blocks"] > 0
        payload: Dict[str, object] = {
            "matches": result["device_blocks"],
            "scanned_blocks": result["scanned_blocks"],
            "cursor": min(self._cursor, span),
            "needle_digests": sorted(
                needle_digest(n) for n in needles
            )[:16],
        }
        if finished:
            self._last_sweep_matches = self._sweep_matches
            self._sweeps_completed += 1
            registry.gauge("rgpdos.residue.device_blocks").set(
                self._last_sweep_matches)
            registry.counter("rgpdos.residue.sweeps").inc()
            payload["sweep_completed"] = self._sweeps_completed
            payload["sweep_residue_blocks"] = self._last_sweep_matches
            self._cursor = 0
            self._sweep_matches = 0
            significant = True
        return payload if significant else None


class TTLWatcherMonitor(Monitor):
    """Counts live membranes past their retention TTL (Art. 5(1)(e))."""

    name = "ttl-watcher"

    def __init__(self, dbfs, clock, telemetry: "Telemetry") -> None:
        self.dbfs = dbfs
        self.clock = clock
        self.telemetry = telemetry
        self._ded = AccessCredential(holder="ttl-watcher", is_ded=True)
        self._last_overdue = -1

    def tick(self, now: float) -> Optional[Mapping[str, object]]:
        overdue = [
            uid
            for uid, membrane in self.dbfs.iter_membranes(self._ded)
            if not membrane.erased
            and membrane.ttl_seconds is not None
            and now > membrane.created_at + membrane.ttl_seconds
        ]
        self.telemetry.registry.gauge("rgpdos.audit.ttl_overdue").set(
            len(overdue))
        changed = len(overdue) != self._last_overdue
        self._last_overdue = len(overdue)
        if not changed:
            return None
        return {"overdue": len(overdue), "uids": sorted(overdue)[:8]}


class BreachDeadlineWatcherMonitor(Monitor):
    """Runs the Art. 33 scan and exposes the 72-hour countdown."""

    name = "breach-watcher"

    def __init__(self, breach_monitor, clock, telemetry: "Telemetry") -> None:
        self.breach_monitor = breach_monitor
        self.clock = clock
        self.telemetry = telemetry
        self._last: Tuple[int, int, int] = (-1, -1, -1)

    def tick(self, now: float) -> Optional[Mapping[str, object]]:
        scan = self.breach_monitor.scan()
        pending = self.breach_monitor.pending_notifications()
        overdue = [
            r for r in pending if r.notification_deadline < now
        ]
        countdown = min(
            (r.notification_deadline - now for r in pending
             if r.notification_deadline >= now),
            default=0.0,
        )
        registry = self.telemetry.registry
        registry.gauge("rgpdos.audit.breach_notifiable").set(
            len(self.breach_monitor.notifiable_reports()))
        registry.gauge("rgpdos.audit.breach_overdue").set(len(overdue))
        registry.gauge("rgpdos.audit.breach_countdown_seconds").set(
            countdown)
        state = (len(self.breach_monitor.notifiable_reports()),
                 len(pending), len(overdue))
        changed = state != self._last or bool(scan.indicators)
        self._last = state
        if not changed:
            return None
        return {
            "notifiable": state[0],
            "pending": state[1],
            "overdue": state[2],
            "countdown_seconds": countdown,
            "new_indicators": [
                {"source": i.source, "count": i.count,
                 "severity": i.severity}
                for i in scan.indicators
            ],
        }


class JournalBoundWatcherMonitor(Monitor):
    """Watches journal extent utilisation across the shard fleet."""

    name = "journal-watcher"

    def __init__(self, dbfs, telemetry: "Telemetry",
                 warn_utilization: float = 0.8) -> None:
        self.dbfs = dbfs
        self.telemetry = telemetry
        self.warn_utilization = warn_utilization
        self._last_warned: Optional[bool] = None

    def tick(self, now: float) -> Optional[Mapping[str, object]]:
        utilizations = []
        live_records = 0
        for shard in self.dbfs.shards:
            journal = shard.journal
            capacity = max(1, journal.reserved_blocks - 2)
            utilizations.append(journal.blocks_in_use / capacity)
            live_records += len(journal)
        worst = max(utilizations) if utilizations else 0.0
        registry = self.telemetry.registry
        registry.gauge("rgpdos.audit.journal_utilization_pct").set(
            round(100.0 * worst, 1))
        registry.gauge("rgpdos.audit.journal_live_records").set(live_records)
        warned = worst >= self.warn_utilization
        changed = warned != self._last_warned
        self._last_warned = warned
        if not changed:
            return None
        return {
            "utilization_pct": round(100.0 * worst, 1),
            "live_records": live_records,
            "over_threshold": warned,
            "threshold_pct": round(100.0 * self.warn_utilization, 1),
        }


class MonitorDaemon:
    """Drives the monitors, inline or on the request engine.

    ``tick_all()`` runs one synchronous round (tests and the CLI's
    ``--continuous`` drive this directly for determinism);
    :meth:`start` spins a daemon thread ticking every
    ``interval_seconds`` of *wall* time.  When a running
    :class:`~repro.engine.engine.RequestEngine` is installed, each
    monitor's tick is submitted to the engine under the ``monitors``
    fairness lane, so background compliance work shares worker threads
    with (but cannot starve) foreground requests.
    """

    def __init__(
        self,
        monitors: Sequence[Monitor],
        clock,
        trail: EvidenceTrail,
        telemetry: "Telemetry",
        interval_seconds: float = 0.05,
        engine=None,
    ) -> None:
        self.monitors = list(monitors)
        self.clock = clock
        self.trail = trail
        self.telemetry = telemetry
        self.interval_seconds = interval_seconds
        self.engine = engine
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self.ticks = 0
        self.evidence_appended = 0

    # -- driving ---------------------------------------------------------

    def tick_all(self) -> int:
        """One round over every monitor; returns evidence entries sealed."""
        now = self.clock.now()
        engine = self.engine
        if engine is not None and engine.running:
            futures = [
                (monitor, engine.try_submit(
                    monitor.tick, now, purpose=MONITOR_LANE))
                for monitor in self.monitors
            ]
            outcomes = [
                (monitor, future.result() if future is not None
                 else monitor.tick(now))
                for monitor, future in futures
            ]
        else:
            outcomes = [
                (monitor, monitor.tick(now)) for monitor in self.monitors
            ]
        sealed = 0
        for monitor, payload in outcomes:
            if payload is not None:
                self.trail.append(
                    kind="monitor", source=monitor.name,
                    payload=dict(payload), at=now,
                )
                sealed += 1
        self.ticks += 1
        self.evidence_appended += sealed
        registry = self.telemetry.registry
        registry.counter("rgpdos.audit.monitor_ticks").inc()
        registry.gauge("rgpdos.audit.evidence_entries").set(len(self.trail))
        return sealed

    def run_for_ticks(self, ticks: int) -> int:
        """Drive ``ticks`` synchronous rounds; returns evidence sealed."""
        return sum(self.tick_all() for _ in range(ticks))

    # -- lifecycle -------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "MonitorDaemon":
        if self.running:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="rgpdos-monitors", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None

    def _loop(self) -> None:
        while not self._stop.is_set():
            self.tick_all()
            self._stop.wait(self.interval_seconds)

    # -- reporting -------------------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        return {
            "running": self.running,
            "interval_seconds": self.interval_seconds,
            "monitors": [monitor.name for monitor in self.monitors],
            "ticks": self.ticks,
            "evidence_appended": self.evidence_appended,
            "on_engine": bool(self.engine is not None
                              and self.engine.running),
        }
