"""Cross-layer trace spans.

One :class:`Tracer` is shared by every layer of a system.  A span opened
while another span is active becomes its child and inherits the trace
id, so a single ``ps_invoke`` produces one trace whose tree mirrors the
paper's request path: syscall -> DED stage pipeline -> membrane check ->
DBFS op -> journal commit -> block I/O.  Spans carry free-form
attributes (subject_id, purpose, shard index, cache hit/miss) set either
at creation or mid-flight via :meth:`Span.set_attr`.

Determinism and bounds:

* ids come from per-tracer monotonic counters, not randomness, so two
  identical serial runs produce identical trace structures (concurrent
  runs keep unique ids but may interleave assignment order);
* finished spans live in a bounded ring buffer (``max_spans``); a
  long-running system can stay traced without unbounded memory;
* the active-span stack is **per thread** (``threading.local``): each
  request-engine worker builds its own span tree, so a span opened on
  one thread can never be adopted as the parent of another thread's
  span.  The ring-buffer append and the id counters are single atomic
  operations under CPython, so finished spans from all threads land in
  one shared, bounded buffer without a lock.

Exports: JSONL (one span per line, loadable with ``json.loads``) and
the Chrome ``trace_event`` format (open in ``chrome://tracing`` or
Perfetto).
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from collections import deque
from typing import Deque, Dict, List, Optional


class Span:
    """One timed, attributed node in a trace tree."""

    __slots__ = ("trace_id", "span_id", "parent_id", "name",
                 "start_ns", "end_ns", "attrs")

    def __init__(self, trace_id: int, span_id: int,
                 parent_id: Optional[int], name: str,
                 start_ns: int, attrs: Dict[str, object]):
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start_ns = start_ns
        self.end_ns = start_ns
        self.attrs = attrs

    def set_attr(self, key: str, value: object) -> None:
        self.attrs[key] = value

    def set_attrs(self, **attrs: object) -> None:
        self.attrs.update(attrs)

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns

    @property
    def duration_us(self) -> float:
        return self.duration_ns / 1000.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_ns": self.start_ns,
            "duration_ns": self.duration_ns,
            "attrs": self.attrs,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, trace={self.trace_id}, "
                f"span={self.span_id}, parent={self.parent_id}, "
                f"dur={self.duration_us:.1f}us)")


class _NullSpan:
    """Shared no-op stand-in returned by a disabled tracer."""

    __slots__ = ()
    trace_id = span_id = 0
    parent_id = None
    name = ""
    attrs: Dict[str, object] = {}

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def set_attr(self, key: str, value: object) -> None:
        pass

    def set_attrs(self, **attrs: object) -> None:
        pass


NULL_SPAN = _NullSpan()


class _SpanContext:
    """Context manager that opens a span on enter and closes on exit."""

    __slots__ = ("_tracer", "_name", "_attrs", "_span")

    def __init__(self, tracer: "Tracer", name: str,
                 attrs: Dict[str, object]):
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self._span: Optional[Span] = None

    def __enter__(self) -> Span:
        tracer = self._tracer
        stack = tracer._thread_stack()
        parent = stack[-1] if stack else None
        if parent is None:
            trace_id = next(tracer._trace_ids)
            parent_id = None
        else:
            trace_id = parent.trace_id
            parent_id = parent.span_id
        span = Span(trace_id, next(tracer._span_ids), parent_id,
                    self._name, time.perf_counter_ns(), self._attrs)
        stack.append(span)
        self._span = span
        return span

    def __exit__(self, *exc_info) -> bool:
        span = self._span
        span.end_ns = time.perf_counter_ns()
        tracer = self._tracer
        stack = tracer._thread_stack()
        if stack and stack[-1] is span:
            stack.pop()
        else:  # exception unwound out of order; stay consistent
            try:
                stack.remove(span)
            except ValueError:
                pass
        tracer._finished.append(span)
        return False


class Tracer:
    """Factory and bounded buffer for spans."""

    def __init__(self, enabled: bool = True, max_spans: int = 20000):
        self.enabled = enabled
        self.max_spans = max_spans
        # deque.append with a maxlen is a single atomic operation under
        # CPython, so concurrent workers share this buffer lock-free.
        self._finished: Deque[Span] = deque(maxlen=max_spans)
        # One active-span stack per thread: parentage is a property of
        # the call stack, and call stacks are per-thread.
        self._stacks = threading.local()
        self._trace_ids = itertools.count(1)
        self._span_ids = itertools.count(1)

    def _thread_stack(self) -> List[Span]:
        stack = getattr(self._stacks, "stack", None)
        if stack is None:
            stack = self._stacks.stack = []
        return stack

    def span(self, name: str, **attrs: object):
        """Open a child of the innermost active span (or a new trace)."""
        if not self.enabled:
            return NULL_SPAN
        return _SpanContext(self, name, attrs)

    @property
    def current_span(self) -> Optional[Span]:
        """The calling thread's innermost active span, if any."""
        stack = self._thread_stack()
        return stack[-1] if stack else None

    # -- reads -----------------------------------------------------------

    def finished_spans(self) -> List[Span]:
        return list(self._finished)

    def traces(self) -> Dict[int, List[Span]]:
        """Finished spans grouped by trace id, each sorted by start."""
        grouped: Dict[int, List[Span]] = {}
        for span in self._finished:
            grouped.setdefault(span.trace_id, []).append(span)
        for spans in grouped.values():
            spans.sort(key=lambda s: (s.start_ns, s.span_id))
        return grouped

    def clear(self) -> None:
        self._finished.clear()

    def __len__(self) -> int:
        return len(self._finished)

    # -- exports ---------------------------------------------------------

    def export_jsonl(self, path: str) -> int:
        """Write one JSON object per finished span; returns span count."""
        spans = sorted(self._finished, key=lambda s: (s.start_ns, s.span_id))
        with open(path, "w", encoding="utf-8") as handle:
            for span in spans:
                handle.write(json.dumps(span.to_dict(), sort_keys=True))
                handle.write("\n")
        return len(spans)

    def export_chrome_trace(self, path: str) -> int:
        """Write Chrome ``trace_event`` JSON (complete 'X' events)."""
        spans = sorted(self._finished, key=lambda s: (s.start_ns, s.span_id))
        events = []
        for span in spans:
            args = dict(span.attrs)
            args["span_id"] = span.span_id
            if span.parent_id is not None:
                args["parent_id"] = span.parent_id
            events.append({
                "name": span.name,
                "cat": "repro",
                "ph": "X",
                "ts": span.start_ns / 1000.0,
                "dur": max(span.duration_ns / 1000.0, 0.001),
                "pid": 1,
                "tid": span.trace_id,
                "args": args,
            })
        with open(path, "w", encoding="utf-8") as handle:
            json.dump({"traceEvents": events,
                       "displayTimeUnit": "ms"}, handle)
        return len(events)
