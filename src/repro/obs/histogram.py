"""Fixed-bucket latency histograms.

A :class:`LatencyHistogram` is the unit of latency accounting for the
whole telemetry layer: every instrumented operation records one
``perf_counter_ns`` delta into one histogram.  The design goals are

* **cheap observe** — one ``bisect`` over a shared tuple of bucket
  upper bounds plus two attribute updates; no allocation;
* **useful percentiles** — p50/p95/p99 answered by a cumulative walk
  with linear interpolation inside the winning bucket, clamped to the
  exact observed min/max so tails are never over-reported;
* **zero dependencies** — plain lists and the stdlib only.

Buckets are powers of two from 256 ns to ~17 s, which covers everything
from a page-cache hit on the simulated :class:`BlockDevice` to a full
scatter-gather ``bulk_erase`` over many shards.  Values past the last
bound land in an overflow bucket whose percentile estimate is the exact
observed maximum.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Dict, List, Optional, Sequence

# Upper bounds (inclusive), in nanoseconds: 2**8 .. 2**34.
DEFAULT_BUCKET_BOUNDS_NS = tuple(1 << exp for exp in range(8, 35))


class LatencyHistogram:
    """A fixed-bucket histogram of durations in nanoseconds.

    ``observe`` takes a per-histogram lock: the bucket increment, the
    running count/sum and the min/max updates are a multi-step
    read-modify-write, and the request engine records samples from
    many worker threads into one shared histogram.  Percentile reads
    take the same lock so a summary never sees a half-applied sample.
    """

    __slots__ = ("name", "bounds", "counts", "count", "sum_ns",
                 "min_ns", "max_ns", "_lock")

    def __init__(self, name: str,
                 bounds: Sequence[int] = DEFAULT_BUCKET_BOUNDS_NS):
        self.name = name
        self.bounds = tuple(bounds)
        # One count per bound plus a final overflow bucket.
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum_ns = 0
        self.min_ns: Optional[int] = None
        self.max_ns = 0
        self._lock = threading.Lock()

    def observe(self, duration_ns: int) -> None:
        """Record one duration (negative clock skew clamps to zero)."""
        if duration_ns < 0:
            duration_ns = 0
        bucket = bisect_left(self.bounds, duration_ns)
        with self._lock:
            self.counts[bucket] += 1
            self.count += 1
            self.sum_ns += duration_ns
            if self.min_ns is None or duration_ns < self.min_ns:
                self.min_ns = duration_ns
            if duration_ns > self.max_ns:
                self.max_ns = duration_ns

    def percentile(self, fraction: float) -> float:
        """Estimated duration (ns) at ``fraction`` in [0, 1]."""
        with self._lock:
            return self._percentile_locked(fraction)

    def _percentile_locked(self, fraction: float) -> float:
        if self.count == 0:
            return 0.0
        target = fraction * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= target:
                if index >= len(self.bounds):
                    return float(self.max_ns)
                lower = self.bounds[index - 1] if index else 0
                upper = self.bounds[index]
                position = (target - cumulative) / bucket_count
                estimate = lower + (upper - lower) * position
                # The true extrema are known exactly; never exceed them.
                estimate = min(estimate, float(self.max_ns))
                if self.min_ns is not None:
                    estimate = max(estimate, float(self.min_ns))
                return estimate
            cumulative += bucket_count
        return float(self.max_ns)

    @property
    def mean_ns(self) -> float:
        return self.sum_ns / self.count if self.count else 0.0

    def summary(self) -> Dict[str, float]:
        """p50/p95/p99/max (and count/mean) in microseconds."""

        def us(ns: float) -> float:
            return round(ns / 1000.0, 3)

        with self._lock:
            return {
                "count": self.count,
                "p50_us": us(self._percentile_locked(0.50)),
                "p95_us": us(self._percentile_locked(0.95)),
                "p99_us": us(self._percentile_locked(0.99)),
                "max_us": us(self.max_ns),
                "mean_us": us(self.mean_ns),
            }

    def reset(self) -> None:
        with self._lock:
            self.counts = [0] * (len(self.bounds) + 1)
            self.count = 0
            self.sum_ns = 0
            self.min_ns = None
            self.max_ns = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"LatencyHistogram({self.name!r}, count={self.count}, "
                f"p50={self.percentile(0.5):.0f}ns)")
