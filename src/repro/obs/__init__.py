"""repro.obs — unified telemetry: metrics, trace spans, exporters.

One :class:`Telemetry` object is shared by every layer of an
:class:`~repro.core.system.RgpdOS` instance (block device, journal,
DBFS, shards, DED pipeline, processing store, subject rights).  It
bundles

* a :class:`~repro.obs.registry.MetricsRegistry` (counters, gauges,
  p50/p95/p99 latency histograms),
* a :class:`~repro.obs.tracing.Tracer` (cross-layer spans sharing one
  trace id per request),
* exporters (``snapshot()`` JSON, ``to_prometheus()`` text, JSONL /
  Chrome ``trace_event`` span dumps).

Disabled mode (``Telemetry.disabled()``) hands out shared null
instruments so instrumentation left in the code costs roughly one
attribute check per operation.  ``NULL_TELEMETRY`` is the module-wide
disabled singleton used as the default by layers constructed
standalone.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

from .exporters import parse_prometheus, snapshot, to_prometheus
from .histogram import DEFAULT_BUCKET_BOUNDS_NS, LatencyHistogram
from .registry import (Counter, Gauge, MetricsRegistry, Timer,
                       NULL_COUNTER, NULL_GAUGE, NULL_HISTOGRAM, NULL_TIMER)
from .tracing import NULL_SPAN, Span, Tracer


class _OpContext:
    """Span + latency histogram for one named operation, in one ``with``."""

    __slots__ = ("_telemetry", "_name", "_attrs", "_span_cm", "_start_ns")

    def __init__(self, telemetry: "Telemetry", name: str,
                 attrs: Dict[str, object]):
        self._telemetry = telemetry
        self._name = name
        self._attrs = attrs
        self._span_cm = None
        self._start_ns = 0

    def __enter__(self):
        self._start_ns = time.perf_counter_ns()
        self._span_cm = self._telemetry.tracer.span(self._name, **self._attrs)
        return self._span_cm.__enter__()

    def __exit__(self, *exc_info) -> bool:
        self._span_cm.__exit__(*exc_info)
        self._telemetry.registry.histogram(self._name).observe(
            time.perf_counter_ns() - self._start_ns)
        return False


class _NullOp:
    __slots__ = ()

    def __enter__(self):
        return NULL_SPAN

    def __exit__(self, *exc_info) -> bool:
        return False


_NULL_OP = _NullOp()


class Telemetry:
    """Facade bundling a metrics registry, a tracer, and exporters."""

    def __init__(self, enabled: bool = True, tracing: bool = True,
                 max_spans: int = 20000):
        self.enabled = enabled
        self.registry = MetricsRegistry(enabled=enabled)
        self.tracer = Tracer(enabled=enabled and tracing,
                             max_spans=max_spans)

    @classmethod
    def disabled(cls) -> "Telemetry":
        return cls(enabled=False)

    # -- instruments -----------------------------------------------------

    def counter(self, name: str):
        return self.registry.counter(name)

    def gauge(self, name: str):
        return self.registry.gauge(name)

    def histogram(self, name: str):
        return self.registry.histogram(name)

    def timer(self, name: str):
        return self.registry.timer(name)

    def span(self, name: str, **attrs: object):
        return self.tracer.span(name, **attrs)

    def op(self, name: str, **attrs: object):
        """Trace span *and* latency histogram for one operation.

        The context target is the live :class:`Span` (or a shared null
        span when disabled), so callers may ``span.set_attr(...)``
        results discovered mid-operation.
        """
        if not self.enabled:
            return _NULL_OP
        return _OpContext(self, name, attrs)

    # -- exports ---------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """JSON-safe dump of every instrument (collectors refreshed)."""
        return snapshot(self.registry)

    def to_prometheus(self, prefix: str = "repro") -> str:
        return to_prometheus(self.registry, prefix=prefix)

    def export_trace_jsonl(self, path: str) -> int:
        return self.tracer.export_jsonl(path)

    def export_chrome_trace(self, path: str) -> int:
        return self.tracer.export_chrome_trace(path)


NULL_TELEMETRY = Telemetry.disabled()

# The evidence trail has no dependency back into core, so it exports
# eagerly; the audit engine and monitors (repro.obs.audit /
# repro.obs.monitors) import core types and are reached as submodules
# (or lazily via __getattr__) to keep the obs package import-light.
from .evidence import (EvidenceChainError, EvidenceTrail,  # noqa: E402
                       GENESIS_HASH, verify_entries)

_LAZY_EXPORTS = {
    "AuditEngine": ("audit", "AuditEngine"),
    "AuditReport": ("audit", "AuditReport"),
    "resolve_evidence": ("audit", "resolve_evidence"),
    "MonitorDaemon": ("monitors", "MonitorDaemon"),
    "ResidueScrubberMonitor": ("monitors", "ResidueScrubberMonitor"),
    "ResidueWatchlist": ("monitors", "ResidueWatchlist"),
    "TTLWatcherMonitor": ("monitors", "TTLWatcherMonitor"),
    "BreachDeadlineWatcherMonitor": ("monitors",
                                     "BreachDeadlineWatcherMonitor"),
    "JournalBoundWatcherMonitor": ("monitors", "JournalBoundWatcherMonitor"),
}


def __getattr__(name: str):
    if name in _LAZY_EXPORTS:
        import importlib

        module_name, attr = _LAZY_EXPORTS[name]
        module = importlib.import_module(f".{module_name}", __name__)
        return getattr(module, attr)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "AuditEngine",
    "AuditReport",
    "BreachDeadlineWatcherMonitor",
    "EvidenceChainError",
    "EvidenceTrail",
    "GENESIS_HASH",
    "JournalBoundWatcherMonitor",
    "MonitorDaemon",
    "ResidueScrubberMonitor",
    "ResidueWatchlist",
    "TTLWatcherMonitor",
    "resolve_evidence",
    "verify_entries",
    "Counter",
    "DEFAULT_BUCKET_BOUNDS_NS",
    "Gauge",
    "LatencyHistogram",
    "MetricsRegistry",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
    "NULL_SPAN",
    "NULL_TELEMETRY",
    "NULL_TIMER",
    "Span",
    "Telemetry",
    "Timer",
    "Tracer",
    "parse_prometheus",
    "snapshot",
    "to_prometheus",
]
