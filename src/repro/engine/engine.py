"""The request engine: worker pool, admission control, fair scheduling.

Design notes
------------

**Two pools, not one.**  Request workers execute whole submitted
requests (a DED invocation, an export, an erasure).  A request that
itself scatter-gathers across shards must not wait for *request*
workers to pick up its sub-tasks — with every worker busy doing
exactly that, nobody could, and the engine would deadlock.  Shard
fan-out therefore runs on a dedicated scatter pool
(:meth:`RequestEngine.scatter`), sized to the shard count's typical
needs and used only for sub-tasks that cannot themselves fan out.

**Admission control.**  ``in_flight`` counts requests accepted but not
yet finished (queued + executing).  ``submit`` blocks while the bound
is reached — open-loop drivers therefore apply backpressure to the
arrival process, which is what makes the measured p99 honest — and
``try_submit`` returns ``None`` instead (load shedding), counted in
:class:`EngineStats`.

**Fairness.**  The queue is a
:class:`~repro.kernel.scheduler.PurposeFairQueue`: one FIFO per
purpose, drained round-robin, so one purpose's burst cannot starve
another.  Callers tag work via ``submit(..., purpose=...)``; untagged
work shares the ``"default"`` lane.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Callable, Dict, List, Optional, Sequence

from .. import errors
from ..kernel.scheduler import PurposeFairQueue
from ..obs import NULL_TELEMETRY, Telemetry

#: Fairness lane used when the caller does not name a purpose.
DEFAULT_LANE = "default"


class EngineStats:
    """Monotonic request-engine counters (all mutated under one lock)."""

    __slots__ = ("submitted", "completed", "failed", "shed",
                 "peak_queue_depth", "peak_in_flight")

    def __init__(self) -> None:
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        self.shed = 0
        self.peak_queue_depth = 0
        self.peak_in_flight = 0

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}


class RequestEngine:
    """Bounded worker pool with purpose-fair scheduling.

    ``workers`` request threads drain a :class:`PurposeFairQueue`;
    ``max_in_flight`` bounds accepted-but-unfinished requests (default
    ``4 * workers``).  Use as a context manager or call
    :meth:`start` / :meth:`stop`.
    """

    def __init__(
        self,
        workers: int = 4,
        max_in_flight: Optional[int] = None,
        scatter_workers: Optional[int] = None,
        telemetry: Optional[Telemetry] = None,
        name: str = "engine",
    ) -> None:
        if workers < 1:
            raise errors.KernelError(
                f"a request engine needs at least 1 worker, got {workers}"
            )
        self.workers = workers
        self.max_in_flight = (
            max_in_flight if max_in_flight is not None else 4 * workers
        )
        if self.max_in_flight < 1:
            raise errors.KernelError(
                f"max_in_flight must be >= 1, got {self.max_in_flight}"
            )
        self.scatter_workers = (
            scatter_workers if scatter_workers is not None else max(2, workers)
        )
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.name = name
        self.stats = EngineStats()

        self._queue = PurposeFairQueue()
        self._lock = threading.Lock()
        self._can_admit = threading.Condition(self._lock)
        self._in_flight = 0
        self._threads: List[threading.Thread] = []
        self._scatter_pool: Optional[ThreadPoolExecutor] = None
        self._running = False
        self._gauge_queue = self.telemetry.gauge(f"{name}.queue_depth")
        self._gauge_in_flight = self.telemetry.gauge(f"{name}.in_flight")

    # -- lifecycle -------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._running

    def start(self) -> "RequestEngine":
        if self._running:
            return self
        self._running = True
        self._scatter_pool = ThreadPoolExecutor(
            max_workers=self.scatter_workers,
            thread_name_prefix=f"{self.name}-scatter",
        )
        self._threads = [
            threading.Thread(
                target=self._worker_loop,
                name=f"{self.name}-worker-{i}",
                daemon=True,
            )
            for i in range(self.workers)
        ]
        for thread in self._threads:
            thread.start()
        return self

    def stop(self, wait: bool = True) -> None:
        """Drain the queue, stop the workers, shut the scatter pool."""
        if not self._running:
            return
        self._running = False
        self._queue.close()
        if wait:
            for thread in self._threads:
                thread.join()
        self._threads = []
        if self._scatter_pool is not None:
            self._scatter_pool.shutdown(wait=wait)
            self._scatter_pool = None

    def __enter__(self) -> "RequestEngine":
        return self.start()

    def __exit__(self, *exc_info) -> bool:
        self.stop()
        return False

    # -- submission ------------------------------------------------------

    def submit(
        self,
        fn: Callable[..., object],
        *args: object,
        purpose: str = DEFAULT_LANE,
        **kwargs: object,
    ) -> "Future[object]":
        """Enqueue a request; blocks while the in-flight bound is hit.

        ``purpose`` names the fairness lane and is consumed here; to
        pass a keyword literally named ``purpose`` to ``fn``, bind it
        first (``functools.partial`` or a closure).
        """
        if not self._running:
            raise errors.KernelError(
                f"request engine {self.name!r} is not running"
            )
        with self._can_admit:
            while self._in_flight >= self.max_in_flight:
                self._can_admit.wait()
            return self._admit_locked(fn, args, kwargs, purpose)

    def try_submit(
        self,
        fn: Callable[..., object],
        *args: object,
        purpose: str = DEFAULT_LANE,
        **kwargs: object,
    ) -> Optional["Future[object]"]:
        """Like :meth:`submit` but sheds (returns None) at the bound."""
        if not self._running:
            raise errors.KernelError(
                f"request engine {self.name!r} is not running"
            )
        with self._can_admit:
            if self._in_flight >= self.max_in_flight:
                self.stats.shed += 1
                return None
            return self._admit_locked(fn, args, kwargs, purpose)

    def _admit_locked(self, fn, args, kwargs, purpose) -> "Future[object]":
        future: "Future[object]" = Future()
        self._in_flight += 1
        self.stats.submitted += 1
        self.stats.peak_in_flight = max(
            self.stats.peak_in_flight, self._in_flight
        )
        self._gauge_in_flight.set(self._in_flight)
        try:
            depth = self._queue.push(purpose, (future, fn, args, kwargs))
        except errors.KernelError:
            # submit() raced stop(): the queue closed between the
            # running check and the push.  Roll back the admission —
            # no worker will ever run this request, so a leaked
            # _in_flight count would block drain() forever.
            self._in_flight -= 1
            self.stats.submitted -= 1
            self._gauge_in_flight.set(self._in_flight)
            self._can_admit.notify_all()
            raise
        self.stats.peak_queue_depth = max(self.stats.peak_queue_depth, depth)
        self._gauge_queue.set(depth)
        return future

    # -- execution -------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            item = self._queue.pop(timeout=0.05)
            if item is None:
                if self._queue.closed and len(self._queue) == 0:
                    return
                continue
            future, fn, args, kwargs = item
            self._gauge_queue.set(len(self._queue))
            if not future.set_running_or_notify_cancel():
                self._finish(failed=False, counted=False)
                continue
            try:
                result = fn(*args, **kwargs)
            except BaseException as exc:  # noqa: BLE001 - relayed via Future
                future.set_exception(exc)
                self._finish(failed=True)
            else:
                future.set_result(result)
                self._finish(failed=False)

    def _finish(self, failed: bool, counted: bool = True) -> None:
        with self._can_admit:
            self._in_flight -= 1
            if counted:
                if failed:
                    self.stats.failed += 1
                else:
                    self.stats.completed += 1
            self._gauge_in_flight.set(self._in_flight)
            # notify_all: both blocked submitters and drain() waiters
            # share this condition.
            self._can_admit.notify_all()

    # -- scatter-gather --------------------------------------------------

    def scatter(self, tasks: Sequence[Callable[[], object]]) -> List[object]:
        """Run shard sub-tasks concurrently; results in task order.

        This is the runner installed via
        :meth:`~repro.storage.shard.ShardedDBFS.set_fanout`.  It uses
        the dedicated scatter pool so a request running *on* a worker
        can fan out without waiting for free request workers.
        Exceptions propagate to the caller exactly as the serial loop
        would raise them.
        """
        pool = self._scatter_pool
        if pool is None or len(tasks) <= 1:
            return [task() for task in tasks]
        futures = [pool.submit(task) for task in tasks]
        return [future.result() for future in futures]

    # -- synchronization & reporting -------------------------------------

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Block until no request is in flight; False on timeout."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._can_admit:
            while self._in_flight > 0:
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    return False
                self._can_admit.wait(remaining)
            return True

    @property
    def in_flight(self) -> int:
        with self._lock:
            return self._in_flight

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    def lane_depths(self) -> Dict[str, int]:
        """Queued requests per purpose lane (fairness telemetry)."""
        return self._queue.depths()

    def as_dict(self) -> Dict[str, object]:
        report: Dict[str, object] = {
            "name": self.name,
            "workers": self.workers,
            "max_in_flight": self.max_in_flight,
            "running": self._running,
            "queue_depth": self.queue_depth,
            "in_flight": self.in_flight,
            "lanes": self.lane_depths(),
            "stats": self.stats.as_dict(),
        }
        return report

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "running" if self._running else "stopped"
        return (f"RequestEngine({self.name}, {self.workers} workers, "
                f"{state}, in_flight={self.in_flight})")
