"""repro.engine — the concurrent request engine (PR 6).

rgpdOS serves many tenants' processings at once; serialized DED
invocations leave the (simulated) devices idle while the CPU parses
membranes and vice versa.  :class:`RequestEngine` closes that gap:

* a bounded pool of worker threads runs independent DED invocations,
  rights requests and queries in parallel — DBFS mutations serialize
  per shard behind each shard's single-writer lock, reads go through
  MVCC snapshots (``repro.storage.mvcc``) and never block writers;
* a separate small scatter pool fans type-level queries and bulk
  rights out across shards concurrently
  (:meth:`~repro.storage.shard.ShardedDBFS.set_fanout`) without
  risking worker-starvation deadlock;
* admission control bounds the number of in-flight requests
  (``max_in_flight``); ``submit`` blocks at the bound, ``try_submit``
  sheds, and queue-depth / in-flight gauges land in the shared
  telemetry registry;
* fairness is per purpose: the queue is a
  :class:`~repro.kernel.scheduler.PurposeFairQueue`, the purpose-kernel
  CPU-partitioning policy applied to request scheduling.

``RgpdOS(workers=N)`` (or ``start_engine``) wires one engine into the
system facade; the default ``workers=0`` keeps the serial seed path
byte-for-byte unchanged.
"""

from .engine import EngineStats, RequestEngine

__all__ = ["EngineStats", "RequestEngine"]
