"""Command-line interface: ``python -m repro <command>``.

Small operational surface over the library — enough to demo the
system, validate declaration files, and rerun the headline experiments
without writing Python:

==============  =========================================================
``demo``        the Listings 1–3 walkthrough (collect → invoke → rights)
``parse``       validate a declaration file; print what it declares
``fig1``        print the Figure 1 penalty series
``gdprbench``   the GB-1 persona × engine grid
``placement``   a DED placement decision (host / PIM / storage)
``explain``     plan a multi-predicate query over a seeded store
``audit``       build the demo system, run the compliance audit
``stats``       exercise the demo system, dump the telemetry snapshot
``version``     library version
==============  =========================================================

``demo`` and ``gdprbench`` accept ``--trace-out FILE`` to dump the
run's trace spans as JSONL; ``stats`` accepts ``--format prometheus``
for a scrapeable metrics dump.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from . import __version__, errors

_DEMO_DECLARATIONS = """
type user {
  fields { name: string, pwd: string [sensitive], year_of_birthdate: int };
  view v_name { name };
  view v_ano { year_of_birthdate };
  consent { purpose1: all, purpose2: none, purpose3: v_ano };
  collection { web_form: user_form.html };
  origin: subject;  age: 1Y;  sensitivity: hight;
}
type age_pd {
  fields { age: int };
  collection { web_form: derived };
  origin: sysadmin;  age: 90D;
}
purpose purpose3 {
  description: "Compute the age of the input user";
  uses: user via v_ano;  produces: age_pd;  basis: consent;
}
purpose purpose1 { description: "Account operation"; uses: user; basis: contract; }
purpose purpose2 { description: "Marketing"; uses: user; basis: consent; }
"""


def _demo_system(shards: int = 1, telemetry=None):
    from .core.purposes import attach_purpose
    from .core.system import RgpdOS

    system = RgpdOS(
        operator_name="cli-demo", shards=shards, telemetry=telemetry
    )
    system.install(_DEMO_DECLARATIONS)

    def compute_age(user):
        from .core.ded import produce

        if user.year_of_birthdate:
            return produce("age_pd", {"age": 2026 - user.year_of_birthdate})
        return None

    attach_purpose(compute_age, "purpose3")
    system.register(compute_age, sysadmin_approved=True)
    system.collect(
        "user",
        {"name": "Alice Martin", "pwd": "hunter2",
         "year_of_birthdate": 1990},
        subject_id="alice", method="web_form",
    )
    system.collect(
        "user",
        {"name": "Bob Durand", "pwd": "swordfish",
         "year_of_birthdate": 1985},
        subject_id="bob", method="web_form",
    )
    return system


def cmd_demo(args: argparse.Namespace) -> int:
    system = _demo_system()
    if args.workers > 0:
        system.start_engine(workers=args.workers)
        future = system.invoke_async("compute_age", target="user")
        result = future.result()
        print(f"[engine: {args.workers} workers] "
              f"processed={result.processed} "
              f"produced={len(result.produced)} denied={result.denied}")
    else:
        result = system.invoke("compute_age", target="user")
        print(f"processed={result.processed} "
              f"produced={len(result.produced)} denied={result.denied}")
    system.rights.object_to("bob", "purpose3")
    result = system.invoke("compute_age", target="user")
    print(f"after bob's objection: processed={result.processed} "
          f"denied={result.denied}")
    outcome = system.rights.erase("alice")
    print(f"alice erased: {len(outcome.erased_uids)} records, "
          f"fully_forgotten={outcome.fully_forgotten}")
    print(system.audit().summary())
    if args.workers > 0 and system.engine is not None:
        engine = system.engine.as_dict()
        print(f"engine: completed={engine['stats']['completed']} "
              f"failed={engine['stats']['failed']} "
              f"peak_in_flight={engine['stats']['peak_in_flight']}")
        system.stop_engine()
    if args.trace_out:
        count = system.telemetry.export_trace_jsonl(args.trace_out)
        print(f"wrote {count} trace span(s) to {args.trace_out}")
    return 0


def cmd_parse(args: argparse.Namespace) -> int:
    from .dsl.loader import load_source

    try:
        with open(args.file) as handle:
            source = handle.read()
    except OSError as exc:
        print(f"cannot read {args.file}: {exc}", file=sys.stderr)
        return 2
    try:
        types, purposes = load_source(source)
    except errors.DSLError as exc:
        print(f"declaration error: {exc}", file=sys.stderr)
        return 1
    for name, pd_type in sorted(types.items()):
        ttl = pd_type.ttl_seconds
        print(f"type {name}: fields={sorted(pd_type.field_names)} "
              f"views={sorted(pd_type.views)} ttl={ttl} "
              f"sensitivity={pd_type.sensitivity}")
    for name, purpose in sorted(purposes.items()):
        print(f"purpose {name}: uses={list(purpose.uses)} "
              f"basis={purpose.basis}")
    print(f"OK: {len(types)} type(s), {len(purposes)} purpose(s)")
    return 0


def cmd_fig1(args: argparse.Namespace) -> int:
    from .workloads.penalties import (
        penalty_records,
        top_sectors,
        totals_by_year,
    )

    records = penalty_records()
    print("total penalties per year:")
    for year, total in totals_by_year(records).items():
        print(f"  {year}  {total / 1e6:10.2f} M EUR")
    print(f"top {args.sectors} sanctioned sectors:")
    for sector, total in top_sectors(records, n=args.sectors):
        print(f"  {sector:36s} {total / 1e6:10.2f} M EUR")
    return 0


def cmd_gdprbench(args: argparse.Namespace) -> int:
    from .baseline.gdprbench import run_comparison
    from .obs import Telemetry

    telemetry = Telemetry() if args.trace_out else None
    if args.workers > 0:
        return _gdprbench_concurrent(args, telemetry)
    results = run_comparison(
        record_count=args.records,
        operations=args.ops,
        personas=args.personas,
        seed=args.seed,
        shards=args.shards,
        telemetry=telemetry,
        record_codec=args.codec,
    )
    print(f"{'engine':22s} {'persona':12s} {'ops/s':>10s} {'denied':>7s}")
    for result in results:
        print(
            f"{result.adapter:22s} {result.persona:12s} "
            f"{result.ops_per_second:10.0f} {result.denied:7d}"
        )
    if telemetry is not None:
        count = telemetry.export_trace_jsonl(args.trace_out)
        print(f"wrote {count} trace span(s) to {args.trace_out}")
    return 0


def _gdprbench_concurrent(args: argparse.Namespace, telemetry) -> int:
    """The rgpdOS engine only, with the request engine in the path.

    Closed-loop by default (submit everything, wait, report ops/s);
    with ``--arrival-rate`` the mix is replayed open-loop at that
    Poisson rate and the tail latencies are what matter.
    """
    import time as _time

    from .baseline.gdprbench import (
        GDPRBenchRunner,
        RgpdOSAdapter,
        build_persona_tasks,
    )
    from .workloads.openloop import OpenLoopDriver

    adapter = RgpdOSAdapter(
        shards=args.shards, telemetry=telemetry,
        record_codec=args.codec, workers=args.workers,
    )
    runner = GDPRBenchRunner(adapter, seed=args.seed)
    runner.load(args.records)
    engine = adapter.system.engine
    if args.arrival_rate:
        print(f"{'persona':12s} {'offered/s':>10s} {'done/s':>8s} "
              f"{'p50_ms':>8s} {'p95_ms':>8s} {'p99_ms':>8s}")
    else:
        print(f"{'engine':22s} {'persona':12s} {'ops/s':>10s}")
    for persona in args.personas:
        tasks, names = build_persona_tasks(
            runner, persona, args.ops, seed=args.seed
        )
        if args.arrival_rate:
            driver = OpenLoopDriver(
                submit=lambda task: engine.submit(task, purpose="gdprbench")
            )
            result = driver.run(
                tasks, args.arrival_rate, seed=args.seed, op_names=names
            )
            print(f"{persona:12s} {args.arrival_rate:10.1f} "
                  f"{result.throughput:8.1f} "
                  f"{result.percentile_ms(50):8.2f} "
                  f"{result.percentile_ms(95):8.2f} "
                  f"{result.percentile_ms(99):8.2f}")
        else:
            start = _time.perf_counter()
            futures = [
                engine.submit(task, purpose=name)
                for task, name in zip(tasks, names)
            ]
            for future in futures:
                future.result()
            wall = _time.perf_counter() - start
            print(f"{adapter.name:22s} {persona:12s} {args.ops / wall:10.0f}")
    snapshot = engine.as_dict()
    print(f"engine: workers={snapshot['workers']} "
          f"completed={snapshot['stats']['completed']} "
          f"failed={snapshot['stats']['failed']} "
          f"shed={snapshot['stats']['shed']} "
          f"peak_in_flight={snapshot['stats']['peak_in_flight']}")
    if telemetry is not None:
        count = telemetry.export_trace_jsonl(args.trace_out)
        print(f"wrote {count} trace span(s) to {args.trace_out}")
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    """Seed a store, plan the query, run it, print plan vs. actual.

    Predicates use the ``field OP value`` surface syntax, e.g.::

        repro explain user "year_of_birthdate >= 1990" "city == Lyon"
    """
    from .core.system import RgpdOS
    from .storage.query import parse_predicate
    from .workloads.generator import STANDARD_DECLARATIONS, PopulationGenerator

    try:
        predicates = [parse_predicate(text) for text in args.predicates]
    except errors.DBFSError as exc:
        print(f"bad predicate: {exc}", file=sys.stderr)
        return 2

    system = RgpdOS(operator_name="cli-explain", record_codec=args.codec)
    system.install(STANDARD_DECLARATIONS)
    generator = PopulationGenerator(seed=args.seed)
    with system.dbfs.batch():
        for subject in generator.subjects(args.records):
            system.collect(
                "user", subject.user_record(),
                subject_id=subject.subject_id, method="web_form",
            )
    credential = system.ps.builtins.credential

    indexed_fields = args.index
    if indexed_fields is None:
        indexed_fields = (
            ["year_of_birthdate", "city"] if args.type == "user" else []
        )
    for field_name in indexed_fields:
        try:
            system.dbfs.create_index(args.type, field_name, credential)
        except errors.DBFSError as exc:
            print(f"cannot index {args.type}.{field_name}: {exc}",
                  file=sys.stderr)
            return 2

    try:
        plan = system.dbfs.explain(args.type, predicates, credential)
        stats = system.dbfs.stats
        partial_before = stats.partial_decodes
        full_before = stats.full_decodes
        matched = system.dbfs.select_uids_where(
            args.type, predicates, credential
        )
    except errors.RgpdOSError as exc:
        print(f"query failed: {exc}", file=sys.stderr)
        return 1

    described = plan.describe()
    print(f"query: {args.type} WHERE "
          + (" AND ".join(p.describe() for p in predicates) or "<all rows>"))
    print(f"strategy: {described['strategy']} "
          f"(codec={args.codec}, records={args.records})")
    if plan.index_field is not None:
        print(f"index used: {args.type}.{plan.index_field} "
              f"driving {plan.index_predicate.describe()}")
    else:
        print("index used: none (full table scan)")
    print(f"estimated rows: {plan.estimated_rows} of {plan.table_rows}")
    print(f"actual rows: {len(matched)}")
    residual = described["residual"]
    print("residual predicates: "
          + (", ".join(residual) if residual else "none"))
    fields = described["fields_decoded"]
    print("fields decoded: "
          + (", ".join(fields) if fields else "none (index-only)"))
    print(f"decodes: partial={stats.partial_decodes - partial_before} "
          f"full={stats.full_decodes - full_before}")
    if described["candidate_estimates"]:
        print("candidate indexes considered:")
        for name, estimate in sorted(described["candidate_estimates"].items()):
            print(f"  {name:40s} ~{estimate} row(s)")
    return 0


def cmd_placement(args: argparse.Namespace) -> int:
    from .kernel.pim import DEDPlacer

    placer = DEDPlacer()
    decision = placer.place(args.records, args.bytes, args.intensity)
    for site, latency in sorted(decision.estimates.items()):
        marker = " <- chosen" if site == decision.site else ""
        print(f"  {site:10s} {latency * 1e3:12.4f} ms{marker}")
    print(f"placement: {decision.site} "
          f"(speedup over host: {decision.speedup_over_host():.2f}x)")
    return 0


def cmd_audit(args: argparse.Namespace) -> int:
    """Article-indexed compliance audit of an exercised demo system.

    Runs the demo workload plus one erasure (so the residue scrubber
    has needles to watch), optionally ticks the always-on monitors,
    then renders the :class:`~repro.obs.audit.AuditReport`.
    """
    system = _demo_system(shards=args.shards)
    system.invoke("compute_age", target="user")
    system.rights.erase("bob")
    if args.continuous > 0:
        daemon = system.start_monitors(expiry_daemon=args.expiry_daemon)
        daemon.run_for_ticks(args.continuous)
    report = system.audit_report()
    if args.evidence_out:
        count = system.evidence.export_jsonl(args.evidence_out)
        print(f"wrote {count} evidence entries to {args.evidence_out}",
              file=sys.stderr)
    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    elif args.format == "markdown":
        print(report.to_markdown())
    elif args.format == "prometheus":
        # The audit run published its verdict/observable gauges, so
        # the scrape carries repro_rgpdos_audit_* / _residue_* samples.
        print(system.telemetry.to_prometheus(), end="")
    else:
        for control in report.controls:
            print(f"[{control.status.upper():4s}] "
                  f"{control.control_id:32s} {control.article}")
        print(report.summary())
        print(f"evidence trail: {len(system.evidence)} entries, "
              f"head {report.evidence_head[:16]}..., "
              f"chain {'OK' if system.evidence.verify_chain() else 'BROKEN'}")
    return 0 if report.ok else 1


def cmd_retain(args: argparse.Namespace) -> int:
    """Proactive retention walkthrough: expire, erase in waves, compact.

    Builds the demo system with the expiry daemon on, advances the
    simulated clock past the demo TTLs, lets the timer wheel drain into
    sealed erasure waves, optionally compacts every durable plane, and
    re-runs the Art. 5(1)(e) audit control to show it passing *because
    the daemon ran*.
    """
    from .core.clock import parse_duration

    # In json mode the document is the whole output; the walkthrough
    # narration only prints for the default text format.
    say = (lambda *a: None) if args.format == "json" else print

    system = _demo_system(shards=args.shards)
    system.invoke("compute_age", target="user")
    system.start_monitors(expiry_daemon=True, expiry_wave_size=args.wave_size)
    daemon = system.expiry_daemon
    say(f"timer wheel: {daemon.pending} TTL deadline(s) indexed")

    advance = parse_duration(args.advance)
    system.advance_time(advance)
    say(f"clock advanced {args.advance} "
        f"(now={system.clock.now():.0f}s)")

    daemon.run_until_drained()
    wheel = daemon.wheel.as_dict()
    say(f"expiry daemon: {daemon.waves} wave(s), "
        f"{daemon.erased_total} PD erased, "
        f"{wheel['slot_drains']} slot drain(s), "
        f"{wheel['cascades']} cascade(s), "
        f"{daemon.pending} still pending")

    if args.compact:
        report = system.dbfs.compact()
        say("compaction: "
            f"{report['records_rewritten']} record(s) rewritten, "
            f"{report['indexes_compacted']} index(es) repacked, "
            f"{report['blooms_rebuilt']} bloom(s) rebuilt, "
            f"{report['orphan_blocks']} orphan block(s) scrubbed, "
            f"{report['journal_records_discarded']} journal record(s) "
            f"checkpointed, {report['blocks_reclaimed']} block(s) "
            "reclaimed")

    audit = system.audit_report()
    retention = next(
        c for c in audit.controls if c.control_id == "art5e-retention"
    )
    say(f"[{retention.status.upper():4s}] {retention.control_id}: "
        f"{retention.detail}")
    if args.format == "json":
        print(json.dumps(
            {
                "daemon": daemon.as_dict(),
                "retention_control": {
                    "status": retention.status,
                    "detail": retention.detail,
                    "evidence": [e.ref for e in retention.evidence],
                },
            },
            indent=2, sort_keys=True,
        ))
    return 0 if retention.status == "pass" else 1


def cmd_stats(args: argparse.Namespace) -> int:
    """Build the demo system, run one round of work, dump telemetry."""
    system = _demo_system(shards=args.shards)
    if args.workers > 0:
        # Engine path: the same work submitted concurrently, so the
        # dump includes the engine block and its queue-depth /
        # in-flight gauges.
        system.start_engine(workers=args.workers)
        system.invoke_async("compute_age", target="user").result()
    else:
        system.invoke("compute_age", target="user")
    system.rights.right_of_access("alice")
    if args.format == "prometheus":
        print(system.telemetry.to_prometheus(), end="")
        return 0
    report = {
        "stats": system.stats(),
        "cache_stats": system.cache_stats(),
        "shard_stats": list(system.shard_stats()),
    }
    print(json.dumps(report, indent=2, sort_keys=True, default=str))
    return 0


def cmd_cluster(args: argparse.Namespace) -> int:
    """Replicated-cluster walkthrough: ship, read from replicas,
    erase to the watermark, optionally fail over.

    ``--regions`` places the nodes (leader first; ``region:scc``
    invokes an Art. 46 safeguard for that node); ``--replicas`` pads
    the list with copies of the leader region when shorter.
    """
    from .cluster import LinkConfig, ReplicatedCluster

    regions = [r for r in args.regions.split(",") if r]
    if not regions:
        regions = ["eu"]
    while len(regions) < args.replicas + 1:
        regions.append(regions[0].partition(":")[0])
    system = _demo_system(shards=args.shards)
    cluster = ReplicatedCluster(
        system,
        regions=regions,
        link_config=LinkConfig(latency_seconds=args.link_latency),
        batch_records=args.batch_records,
    )
    try:
        system.invoke("compute_age", target="user")
        cluster.sync()
        export = cluster.right_of_access("alice")
        outcome = system.rights.erase("bob")
        cluster.sync()
        propagated = all(
            cluster.erasure_propagated(uid) for uid in outcome.erased_uids
        )
        failover = None
        if args.failover:
            cluster.fail_leader()
            promoted = cluster.promote()
            demoted = cluster.demote()
            cluster.sync()
            failover = {
                "promoted": promoted.node_id,
                "promoted_region": promoted.region,
                "demoted_rejoined": demoted.node_id,
            }
        report = {
            "cluster": cluster.stats(),
            "replica_read_records": len(export["records"]),
            "erased_uids": list(outcome.erased_uids),
            "erasure_propagated": propagated,
            "failover": failover,
        }
        if args.format == "json":
            print(json.dumps(report, indent=2, sort_keys=True, default=str))
        elif args.format == "prometheus":
            print(system.telemetry.to_prometheus(), end="")
        else:
            stats = report["cluster"]
            print(f"leader: {stats['leader']}")
            for node in stats["nodes"]:
                safeguard = (
                    f" ({node['safeguard']})" if node["safeguard"] else ""
                )
                print(f"  {node['node_id']:8s} {node['region']:3s}"
                      f"{safeguard:7s} {node['role']:9s} "
                      f"lag={stats['lag'].get(node['node_id'], 0)}")
            print(f"replica read: {report['replica_read_records']} "
                  f"record(s) for alice")
            print(f"erasure propagated to every replica: {propagated}")
            print(f"placement violations: "
                  f"{stats['placement']['violations']}")
            if failover is not None:
                print(f"failover: promoted {failover['promoted']} "
                      f"({failover['promoted_region']}), rejoined "
                      f"{failover['demoted_rejoined']} as follower")
        return 0 if propagated else 1
    finally:
        cluster.close()


def cmd_version(args: argparse.Namespace) -> int:
    print(f"repro (rgpdOS reproduction) {__version__}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="rgpdOS reproduction — GDPR enforcement by the OS",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    demo = subparsers.add_parser("demo", help="run the Listings 1-3 walkthrough")
    demo.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="write the run's trace spans to FILE as JSONL",
    )
    demo.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="run DED invocations through a request engine with N "
             "workers (default 0: serial, unchanged path)",
    )

    parse_cmd = subparsers.add_parser(
        "parse", help="validate a declaration file"
    )
    parse_cmd.add_argument("file", help="path to a .rgpd declaration file")

    fig1 = subparsers.add_parser("fig1", help="print the Fig. 1 series")
    fig1.add_argument("--sectors", type=int, default=5)

    bench = subparsers.add_parser("gdprbench", help="run the GB-1 grid")
    bench.add_argument("--records", type=int, default=30)
    bench.add_argument("--ops", type=int, default=60)
    bench.add_argument("--seed", type=int, default=7)
    bench.add_argument(
        "--shards", type=int, default=1,
        help="DBFS shard count for the rgpdOS engine (default 1)",
    )
    bench.add_argument(
        "--personas", nargs="+",
        default=["customer", "controller", "processor", "regulator"],
    )
    bench.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="write the rgpdOS engine's trace spans to FILE as JSONL",
    )
    bench.add_argument(
        "--codec", choices=("v1", "v2"), default="v2",
        help="record encoding for the rgpdOS engine (default v2)",
    )
    bench.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="run the rgpdOS engine concurrently with N request "
             "workers (default 0: the serial three-engine grid)",
    )
    bench.add_argument(
        "--arrival-rate", type=float, default=0.0, metavar="R",
        help="with --workers, replay each persona open-loop at R ops/s "
             "and report p50/p95/p99 (default 0: closed loop)",
    )

    explain = subparsers.add_parser(
        "explain", help="plan a multi-predicate query over a seeded store"
    )
    explain.add_argument("type", help="PD type to query (e.g. user)")
    explain.add_argument(
        "predicates", nargs="+", metavar="PREDICATE",
        help='predicates like "year_of_birthdate >= 1990" "city == Lyon"',
    )
    explain.add_argument("--records", type=int, default=200)
    explain.add_argument("--seed", type=int, default=7)
    explain.add_argument(
        "--codec", choices=("v1", "v2"), default="v2",
        help="record encoding for the seeded store (default v2)",
    )
    explain.add_argument(
        "--index", action="append", default=None, metavar="FIELD",
        help="index FIELD before planning (repeatable; defaults to "
             "year_of_birthdate and city for the user type)",
    )

    placement = subparsers.add_parser(
        "placement", help="DED placement decision"
    )
    placement.add_argument("--records", type=int, default=10000)
    placement.add_argument("--bytes", type=int, default=4096)
    placement.add_argument("--intensity", type=float, default=1.0)

    audit = subparsers.add_parser(
        "audit",
        help="article-indexed compliance audit of the demo system",
    )
    audit.add_argument(
        "--format", choices=("text", "json", "markdown", "prometheus"),
        default="text", help="report rendering (default text)",
    )
    audit.add_argument(
        "--shards", type=int, default=1,
        help="DBFS shard count for the demo system (default 1)",
    )
    audit.add_argument(
        "--continuous", type=int, default=0, metavar="TICKS",
        help="tick the always-on monitors TICKS times before the "
             "audit (residue scrubber, TTL/breach/journal watchers; "
             "default 0: audit only)",
    )
    audit.add_argument(
        "--evidence-out", default=None, metavar="FILE",
        help="export the hash-chained evidence trail to FILE as JSONL",
    )
    audit.add_argument(
        "--expiry-daemon", action="store_true",
        help="run the proactive retention enforcer alongside the "
             "monitors during --continuous ticking",
    )

    retain = subparsers.add_parser(
        "retain",
        help="proactive retention walkthrough (timer wheel -> erasure "
             "waves -> compaction -> Art. 5(1)(e) audit)",
    )
    retain.add_argument(
        "--shards", type=int, default=1,
        help="DBFS shard count for the demo system (default 1)",
    )
    retain.add_argument(
        "--advance", default="2Y", metavar="DURATION",
        help="simulated time to advance before draining the wheel "
             "(DSL duration, default 2Y — past every demo TTL)",
    )
    retain.add_argument(
        "--wave-size", type=int, default=64,
        help="erasure wave bound (default 64)",
    )
    retain.add_argument(
        "--compact", action="store_true",
        help="compact every durable plane after the erasure waves",
    )
    retain.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default text)",
    )

    stats = subparsers.add_parser(
        "stats", help="telemetry snapshot of an exercised demo system"
    )
    stats.add_argument(
        "--shards", type=int, default=1,
        help="DBFS shard count for the demo system (default 1)",
    )
    stats.add_argument(
        "--format", choices=("json", "prometheus"), default="json",
        help="output format (default json)",
    )
    stats.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="exercise the system through a request engine with N "
             "workers; the dump then includes the engine block and "
             "its queue-depth/in-flight gauges (default 0: serial)",
    )

    cluster = subparsers.add_parser(
        "cluster",
        help="replicated-cluster walkthrough (journal shipping, "
             "replica reads, RTBF watermark, optional failover)",
    )
    cluster.add_argument(
        "--replicas", type=int, default=2, metavar="N",
        help="follower count when --regions lists fewer (default 2)",
    )
    cluster.add_argument(
        "--regions", default="eu,eu,us:scc", metavar="LIST",
        help="comma-separated node regions, leader first; append "
             ":scc/:bcr to invoke an Art. 46 safeguard "
             "(default eu,eu,us:scc)",
    )
    cluster.add_argument(
        "--shards", type=int, default=1,
        help="DBFS shard count per node (default 1)",
    )
    cluster.add_argument(
        "--batch-records", type=int, default=32, metavar="N",
        help="replication group-commit batch size (default 32)",
    )
    cluster.add_argument(
        "--link-latency", type=float, default=0.002, metavar="SECONDS",
        help="simulated per-message link latency (default 0.002)",
    )
    cluster.add_argument(
        "--failover", action="store_true",
        help="kill the leader, promote the most-caught-up adequate "
             "follower, rejoin the old leader as a follower",
    )
    cluster.add_argument(
        "--format", choices=("text", "json", "prometheus"),
        default="text", help="output format (default text)",
    )

    subparsers.add_parser("version", help="print the library version")
    return parser


_COMMANDS = {
    "demo": cmd_demo,
    "parse": cmd_parse,
    "fig1": cmd_fig1,
    "gdprbench": cmd_gdprbench,
    "explain": cmd_explain,
    "placement": cmd_placement,
    "audit": cmd_audit,
    "retain": cmd_retain,
    "stats": cmd_stats,
    "cluster": cmd_cluster,
    "version": cmd_version,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - module execution path
    sys.exit(main())
