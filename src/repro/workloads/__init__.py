"""Workload and dataset generators.

``generator`` builds seeded synthetic subject populations and ships
the standard declaration source used across examples and benchmarks;
``penalties`` embeds the calibrated Figure 1 GDPR-penalty dataset.
"""
