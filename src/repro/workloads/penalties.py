"""The Figure 1 dataset: GDPR penalties 2018–2021.

Figure 1 of the paper plots, from the DataLegalDrive sanction map [2]:
(left) the total amount of penalties per year, "topping 1.2 billion
euros in 2021", and (right) the five most sanctioned business sectors.
The live website is unreachable offline, so this module embeds a
synthetic-but-calibrated dataset:

* the headline fines are real public record (Amazon €746M 2021,
  WhatsApp €225M 2021, Google €50M 2019, H&M €35.3M 2020, TIM €27.8M
  2020, British Airways €22M 2020, Marriott €20.4M 2020, ...);
* the long tail of small fines is generated deterministically to make
  the yearly totals match the published aggregates (≈ €0.4M in 2018,
  growing every year, ≈ €1.2B in 2021);
* the paper's own anecdote is present: the two doctors fined €3,000
  and €6,000 by the CNIL in 2020 for an exposed medical-image server.

The FIG1L/FIG1R benchmarks print exactly the two series the figure
shows.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from typing import Dict, List, Tuple

SECTOR_INTERNET = "Internet & Telecoms"
SECTOR_RETAIL = "Retail & Commerce"
SECTOR_FINANCE = "Finance, Insurance & Banking"
SECTOR_PUBLIC = "Public Sector & Education"
SECTOR_HEALTH = "Health"
SECTOR_TRANSPORT = "Transportation & Energy"
SECTOR_MEDIA = "Media & Entertainment"
SECTOR_HOSPITALITY = "Hospitality & Tourism"

SECTORS = (
    SECTOR_INTERNET,
    SECTOR_RETAIL,
    SECTOR_FINANCE,
    SECTOR_PUBLIC,
    SECTOR_HEALTH,
    SECTOR_TRANSPORT,
    SECTOR_MEDIA,
    SECTOR_HOSPITALITY,
)

#: Yearly totals the generated dataset is calibrated to (EUR).
YEAR_TOTALS_EUR: Dict[int, float] = {
    2018: 436_000.0,
    2019: 72_000_000.0,
    2020: 171_000_000.0,
    2021: 1_200_000_000.0,
}


@dataclass(frozen=True)
class PenaltyRecord:
    """One sanction: who, when, how much, for what sector."""

    year: int
    amount_eur: float
    sector: str
    country: str
    authority: str
    target: str


#: The publicly known headline fines (amounts in EUR).
_HEADLINE_FINES: Tuple[PenaltyRecord, ...] = (
    PenaltyRecord(2021, 746_000_000.0, SECTOR_RETAIL, "LU", "CNPD", "Amazon Europe"),
    PenaltyRecord(2021, 225_000_000.0, SECTOR_INTERNET, "IE", "DPC", "WhatsApp Ireland"),
    PenaltyRecord(2021, 50_000_000.0, SECTOR_INTERNET, "FR", "CNIL", "Google LLC (2021)"),
    PenaltyRecord(2021, 35_000_000.0, SECTOR_INTERNET, "FR", "CNIL", "Facebook (cookies)"),
    PenaltyRecord(2021, 27_000_000.0, SECTOR_FINANCE, "IT", "Garante", "Credit broker"),
    PenaltyRecord(2020, 35_300_000.0, SECTOR_RETAIL, "DE", "HmbBfDI", "H&M Service Center"),
    PenaltyRecord(2020, 27_800_000.0, SECTOR_INTERNET, "IT", "Garante", "TIM SpA"),
    PenaltyRecord(2020, 22_000_000.0, SECTOR_TRANSPORT, "GB", "ICO", "British Airways"),
    PenaltyRecord(2020, 20_400_000.0, SECTOR_HOSPITALITY, "GB", "ICO", "Marriott International"),
    PenaltyRecord(2020, 12_300_000.0, SECTOR_INTERNET, "IT", "Garante", "Vodafone Italia"),
    PenaltyRecord(2019, 50_000_000.0, SECTOR_INTERNET, "FR", "CNIL", "Google LLC (2019)"),
    PenaltyRecord(2019, 14_500_000.0, SECTOR_RETAIL, "DE", "BlnBDI", "Deutsche Wohnen"),
    PenaltyRecord(2019, 2_600_000.0, SECTOR_FINANCE, "ES", "AEPD", "Retail bank"),
    PenaltyRecord(2018, 250_000.0, SECTOR_FINANCE, "PT", "CNPD-PT", "Hospital billing vendor"),
    # The paper's § 1 anecdote: "in 2020 the CNIL in France penalized
    # two doctors (EUR 9K) for hosting medical images on a server which
    # was freely accessible on the Internet".
    PenaltyRecord(2020, 3_000.0, SECTOR_HEALTH, "FR", "CNIL", "Doctor (medical images, #1)"),
    PenaltyRecord(2020, 6_000.0, SECTOR_HEALTH, "FR", "CNIL", "Doctor (medical images, #2)"),
)

#: How the long tail distributes over sectors (weights), reflecting the
#: "companies of all types are impacted" spread of the sanction map.
_TAIL_SECTOR_WEIGHTS: Tuple[Tuple[str, float], ...] = (
    (SECTOR_INTERNET, 0.24),
    (SECTOR_RETAIL, 0.18),
    (SECTOR_FINANCE, 0.16),
    (SECTOR_PUBLIC, 0.14),
    (SECTOR_HEALTH, 0.10),
    (SECTOR_TRANSPORT, 0.08),
    (SECTOR_MEDIA, 0.06),
    (SECTOR_HOSPITALITY, 0.04),
)

_TAIL_COUNTRIES = ("FR", "DE", "ES", "IT", "RO", "PL", "NL", "BE", "AT", "SE")


def penalty_records(seed: int = 2021) -> List[PenaltyRecord]:
    """The full dataset: headline fines + calibrated long tail.

    Deterministic for a given seed; yearly totals match
    :data:`YEAR_TOTALS_EUR` to the euro.
    """
    rng = Random(seed)
    records = list(_HEADLINE_FINES)
    headline_by_year: Dict[int, float] = {}
    for record in _HEADLINE_FINES:
        headline_by_year[record.year] = (
            headline_by_year.get(record.year, 0.0) + record.amount_eur
        )

    sectors = [sector for sector, _ in _TAIL_SECTOR_WEIGHTS]
    weights = [weight for _, weight in _TAIL_SECTOR_WEIGHTS]
    counter = 0
    for year, total in sorted(YEAR_TOTALS_EUR.items()):
        remaining = total - headline_by_year.get(year, 0.0)
        if remaining < 0:
            raise ValueError(
                f"headline fines for {year} exceed the calibrated total"
            )
        while remaining > 0:
            counter += 1
            # Small fines: log-ish spread between 1K and 500K EUR.
            amount = min(remaining, float(rng.choice((1, 2, 5)) * 10 ** rng.randint(3, 5)))
            sector = rng.choices(sectors, weights=weights, k=1)[0]
            records.append(
                PenaltyRecord(
                    year=year,
                    amount_eur=amount,
                    sector=sector,
                    country=rng.choice(_TAIL_COUNTRIES),
                    authority="various",
                    target=f"operator-{counter:05d}",
                )
            )
            remaining -= amount
    return records


def totals_by_year(records: List[PenaltyRecord]) -> Dict[int, float]:
    """Fig. 1 left: total amount of penalties per year."""
    totals: Dict[int, float] = {}
    for record in records:
        totals[record.year] = totals.get(record.year, 0.0) + record.amount_eur
    return dict(sorted(totals.items()))


def totals_by_sector(records: List[PenaltyRecord]) -> Dict[str, float]:
    totals: Dict[str, float] = {}
    for record in records:
        totals[record.sector] = totals.get(record.sector, 0.0) + record.amount_eur
    return totals


def top_sectors(records: List[PenaltyRecord], n: int = 5) -> List[Tuple[str, float]]:
    """Fig. 1 right: the ``n`` most sanctioned business sectors."""
    totals = totals_by_sector(records)
    ranked = sorted(totals.items(), key=lambda item: (-item[1], item[0]))
    return ranked[:n]


def counts_by_sector(records: List[PenaltyRecord]) -> Dict[str, int]:
    """Sanction counts per sector (the map's other reading)."""
    counts: Dict[str, int] = {}
    for record in records:
        counts[record.sector] = counts.get(record.sector, 0) + 1
    return counts
