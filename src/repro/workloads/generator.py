"""Synthetic subject populations.

Every experiment draws its data from here so runs are deterministic
and comparable: a seeded :class:`PopulationGenerator` produces
realistic-looking subjects (names, emails, birth years, national ids,
cities) plus consent assignments drawn from a configurable
distribution.

The module also ships the *standard declaration source* used across
examples and benchmarks — a Listing-1-style ``user`` type (with the
paper's ``v_name``/``v_ano`` views) plus an ``order`` type and the
purposes the GDPRBench-style workloads exercise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from random import Random
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

_FIRST_NAMES = (
    "Alice", "Bob", "Chiraz", "David", "Emma", "Farid", "Grace", "Hugo",
    "Ines", "Jules", "Karim", "Lea", "Marc", "Nadia", "Omar", "Paula",
    "Quentin", "Rania", "Samir", "Tara", "Ugo", "Vera", "Walid", "Xenia",
    "Yann", "Zoe",
)
_LAST_NAMES = (
    "Benamor", "Martin", "Bernard", "Dubois", "Thomas", "Robert", "Richard",
    "Petit", "Durand", "Leroy", "Moreau", "Simon", "Laurent", "Lefebvre",
    "Michel", "Garcia", "Fournier", "Lambert", "Rousseau", "Vincent",
)
_CITIES = (
    "Lyon", "Paris", "Rennes", "Marseille", "Lille", "Nantes", "Toulouse",
    "Bordeaux", "Strasbourg", "Nice", "Grenoble", "Dijon",
)
_PRODUCTS = (
    "keyboard", "monitor", "desk", "chair", "lamp", "headset", "webcam",
    "dock", "cable", "mouse",
)


@dataclass(frozen=True)
class Subject:
    """One synthetic data subject."""

    subject_id: str
    first_name: str
    last_name: str
    email: str
    year_of_birth: int
    city: str
    national_id: str

    def user_record(self) -> Dict[str, object]:
        """A record matching the standard ``user`` type."""
        return {
            "name": f"{self.first_name} {self.last_name}",
            "email": self.email,
            "national_id": self.national_id,
            "year_of_birthdate": self.year_of_birth,
            "city": self.city,
        }


@dataclass(frozen=True)
class Order:
    """One synthetic purchase record for a subject."""

    order_id: str
    subject_id: str
    product: str
    amount_cents: int

    def order_record(self) -> Dict[str, object]:
        return {
            "order_id": self.order_id,
            "product": self.product,
            "amount_cents": self.amount_cents,
        }


class PopulationGenerator:
    """Seeded generator of subjects, orders and consent assignments."""

    def __init__(self, seed: int = 42) -> None:
        self._rng = Random(seed)
        self._counter = 0

    def subject(self) -> Subject:
        self._counter += 1
        first = self._rng.choice(_FIRST_NAMES)
        last = self._rng.choice(_LAST_NAMES)
        sid = f"subj-{self._counter:06d}"
        return Subject(
            subject_id=sid,
            first_name=first,
            last_name=last,
            email=f"{first.lower()}.{last.lower()}.{self._counter}@example.eu",
            year_of_birth=self._rng.randint(1940, 2008),
            city=self._rng.choice(_CITIES),
            national_id=f"{self._rng.randint(1, 2)}"
            + "".join(str(self._rng.randint(0, 9)) for _ in range(12)),
        )

    def subjects(self, count: int) -> List[Subject]:
        return [self.subject() for _ in range(count)]

    def orders_for(self, subject: Subject, count: int) -> List[Order]:
        orders = []
        for index in range(count):
            orders.append(
                Order(
                    order_id=f"{subject.subject_id}-o{index:04d}",
                    subject_id=subject.subject_id,
                    product=self._rng.choice(_PRODUCTS),
                    amount_cents=self._rng.randint(500, 250000),
                )
            )
        return orders

    def consent_assignment(
        self,
        purposes: Sequence[str],
        grant_probability: float = 0.7,
        scopes: Optional[Mapping[str, str]] = None,
    ) -> Dict[str, str]:
        """Draw a consent map: purpose → scope for granted purposes.

        ``scopes`` names the scope to grant per purpose (default
        ``all``).  Ungranted purposes are simply absent (the membrane
        treats absence as denial).
        """
        assignment: Dict[str, str] = {}
        for purpose in purposes:
            if self._rng.random() < grant_probability:
                assignment[purpose] = (scopes or {}).get(purpose, "all")
        return assignment

    def choice(self, items: Sequence[object]) -> object:
        return self._rng.choice(list(items))

    def shuffled(self, items: Sequence[object]) -> List[object]:
        shuffled = list(items)
        self._rng.shuffle(shuffled)
        return shuffled


#: Declaration source shared by examples, tests and benchmarks.  The
#: ``user`` type follows Listing 1 (extended with realistic fields);
#: the purposes cover the GDPRBench-style roles.
STANDARD_DECLARATIONS = """
type user {
  fields {
    name: string,
    email: string,
    national_id: string [sensitive],
    year_of_birthdate: int,
    city: string [optional]
  };
  view v_name { name };
  view v_ano { year_of_birthdate, city };
  view v_contact { name, email };
  consent {
    account_management: all
  };
  collection {
    web_form: user_form.html,
    third_party: fetch_data.py
  };
  origin: subject;
  age: 2Y;
  sensitivity: hight;
}

type order {
  fields {
    order_id: string,
    product: string,
    amount_cents: int
  };
  consent {
    account_management: all,
    order_fulfilment: all
  };
  collection { web_form: checkout.html };
  origin: subject;
  age: 5Y;
  sensitivity: low;
}

type age_pd {
  fields { age: int };
  consent { analytics: all };
  collection { web_form: derived };
  origin: sysadmin;
  age: 90D;
}

purpose account_management {
  description: "Operate the subject's account (contract basis)";
  uses: user;
  basis: contract;
}

purpose analytics {
  description: "Aggregate anonymous-ish statistics over users";
  uses: user via v_ano;
  produces: age_pd;
  basis: consent;
}

purpose marketing {
  description: "Send promotional content";
  uses: user via v_contact;
  basis: consent;
}

purpose order_fulfilment {
  description: "Process and ship orders";
  uses: order;
  basis: contract;
}
"""

#: The purposes subjects may grant beyond the type defaults.
OPTIONAL_PURPOSES: Tuple[str, ...] = ("marketing",)
#: Scope granted when a subject opts into each optional purpose.
OPTIONAL_PURPOSE_SCOPES: Dict[str, str] = {"marketing": "v_contact"}
