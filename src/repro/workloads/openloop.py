"""Open-loop workload driver: Poisson arrivals, honest tail latency.

A *closed-loop* driver (issue an op, wait, issue the next) hides
queueing: when the system slows down, the driver slows down with it,
and the measured latencies stay flattering.  An *open-loop* driver
fires requests on a schedule drawn from the workload's arrival
process regardless of how the system is doing — if the system cannot
keep up, requests queue and their measured latency grows.  That is
the property that makes p99 numbers honest (the "coordinated
omission" pitfall), and it is how the concurrency benchmark drives
the request engine.

Mechanics:

* :func:`open_loop_arrivals` draws seeded exponential inter-arrival
  gaps (a Poisson process at ``rate`` ops/s), so two runs with the
  same seed replay the identical schedule;
* :class:`OpenLoopDriver` sleeps until each scheduled arrival, then
  either executes the task inline (serial baseline) or submits it to
  the request engine; **latency is measured from the scheduled
  arrival to completion**, so time spent waiting for admission or in
  the purpose-fair queue counts against the system, exactly as a real
  client would experience it;
* :class:`OpenLoopResult` carries the latency sample and derives
  p50/p95/p99 by nearest-rank on the sorted sample.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from random import Random
from typing import Callable, Dict, List, Optional, Sequence

from .. import errors


def open_loop_arrivals(
    rate: float, count: int, seed: int = 0
) -> List[float]:
    """Seeded Poisson arrival offsets (seconds from driver start)."""
    if rate <= 0:
        raise errors.RgpdOSError(
            f"open-loop arrival rate must be > 0 ops/s, got {rate}"
        )
    rng = Random(seed)
    offsets: List[float] = []
    t = 0.0
    for _ in range(count):
        t += rng.expovariate(rate)
        offsets.append(t)
    return offsets


def nearest_rank(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an ascending sample (q in [0, 100])."""
    if not sorted_values:
        return 0.0
    rank = max(1, int(round(q / 100.0 * len(sorted_values) + 0.5)))
    return sorted_values[min(rank, len(sorted_values)) - 1]


@dataclass
class OpenLoopResult:
    """Outcome of one open-loop run."""

    target_rate: float
    operations: int
    wall_seconds: float
    completed: int
    failed: int
    #: Scheduled-arrival -> completion, seconds, one entry per
    #: completed op (ascending after finalisation).
    latencies_s: List[float] = field(default_factory=list)
    op_counts: Dict[str, int] = field(default_factory=dict)

    @property
    def throughput(self) -> float:
        """Completed ops per wall-clock second."""
        return self.completed / self.wall_seconds if self.wall_seconds else 0.0

    @property
    def offered_rate(self) -> float:
        """Ops offered per second (equals target when the driver kept up)."""
        return (
            self.operations / self.wall_seconds if self.wall_seconds else 0.0
        )

    def percentile_ms(self, q: float) -> float:
        return nearest_rank(self.latencies_s, q) * 1000.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "target_rate_ops_s": self.target_rate,
            "operations": self.operations,
            "wall_seconds": round(self.wall_seconds, 6),
            "completed": self.completed,
            "failed": self.failed,
            "throughput_ops_s": round(self.throughput, 3),
            "p50_ms": round(self.percentile_ms(50), 3),
            "p95_ms": round(self.percentile_ms(95), 3),
            "p99_ms": round(self.percentile_ms(99), 3),
            "max_ms": round(
                (self.latencies_s[-1] * 1000.0) if self.latencies_s else 0.0, 3
            ),
            "op_counts": dict(sorted(self.op_counts.items())),
        }


class OpenLoopDriver:
    """Replays a task list at a target arrival rate.

    ``submit`` is a callable taking a zero-argument task and returning
    a Future (the request engine's ``submit``/``try_submit`` partial);
    ``None`` executes tasks inline on the driver thread — the serial
    baseline arm.  Note that with a blocking ``submit`` the engine's
    admission bound backpressures the arrival process itself; the
    resulting lag still lands in the measured latency because the
    clock for each op starts at its *scheduled* arrival.
    """

    def __init__(
        self,
        submit: Optional[Callable[[Callable[[], object]], object]] = None,
    ) -> None:
        self.submit = submit

    def run(
        self,
        tasks: Sequence[Callable[[], object]],
        rate: float,
        seed: int = 0,
        op_names: Optional[Sequence[str]] = None,
    ) -> OpenLoopResult:
        arrivals = open_loop_arrivals(rate, len(tasks), seed)
        latencies: List[float] = []
        lock = threading.Lock()
        failures = [0]
        pending: List[object] = []
        op_counts: Dict[str, int] = {}
        if op_names is not None:
            for name in op_names:
                op_counts[name] = op_counts.get(name, 0) + 1

        start = time.perf_counter()
        for task, scheduled in zip(tasks, arrivals):
            now = time.perf_counter() - start
            if scheduled > now:
                time.sleep(scheduled - now)
            if self.submit is None:
                try:
                    task()
                except Exception:  # noqa: BLE001 - counted, not masked
                    with lock:
                        failures[0] += 1
                else:
                    done = time.perf_counter() - start
                    with lock:
                        latencies.append(done - scheduled)
                continue
            future = self.submit(task)

            def record(fut, scheduled=scheduled):  # noqa: ANN001
                done = time.perf_counter() - start
                with lock:
                    if fut.exception() is None:
                        latencies.append(done - scheduled)
                    else:
                        failures[0] += 1

            future.add_done_callback(record)
            pending.append(future)

        for future in pending:
            future.exception()  # block until done; don't re-raise here
        wall = time.perf_counter() - start
        with lock:
            sample = sorted(latencies)
            failed = failures[0]
        return OpenLoopResult(
            target_rate=rate,
            operations=len(tasks),
            wall_seconds=wall,
            completed=len(sample),
            failed=failed,
            latencies_s=sample,
            op_counts=op_counts,
        )
