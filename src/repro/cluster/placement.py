"""Geo-aware replica placement: Chapter V enforced at placement time.

*Policy-Compliant Cloud Storage Systems* argues the policy check must
run when data is **placed**, not (only) when it is accessed — once
bytes land in a non-adequate region, no later access check unwrites
them.  This engine is that check for the replicated cluster:

* every node declares a **jurisdiction** (``region``) and, optionally,
  an Art. 46 mechanism it has executed (``safeguard="scc"``);
* every subject has an **origin** jurisdiction (default ``eu`` — the
  paper's setting is a GDPR operator);
* a node may be admitted, or keep its role through a failover, only
  if :class:`~repro.core.transfer.TransferPolicy` permits the
  (origin → node.region) corridor for **every** origin the cluster
  holds — evaluated at the cluster clock's *current* instant, so an
  adequacy decision lapsing between placement and failover is caught
  by the re-check.

Counters: ``violations`` counts PD actually placed in breach (the
whole point is that enforcement keeps it at 0); ``blocked`` counts
placements the engine refused.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional

from .. import errors
from ..core.transfer import TransferDecision, TransferPolicy, default_policy


@dataclass(frozen=True)
class NodeLocation:
    """Where a node sits and what safeguards it brings."""

    node_id: str
    region: str
    safeguard: Optional[str] = None


class PlacementEngine:
    """Admission control for replicas, backed by the transfer policy."""

    def __init__(
        self,
        policy: Optional[TransferPolicy] = None,
        now: Optional[Callable[[], float]] = None,
        default_origin: str = "eu",
    ) -> None:
        self.policy = policy if policy is not None else default_policy()
        self._now = now if now is not None else (lambda: 0.0)
        self.default_origin = default_origin
        self._nodes: Dict[str, NodeLocation] = {}
        self._subject_origins: Dict[str, str] = {}
        self._origins_present: Dict[str, int] = {}
        self.violations = 0
        self.blocked = 0

    # -- registration -------------------------------------------------------

    @property
    def origins(self) -> List[str]:
        return sorted(self._origins_present)

    def subject_origin(self, subject_id: str) -> str:
        return self._subject_origins.get(subject_id, self.default_origin)

    def register_subject(self, subject_id: str, origin: str) -> None:
        """Declare a subject's origin jurisdiction — *before* their PD
        lands.  Raises when any admitted node could not lawfully hold
        PD of this origin: the conflict must be resolved by topology
        (drop the node) not by silently spilling PD."""
        previous = self._subject_origins.get(subject_id)
        if previous == origin:
            return
        if previous is not None:
            raise errors.PlacementViolationError(
                f"subject {subject_id!r} already registered with origin "
                f"{previous!r}"
            )
        at = self._now()
        for node in self._nodes.values():
            decision = self.policy.decide(
                origin, node.region, at, node.safeguard
            )
            if not decision.allowed:
                self.blocked += 1
                raise errors.PlacementViolationError(
                    f"subject {subject_id!r} (origin {origin!r}) cannot be "
                    f"replicated to node {node.node_id!r} in "
                    f"{node.region!r}: {decision.reason} ({decision.article})"
                )
        self._subject_origins[subject_id] = origin
        self._origins_present[origin] = self._origins_present.get(origin, 0) + 1

    def note_subject(self, subject_id: str) -> str:
        """Record a subject first seen at write time (default origin)."""
        origin = self._subject_origins.get(subject_id)
        if origin is None:
            origin = self.default_origin
            self._subject_origins[subject_id] = origin
            self._origins_present[origin] = (
                self._origins_present.get(origin, 0) + 1
            )
        return origin

    # -- admission ----------------------------------------------------------

    def check_node(
        self, node: NodeLocation, origins: Optional[Iterable[str]] = None
    ) -> List[TransferDecision]:
        """Every (origin → node) decision; raises on the first breach."""
        at = self._now()
        decisions: List[TransferDecision] = []
        for origin in sorted(set(origins) if origins is not None
                             else set(self._origins_present)):
            decision = self.policy.decide(
                origin, node.region, at, node.safeguard
            )
            decisions.append(decision)
            if not decision.allowed:
                self.blocked += 1
                raise errors.PlacementViolationError(
                    f"node {node.node_id!r} in {node.region!r} may not hold "
                    f"PD of origin {origin!r}: {decision.reason} "
                    f"({decision.article})"
                )
        return decisions

    def admissible(self, node: NodeLocation) -> bool:
        """Non-raising form of :meth:`check_node` (failover candidate
        filtering must not abort the failover)."""
        at = self._now()
        return all(
            self.policy.decide(o, node.region, at, node.safeguard).allowed
            for o in self._origins_present
        )

    def admit_node(self, node: NodeLocation) -> None:
        self.check_node(node)
        self._nodes[node.node_id] = node

    def evict_node(self, node_id: str) -> None:
        self._nodes.pop(node_id, None)

    def audit(self) -> Dict[str, object]:
        """Re-evaluate every admitted node against every origin *now*.

        Any hit is an actual violation (PD already sits there): it
        increments ``violations`` — the gauge the CI smoke requires to
        stay at zero — and is reported, not raised, so audits can list
        every breach at once.
        """
        at = self._now()
        breaches: List[Dict[str, str]] = []
        for node in self._nodes.values():
            for origin in sorted(self._origins_present):
                decision = self.policy.decide(
                    origin, node.region, at, node.safeguard
                )
                if not decision.allowed:
                    self.violations += 1
                    breaches.append(
                        {
                            "node": node.node_id,
                            "region": node.region,
                            "origin": origin,
                            "reason": decision.reason,
                        }
                    )
        return {
            "nodes": len(self._nodes),
            "origins": self.origins,
            "breaches": breaches,
            "violations": self.violations,
            "blocked": self.blocked,
        }
