"""Replicated rgpdOS cluster: journal shipping, read replicas, failover.

:class:`ReplicatedCluster` wraps a leader store (the ``ShardedDBFS``
behind an :class:`~repro.core.system.RgpdOS`) with N follower nodes
connected by **journal shipping**: the shipped unit is the leader
journal's committed transaction — group-commit boundaries preserved —
carrying each op's *logical* payload rather than raw journal extents,
because the DBFS journal deliberately never holds PD payloads (§ 1 of
the paper opens with exactly that log-residue violation; shipping
device bytes would reintroduce it).  The capture point is the DBFS
mutation-observer hook, which fires only after the op's journal
transaction commits, so a record can never ship before it is durable
on the leader.

Per shard the stream is strictly ordered and batched
(``batch_records`` per message, pipelined across shards and
followers); a follower applies each batch inside one
``shard.batch()`` group commit.  Replication is **pull-free and
push-driven**: :meth:`pump` advances every (follower, shard) cursor in
parallel, :meth:`sync` drains to the watermark.

GDPR-native properties, by construction:

* **RTBF reaches every replica.**  Erasure flows leader-first like any
  write; the propagation watermark (:meth:`erasure_propagated`) proves
  the delete applied on every live follower, and
  :meth:`residue_report` runs the zero-residue scan per node.  The
  shipping plane is itself RTBF-aware: the moment an erase is
  captured, every not-yet-shipped payload for that uid in every
  retained log is **redacted** — a replica that never materialized the
  record only ever sees a tombstone.
* **Placement-time Chapter V.**  Every node is admitted through the
  :class:`~repro.cluster.placement.PlacementEngine`; an EU subject's
  PD cannot be assigned to a non-adequate region, and the check re-runs
  on failover (an adequacy decision that lapsed in between disqualifies
  the candidate).
* **Failover reuses the crash paths.**  :meth:`fail_leader` kills the
  leader mid-workload; :meth:`promote` picks the most-caught-up
  *adequate* follower (re-running its in-place remount as a promotion
  fsck); :meth:`demote` recovers the old leader's devices through the
  true-crash ``remount_from_device(s)`` path, re-checks placement,
  reconciles divergence, and rejoins it as a follower — at which point
  the zero-residue check must still hold on it.

Reads scale out: :meth:`right_of_access`, :meth:`query_uids` and
:meth:`resolve_records` round-robin across follower MVCC snapshots,
so read throughput grows with replica count while writes stay
leader-first.
"""

from __future__ import annotations

import itertools
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import (Callable, Dict, List, Mapping, Optional, Sequence, Set,
                    Tuple)

from .. import errors
from ..core.active_data import AccessCredential
from ..core.membrane import Membrane
from ..storage.block import BlockDevice
from ..storage.dbfs import DatabaseFS
from ..storage.query import (DataQuery, DeleteRequest, Predicate,
                             StoreRequest, UpdateRequest)
from ..storage.shard import ShardedDBFS
from .link import LinkConfig, ReplicationLink
from .placement import NodeLocation, PlacementEngine

_SCHEMA_OPS = frozenset({"create_type", "evolve_type", "create_index"})
_DATA_OPS = frozenset({"store", "update", "delete", "membrane_update"})

ROLE_LEADER = "leader"
ROLE_FOLLOWER = "follower"
ROLE_DEAD = "dead"

_ROLE_GAUGE = {ROLE_LEADER: 2, ROLE_FOLLOWER: 1, ROLE_DEAD: 0}


@dataclass
class ShippedRecord:
    """One committed leader transaction's logical op, ready to ship."""

    seq: int
    op: str
    payload: Dict[str, object]

    @property
    def uid(self) -> Optional[str]:
        value = self.payload.get("uid")
        return value if isinstance(value, str) else None

    @property
    def redacted(self) -> bool:
        return bool(self.payload.get("redacted"))

    def size_estimate(self) -> int:
        return len(str(self.payload)) + 16

    def redact(self) -> None:
        """RTBF in the shipping plane: drop the payload, keep the slot."""
        self.payload = {
            "uid": self.payload.get("uid"),
            "subject_id": self.payload.get("subject_id"),
            "redacted": True,
        }


class _Stream:
    """One strictly-ordered shipping stream (per shard, plus schema)."""

    def __init__(self) -> None:
        self.base = 1               # seq of records[0]
        self.records: List[ShippedRecord] = []

    @property
    def head(self) -> int:
        return self.base + len(self.records) - 1

    def append(self, op: str, payload: Dict[str, object]) -> ShippedRecord:
        record = ShippedRecord(self.head + 1, op, payload)
        self.records.append(record)
        return record

    def tail_from(self, seq: int) -> List[ShippedRecord]:
        """Records with sequence > ``seq`` (the follower's cursor)."""
        if seq < self.base - 1:
            raise errors.ReplicationError(
                f"stream gap: cursor {seq} behind retained base {self.base}"
            )
        return self.records[seq - self.base + 1:]

    def trim(self, keep_after: int, max_retained: int) -> None:
        """Drop records every live follower applied, bounded by the
        retention window (rejoining nodes past the window reconcile)."""
        floor = max(keep_after, self.head - max_retained)
        drop = min(len(self.records), max(0, floor - self.base + 1))
        if drop:
            del self.records[:drop]
            self.base += drop


class ClusterNode:
    """One member: identity, location, its own store, link and cursors."""

    def __init__(
        self,
        node_id: str,
        location: NodeLocation,
        store,
        role: str = ROLE_FOLLOWER,
        link: Optional[ReplicationLink] = None,
    ) -> None:
        self.node_id = node_id
        self.location = location
        self.store = store
        self.role = role
        self.link = link
        self.alive = True
        shard_count = len(store.shards)
        #: Per-shard cursor: highest stream seq applied on this node.
        self.applied: List[int] = [0] * shard_count
        self.applied_schema = 0
        #: Retained streams.  On the leader these are the shipping
        #: logs; on a follower, the applied history that lets it serve
        #: as a catch-up source if promoted.
        self.streams: List[_Stream] = [_Stream() for _ in range(shard_count)]
        self.schema_stream = _Stream()
        #: uids whose store shipped redacted (erased before this node
        #: ever saw the payload) — later ops for them are skipped.
        self.skipped: Set[str] = set()
        self.needs_reconcile = False

    @property
    def region(self) -> str:
        return self.location.region

    def retained(self) -> List[_Stream]:
        return [self.schema_stream] + self.streams

    def __repr__(self) -> str:
        return (
            f"ClusterNode({self.node_id!r}, {self.region!r}, {self.role}, "
            f"applied={self.applied})"
        )


class ReplicatedCluster:
    """Leader + N followers over one RgpdOS instance's store."""

    def __init__(
        self,
        system,
        regions: Sequence[str] = ("eu",),
        link_config: Optional[LinkConfig] = None,
        placement: Optional[PlacementEngine] = None,
        batch_records: int = 32,
        history_records: int = 4096,
        default_origin: str = "eu",
        workers: Optional[int] = None,
    ) -> None:
        """``regions[0]`` locates the leader; each further entry adds a
        follower.  An entry may carry an Art. 46 mechanism as
        ``"region:safeguard"`` (e.g. ``"us:scc"``)."""
        if not regions:
            raise errors.ClusterError("a cluster needs at least the leader region")
        self.system = system
        self.telemetry = system.telemetry
        self.clock = system.clock
        self.batch_records = max(1, batch_records)
        self.history_records = max(batch_records, history_records)
        self.link_config = link_config if link_config is not None else LinkConfig()
        self.placement = (
            placement
            if placement is not None
            else PlacementEngine(
                now=system.clock.now, default_origin=default_origin
            )
        )
        self._ded = AccessCredential(holder="cluster-replicator", is_ded=True)
        self._lock = threading.RLock()
        self._capture_taps: List[Tuple[DatabaseFS, Callable]] = []

        leader_location = self._parse_region("node-0", regions[0])
        self.placement.admit_node(leader_location)
        self._leader = ClusterNode(
            "node-0", leader_location, system.dbfs, role=ROLE_LEADER
        )
        self._followers: List[ClusterNode] = []
        self._dead: List[ClusterNode] = []
        self._node_seq = itertools.count(1)
        self._reader_rr = 0
        pool_size = workers if workers is not None else max(
            2, len(self._leader.store.shards)
        )
        self._pool = ThreadPoolExecutor(
            max_workers=pool_size, thread_name_prefix="repl"
        )
        self._attach_capture(self._leader)
        self._register_gauges()
        for spec in regions[1:]:
            self.add_replica(spec)

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------

    @staticmethod
    def _parse_region(node_id: str, spec: str) -> NodeLocation:
        region, _, safeguard = spec.partition(":")
        if not region:
            raise errors.ClusterError(f"empty region in spec {spec!r}")
        return NodeLocation(node_id, region, safeguard or None)

    @property
    def leader(self) -> ClusterNode:
        return self._leader

    @property
    def leader_store(self):
        """Where writes go (changes across a failover)."""
        return self._leader.store

    @property
    def followers(self) -> List[ClusterNode]:
        return list(self._followers)

    @property
    def nodes(self) -> List[ClusterNode]:
        return [self._leader] + self._followers + self._dead

    @property
    def shard_count(self) -> int:
        return len(self._leader.store.shards)

    def node(self, node_id: str) -> ClusterNode:
        for candidate in self.nodes:
            if candidate.node_id == node_id:
                return candidate
        raise errors.ClusterError(f"no node {node_id!r}")

    def add_replica(self, region_spec: str) -> ClusterNode:
        """Build, admit (placement-checked) and attach one follower.

        The new node starts empty and reconciles from the leader's
        current state, then follows the stream from the leader's head.
        """
        node_id = f"node-{next(self._node_seq)}"
        location = self._parse_region(node_id, region_spec)
        # Placement time IS enforcement time: admission raises before
        # any byte lands in a non-adequate region.
        self.placement.admit_node(location)
        store = self._build_follower_store()
        node = ClusterNode(
            node_id,
            location,
            store,
            role=ROLE_FOLLOWER,
            link=ReplicationLink(self.link_config),
        )
        with self._lock:
            self._reconcile(node)
            self._followers.append(node)
        return node

    def _build_follower_store(self) -> ShardedDBFS:
        leader_shards = self._leader.store.shards
        template = leader_shards[0]
        devices = [
            BlockDevice(
                block_count=shard.device.block_count,
                page_cache_blocks=self.system.cache_config.page_cache_blocks,
                telemetry=self.telemetry,
                io_delay_scale=getattr(shard.device, "io_delay_scale", 0.0),
            )
            for shard in leader_shards
        ]
        return ShardedDBFS(
            devices=devices,
            operator_key=self.system.operator_key,
            journal_blocks=len(template.journal.extent),
            cache_config=self.system.cache_config,
            journal_config=getattr(template.journal, "config", None),
            telemetry=self.telemetry,
            record_codec=getattr(template, "_record_codec", "v2"),
        )

    # ------------------------------------------------------------------
    # Capture (the journal-shipping tap)
    # ------------------------------------------------------------------

    def _attach_capture(self, node: ClusterNode) -> None:
        """Register the post-commit mutation tap on every shard."""
        for index, shard in enumerate(node.store.shards):
            def tap(op: str, payload: Dict[str, object], _i: int = index) -> None:
                self._capture(_i, op, payload)
            shard.add_mutation_observer(tap)
            self._capture_taps.append((shard, tap))

    def _detach_capture(self) -> None:
        for shard, tap in self._capture_taps:
            shard.remove_mutation_observer(tap)
        self._capture_taps = []

    def _capture(self, shard_index: int, op: str, payload: Dict[str, object]) -> None:
        leader = self._leader
        with self._lock:
            if op in _SCHEMA_OPS:
                # Fleet-level schema ops fan out to every shard; one
                # copy (the primary's) is the canonical stream entry.
                if shard_index == 0:
                    leader.schema_stream.append(op, dict(payload))
                return
            subject_id = payload.get("subject_id")
            if isinstance(subject_id, str):
                self.placement.note_subject(subject_id)
            leader.streams[shard_index].append(op, dict(payload))
            if op == "delete":
                uid = payload.get("uid")
                if isinstance(uid, str):
                    self._redact_everywhere(uid)
        registry = self.telemetry.registry
        registry.counter("rgpdos.replication.captured_records").inc()

    def _redact_everywhere(self, uid: str) -> None:
        """Scrub a just-erased uid's payloads from every retained
        stream (leader logs and follower histories) — the replication
        buffers are PD holders too, and Art. 17 applies to them."""
        for node in [self._leader] + self._followers + self._dead:
            for stream in node.retained():
                for record in stream.records:
                    if (
                        record.uid == uid
                        and record.op != "delete"
                        and not record.redacted
                    ):
                        record.redact()

    # ------------------------------------------------------------------
    # Shipping
    # ------------------------------------------------------------------

    def pump(self) -> Dict[str, int]:
        """One pipelined shipping round: every live (follower, shard)
        stream advances in parallel; partitioned links stall their
        follower without blocking the rest.  Returns counts."""
        with self._lock:
            followers = [f for f in self._followers if f.alive]
        shipped = {"records": 0, "batches": 0, "stalled": 0}
        tasks = []
        for follower in followers:
            tasks.append(self._pool.submit(self._ship_schema, follower))
        for future in tasks:
            result = future.result()
            shipped["records"] += result[0]
            shipped["batches"] += result[1]
        tasks = []
        for follower in followers:
            for index in range(self.shard_count):
                tasks.append(
                    self._pool.submit(self._ship_shard, follower, index)
                )
        for future in tasks:
            records, batches, stalled = future.result()
            shipped["records"] += records
            shipped["batches"] += batches
            shipped["stalled"] += stalled
        self._trim_streams()
        registry = self.telemetry.registry
        registry.counter("rgpdos.replication.records_shipped").inc(
            shipped["records"]
        )
        registry.counter("rgpdos.replication.batches_shipped").inc(
            shipped["batches"]
        )
        return shipped

    def sync(self, max_rounds: int = 1000) -> None:
        """Pump until every live, reachable follower is at the leader's
        head (the watermark).  Partitioned followers are excluded —
        they catch up after :meth:`ReplicationLink.heal`."""
        for _ in range(max_rounds):
            self.pump()
            if not self._behind_followers():
                return
        raise errors.ReplicationError(
            f"sync did not converge in {max_rounds} rounds "
            f"(lag={self.lag()!r})"
        )

    def _behind_followers(self) -> List[ClusterNode]:
        leader = self._leader
        behind = []
        for follower in self._followers:
            if not follower.alive:
                continue
            if follower.link is not None and follower.link.partitioned:
                continue
            if follower.needs_reconcile:
                behind.append(follower)
                continue
            if follower.applied_schema < leader.schema_stream.head:
                behind.append(follower)
                continue
            for index in range(self.shard_count):
                if follower.applied[index] < leader.streams[index].head:
                    behind.append(follower)
                    break
        return behind

    def _ship_schema(self, follower: ClusterNode) -> Tuple[int, int]:
        with self._lock:
            pending = list(
                self._leader.schema_stream.tail_from(follower.applied_schema)
            )
        records = batches = 0
        for record in pending:
            if not self._send(follower, 1, record.size_estimate()):
                break
            self._apply_schema(follower, record)
            with self._lock:
                follower.applied_schema = record.seq
                follower.schema_stream.append(record.op, record.payload)
            records += 1
            batches += 1
        return records, batches

    def _ship_shard(
        self, follower: ClusterNode, index: int
    ) -> Tuple[int, int, int]:
        if follower.needs_reconcile:
            return 0, 0, 1
        with self._lock:
            try:
                pending = list(
                    self._leader.streams[index].tail_from(
                        follower.applied[index]
                    )
                )
            except errors.ReplicationError:
                follower.needs_reconcile = True
                return 0, 0, 1
        records = batches = 0
        position = 0
        while position < len(pending):
            batch = pending[position:position + self.batch_records]
            payload_bytes = sum(r.size_estimate() for r in batch)
            if not self._send(follower, len(batch), payload_bytes):
                return records, batches, 1
            self._apply_batch(follower, index, batch)
            with self._lock:
                follower.applied[index] = batch[-1].seq
                for record in batch:
                    follower.streams[index].append(record.op, record.payload)
            records += len(batch)
            batches += 1
            position += len(batch)
        return records, batches, 0

    def _send(self, follower: ClusterNode, count: int, size: int) -> bool:
        """One link message, with a single bounded retry for transient
        drops (mirroring the NVMe driver's policy); partitions stall."""
        link = follower.link
        if link is None:
            return True
        for attempt in (1, 2):
            try:
                link.send(count, size)
                return True
            except errors.TransientIOError:
                if attempt == 2:
                    return False
                continue
            except errors.LinkPartitionedError:
                return False
        return False

    # ------------------------------------------------------------------
    # Apply
    # ------------------------------------------------------------------

    def _apply_schema(self, node: ClusterNode, record: ShippedRecord) -> None:
        store = node.store
        payload = record.payload
        if record.op == "create_type":
            pd_type = payload["pd_type"]
            if pd_type.name not in store.list_types():
                store.create_type(pd_type, self._ded)
        elif record.op == "evolve_type":
            store.evolve_type(payload["pd_type"], self._ded)
        elif record.op == "create_index":
            type_name = payload["type_name"]
            field_name = payload["field_name"]
            if not store.has_index(type_name, field_name):
                store.create_index(type_name, field_name, self._ded)

    def _apply_batch(
        self,
        node: ClusterNode,
        shard_index: int,
        batch: Sequence[ShippedRecord],
    ) -> None:
        """Apply one shipped batch under one follower group commit —
        the group-commit boundary travels with the batch."""
        shard = node.store.shards[shard_index]
        with shard.batch():
            for record in batch:
                self._apply_record(node, shard, shard_index, record)

    def _apply_record(
        self,
        node: ClusterNode,
        shard: DatabaseFS,
        shard_index: int,
        record: ShippedRecord,
    ) -> None:
        payload = record.payload
        uid = record.uid
        if record.op == "store":
            if record.redacted:
                # Erased before this node ever saw the payload: the
                # record never materializes here — RTBF reached a
                # replica that never even held the PD.
                if uid:
                    node.skipped.add(uid)
                return
            shard.store(
                StoreRequest(
                    pd_type=payload["pd_type"],
                    record=dict(payload["record"]),
                    membrane_json=payload["membrane_json"],
                    uid=uid,
                ),
                self._ded,
            )
            if uid and isinstance(node.store, ShardedDBFS):
                with node.store._uid_lock:
                    node.store._uid_shard[uid] = shard_index
            return
        if uid in node.skipped:
            if record.op == "delete":
                node.skipped.discard(uid)
            return
        if record.redacted:
            # A redacted update/membrane change is always followed by
            # the delete that caused the redaction; skipping it leaves
            # at most a stale value for the tombstone to scrub.
            return
        if record.op == "update":
            shard.update(
                UpdateRequest(uid=uid, changes=dict(payload["changes"])),
                self._ded,
            )
        elif record.op == "membrane_update":
            shard.put_membrane(
                uid,
                Membrane.from_json(payload["membrane_json"]),
                self._ded,
            )
        elif record.op == "delete":
            membrane = shard.get_membrane(uid, self._ded)
            if not membrane.erased:
                shard.delete(
                    DeleteRequest(uid=uid, mode=payload["mode"]), self._ded
                )

    def _trim_streams(self) -> None:
        with self._lock:
            live = [f for f in self._followers if f.alive]
            if live:
                schema_floor = min(f.applied_schema for f in live)
                floors = [
                    min(f.applied[i] for f in live)
                    for i in range(self.shard_count)
                ]
            else:
                schema_floor = self._leader.schema_stream.head
                floors = [s.head for s in self._leader.streams]
            self._leader.schema_stream.trim(schema_floor, self.history_records)
            for index, stream in enumerate(self._leader.streams):
                stream.trim(floors[index], self.history_records)
            for follower in self._followers:
                for stream in follower.retained():
                    stream.trim(stream.head, self.history_records)

    # ------------------------------------------------------------------
    # Watermark, lag, residue
    # ------------------------------------------------------------------

    def lag(self) -> Dict[str, int]:
        """Per-node replication lag in records (leader head - applied)."""
        with self._lock:
            leader = self._leader
            report = {}
            for follower in self._followers:
                report[follower.node_id] = (
                    leader.schema_stream.head - follower.applied_schema
                ) + sum(
                    leader.streams[i].head - follower.applied[i]
                    for i in range(self.shard_count)
                )
            return report

    def watermark(self) -> List[int]:
        """Per-shard min applied seq across live followers — every
        record at or below it provably reached every replica."""
        with self._lock:
            live = [f for f in self._followers if f.alive]
            if not live:
                return [s.head for s in self._leader.streams]
            return [
                min(f.applied[i] for f in live)
                for i in range(self.shard_count)
            ]

    def erasure_propagated(self, uid: str) -> bool:
        """Has the erase op for ``uid`` reached every live follower?

        True only when no live follower still has the uid un-erased —
        the watermark proof behind "RTBF reaches every replica".
        """
        for follower in self._followers:
            if not follower.alive:
                continue
            if uid in follower.skipped:
                return False
            try:
                membrane = follower.store.get_membrane(uid, self._ded)
            except errors.RgpdOSError:
                continue
            if not membrane.erased:
                return False
        return True

    def residue_report(
        self, needles: Sequence[bytes], subject_id: Optional[str] = None
    ) -> Dict[str, Dict[str, int]]:
        """The per-node zero-residue check (device + journal scans),
        plus the shipping plane: retained stream payloads count as
        residue too."""
        report: Dict[str, Dict[str, int]] = {}
        for node in self.nodes:
            counts = dict(
                node.store.residue_counts(needles, subject_id=subject_id)
            )
            counts["stream_records"] = self._stream_residue(node, needles)
            report[node.node_id] = counts
        return report

    def _stream_residue(
        self, node: ClusterNode, needles: Sequence[bytes]
    ) -> int:
        hits = 0
        with self._lock:
            for stream in node.retained():
                for record in stream.records:
                    blob = str(record.payload).encode()
                    if any(needle in blob for needle in needles):
                        hits += 1
        return hits

    # ------------------------------------------------------------------
    # Replica reads (MVCC snapshots, round-robin)
    # ------------------------------------------------------------------

    def read_node(self) -> ClusterNode:
        """Round-robin over live followers; the leader only serves
        reads when it is the whole cluster."""
        with self._lock:
            live = [f for f in self._followers if f.alive]
            if not live:
                return self._leader
            node = live[self._reader_rr % len(live)]
            self._reader_rr += 1
            return node

    def snapshot_read(self, fn: Callable, node: Optional[ClusterNode] = None):
        """Run ``fn(store, credential, snapshot)`` on one replica's
        MVCC snapshot."""
        chosen = node if node is not None else self.read_node()
        snapshot = chosen.store.begin_snapshot()
        try:
            return fn(chosen.store, self._ded, snapshot)
        finally:
            snapshot.release()

    def right_of_access(self, subject_id: str) -> Dict[str, object]:
        """Art. 15 export served from a replica snapshot."""
        return self.snapshot_read(
            lambda store, cred, snap: store.export_subject(
                subject_id, cred, snapshot=snap
            )
        )

    def query_uids(self, type_name: str, predicate: Predicate) -> List[str]:
        """Type query (select) served from a replica snapshot."""
        return self.snapshot_read(
            lambda store, cred, snap: store.select_uids(
                type_name, predicate, cred, snapshot=snap
            )
        )

    def resolve_records(self, uids: Sequence[str]) -> Dict[str, Dict[str, object]]:
        """Audit-evidence resolution: load the records an evidence
        entry references, from a replica snapshot."""
        return self.snapshot_read(
            lambda store, cred, snap: store.fetch_records(
                DataQuery(uids=tuple(uids)), cred, snapshot=snap
            )
        )

    # ------------------------------------------------------------------
    # Failover
    # ------------------------------------------------------------------

    def fail_leader(self) -> ClusterNode:
        """Kill the leader mid-workload (crash simulation): capture
        stops, the node goes dead, its devices keep their bytes for
        the later :meth:`demote` recovery."""
        with self._lock:
            old = self._leader
            self._detach_capture()
            old.alive = False
            old.role = ROLE_DEAD
        return old

    def promote(self) -> ClusterNode:
        """Promote the most-caught-up **adequate** follower.

        Candidates are live, reachable followers; the placement engine
        re-checks each one at the *current* instant (Chapter V applies
        to failover too — a more-caught-up follower in a region whose
        adequacy lapsed loses to a less-caught-up adequate one).  The
        winner re-runs the in-place remount path as a promotion fsck,
        then takes over capture; its retained history becomes the new
        shipping log so surviving followers catch up by delta.
        """
        with self._lock:
            if self._leader.alive:
                raise errors.ClusterError(
                    "leader is alive; fail_leader() first (no split brain)"
                )
            candidates = [
                f for f in self._followers
                if f.alive and (f.link is None or not f.link.partitioned)
            ]
            if not candidates:
                raise errors.ClusterError("no live follower to promote")
            adequate = [
                f for f in candidates
                if self.placement.admissible(f.location)
            ]
            if not adequate:
                raise errors.PlacementViolationError(
                    "no live follower sits in a permitted jurisdiction "
                    "for every origin held"
                )
            new_leader = max(
                adequate,
                key=lambda f: (
                    f.applied_schema + sum(f.applied), f.node_id
                ),
            )
            # Promotion fsck: the same in-place remount crash recovery
            # runs after a power cut — journals recover, trees and
            # volatile indexes rebuild from durable state.
            new_leader.store.remount()
            old = self._leader
            self._followers.remove(new_leader)
            self._dead.append(old)
            new_leader.role = ROLE_LEADER
            new_leader.link = None
            new_leader.needs_reconcile = False
            self._leader = new_leader
            self._attach_capture(new_leader)
            # Any survivor ahead of the new leader on some shard holds
            # committed-but-unreplicated divergence: reconcile it.
            for follower in self._followers:
                if follower.applied_schema > new_leader.applied_schema or any(
                    follower.applied[i] > new_leader.applied[i]
                    for i in range(self.shard_count)
                ):
                    follower.needs_reconcile = True
        for follower in self._followers:
            if follower.needs_reconcile:
                self._reconcile(follower)
        return new_leader

    def demote(self) -> ClusterNode:
        """Recover the dead ex-leader through the true-crash remount
        path and rejoin it as a follower.

        Placement is re-checked at rejoin (Chapter V again), committed
        -but-never-shipped divergence is reconciled away against the
        new leader, and the caller can then run the zero-residue check
        on the recovered node — the demoted leader must hold no trace
        of PD erased before or during the failover.
        """
        with self._lock:
            if not self._dead:
                raise errors.ClusterError("no demoted leader to rejoin")
            old = self._dead.pop()
        recovered = self._true_remount(old.store)
        old.store = recovered
        old.applied = [0] * self.shard_count
        old.applied_schema = 0
        old.streams = [_Stream() for _ in range(self.shard_count)]
        old.schema_stream = _Stream()
        old.skipped = set()
        # Re-check: the jurisdiction that was fine at first placement
        # may not be any more (lapsed adequacy) — failover is a
        # placement event.
        self.placement.check_node(old.location)
        self._reconcile(old)
        with self._lock:
            old.role = ROLE_FOLLOWER
            old.alive = True
            if old.link is None:
                old.link = ReplicationLink(self.link_config)
            self._followers.append(old)
        return old

    def _true_remount(self, store):
        """CrashSim path: rebuild the store from device bytes alone."""
        if isinstance(store, ShardedDBFS):
            shards = store.shards
            return ShardedDBFS.remount_from_devices(
                [shard.device for shard in shards],
                [shard.inodes for shard in shards],
                operator_key=self.system.operator_key,
                cache_config=self.system.cache_config,
                journal_config=getattr(shards[0].journal, "config", None),
                telemetry=self.telemetry,
                record_codec=getattr(shards[0], "_record_codec", "v2"),
                ttl_observers=store.fleet_ttl_observers,
            )
        return DatabaseFS.remount_from_device(
            store.device,
            store.inodes,
            operator_key=self.system.operator_key,
            cache_config=self.system.cache_config,
            journal_config=getattr(store.journal, "config", None),
            telemetry=self.telemetry,
            record_codec=getattr(store, "_record_codec", "v2"),
        )

    # ------------------------------------------------------------------
    # Reconciliation (anti-entropy: reseed / divergence repair)
    # ------------------------------------------------------------------

    def _reconcile(self, node: ClusterNode) -> Dict[str, int]:
        """Make ``node`` an exact logical copy of the leader.

        Used to seed an empty replica, to repair a follower that fell
        past the retention window, and to fold back a demoted leader's
        divergent tail.  uids unknown to the leader are scrub-erased
        (they were never acknowledged cluster-wide); missing records
        are installed with the leader's uid; differing membranes and
        field values converge to the leader's.  Cursors jump to the
        leader's head — the stream takes over from there.
        """
        leader_store = self._leader.store
        stats = {"installed": 0, "erased": 0, "membranes": 0, "updated": 0}
        for pd_type_name in leader_store.list_types():
            pd_type = leader_store.get_type(pd_type_name)
            if pd_type_name not in node.store.list_types():
                node.store.create_type(pd_type, self._ded)
            elif node.store.get_type(pd_type_name) != pd_type:
                node.store.evolve_type(pd_type, self._ded)
        for type_name, field_name in leader_store.shards[0].indexed_fields():
            if not node.store.has_index(type_name, field_name):
                node.store.create_index(type_name, field_name, self._ded)
        for index, leader_shard in enumerate(leader_store.shards):
            node_shard = node.store.shards[index]
            leader_uids = set(leader_shard.all_uids())
            node_uids = set(node_shard.all_uids())
            for uid in sorted(node_uids - leader_uids):
                membrane = node_shard.get_membrane(uid, self._ded)
                if not membrane.erased:
                    node_shard.delete(
                        DeleteRequest(uid=uid, mode="erase"), self._ded
                    )
                    stats["erased"] += 1
            for uid in sorted(leader_uids):
                membrane = leader_shard.get_membrane(uid, self._ded)
                if membrane.erased:
                    if uid in node_uids:
                        node_membrane = node_shard.get_membrane(uid, self._ded)
                        if not node_membrane.erased:
                            node_shard.delete(
                                DeleteRequest(uid=uid, mode="erase"),
                                self._ded,
                            )
                            stats["erased"] += 1
                    continue
                record = leader_shard._load_record_raw(uid)
                membrane_json = membrane.to_json()
                if uid not in node_uids:
                    node_shard.store(
                        StoreRequest(
                            pd_type=membrane.pd_type,
                            record=dict(record),
                            membrane_json=membrane_json,
                            uid=uid,
                        ),
                        self._ded,
                    )
                    if isinstance(node.store, ShardedDBFS):
                        with node.store._uid_lock:
                            node.store._uid_shard[uid] = index
                    stats["installed"] += 1
                    continue
                node_membrane = node_shard.get_membrane(uid, self._ded)
                if node_membrane.erased:
                    # The node erased what the leader still holds — the
                    # leader is authoritative; the record reinstalls on
                    # the next full reseed only.  Count it for audits.
                    stats["updated"] += 1
                    continue
                node_record = node_shard._load_record_raw(uid)
                if node_record != record:
                    node_shard.update(
                        UpdateRequest(uid=uid, changes=dict(record)),
                        self._ded,
                    )
                    stats["updated"] += 1
                if node_membrane.to_json() != membrane_json:
                    node_shard.put_membrane(uid, membrane, self._ded)
                    stats["membranes"] += 1
        with self._lock:
            node.applied_schema = self._leader.schema_stream.head
            node.applied = [s.head for s in self._leader.streams]
            node.needs_reconcile = False
        return stats

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------

    def _register_gauges(self) -> None:
        registry = self.telemetry.registry

        def collect(reg) -> None:
            lag = self.lag()
            reg.gauge("rgpdos.replication.lag_records").set(
                sum(lag.values())
            )
            for node in self.nodes:
                reg.gauge(f"rgpdos.cluster.node.{node.node_id}.role").set(
                    _ROLE_GAUGE.get(node.role, 0)
                )
                reg.gauge(f"rgpdos.cluster.node.{node.node_id}.lag").set(
                    lag.get(node.node_id, 0)
                )
            reg.gauge("rgpdos.cluster.nodes").set(len(self.nodes))
            reg.gauge("rgpdos.cluster.followers").set(
                sum(1 for f in self._followers if f.alive)
            )
            reg.gauge("rgpdos.placement.violations").set(
                self.placement.violations
            )
            reg.gauge("rgpdos.placement.blocked").set(self.placement.blocked)

        registry.register_collector(collect)

    def stats(self) -> Dict[str, object]:
        """One JSON-safe snapshot of the cluster's replication state."""
        with self._lock:
            link_stats = {
                f.node_id: {
                    "messages": f.link.stats.messages,
                    "records": f.link.stats.records,
                    "bytes": f.link.stats.bytes_shipped,
                    "simulated_seconds": round(
                        f.link.stats.simulated_seconds, 6
                    ),
                    "partitioned": f.link.partitioned,
                }
                for f in self._followers
                if f.link is not None
            }
        return {
            "leader": self._leader.node_id,
            "nodes": [
                {
                    "node_id": n.node_id,
                    "region": n.region,
                    "safeguard": n.location.safeguard,
                    "role": n.role,
                    "alive": n.alive,
                    "applied": list(n.applied),
                }
                for n in self.nodes
            ],
            "lag": self.lag(),
            "watermark": self.watermark(),
            "links": link_stats,
            "placement": self.placement.audit(),
        }

    def close(self) -> None:
        self._detach_capture()
        self._pool.shutdown(wait=False)
