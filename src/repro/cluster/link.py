"""Simulated replication network link.

One :class:`ReplicationLink` connects the leader's shipper to one
follower node.  It models the three properties of a real WAN corridor
that matter to replication:

* **latency** — every shipped batch pays a fixed per-message cost,
  which is exactly why group commit batches amortize (the erasure
  propagation benchmark sweeps batch size against this);
* **bandwidth** — payload bytes divide by the corridor's throughput;
* **faults** — transient send failures and full partitions, driven by
  the *existing* :class:`~repro.storage.faults.FaultInjector` so the
  fault schedule is seeded and replayable like every other fault in
  the repo.  A "power cut" on the link's injector is a partition: the
  corridor stays down until :meth:`heal`.

Time is accounted, not slept: ``stats.simulated_seconds`` accumulates
the modelled transfer time so benchmarks can report propagation
latency deterministically.  Pass ``delay_scale > 0`` to convert the
modelled delay into a real ``time.sleep`` (same idea as the block
device's ``io_delay_scale``) when wall-clock realism matters.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from .. import errors
from ..storage.faults import FaultInjector, FaultPlan


@dataclass(frozen=True)
class LinkConfig:
    """Corridor shape: per-message latency, throughput, fault plan."""

    #: Seconds of fixed cost per shipped message (batch), regardless
    #: of size.  WAN RTTs live here.
    latency_seconds: float = 0.002
    #: Payload throughput; bytes / bandwidth adds to the message cost.
    bandwidth_bytes_per_second: float = 50e6
    #: Scale modelled delay into real sleep (0 = account only).
    delay_scale: float = 0.0
    #: Seeded fault schedule for the corridor (transient_write_every
    #: drops every Nth send once; power_cut_after_writes partitions
    #: the link at the Nth send).
    plan: Optional[FaultPlan] = None


@dataclass
class LinkStats:
    """What actually crossed (and failed to cross) the corridor."""

    messages: int = 0
    records: int = 0
    bytes_shipped: int = 0
    simulated_seconds: float = 0.0
    transient_failures: int = 0
    partition_rejections: int = 0


class ReplicationLink:
    """One leader→follower corridor with seeded faults."""

    def __init__(self, config: Optional[LinkConfig] = None) -> None:
        self.config = config if config is not None else LinkConfig()
        self.injector = FaultInjector(self.config.plan)
        self.stats = LinkStats()

    # -- partition control --------------------------------------------------

    @property
    def partitioned(self) -> bool:
        return not self.injector.powered

    def partition(self) -> None:
        """Cut the corridor (an operator-driven fault, no plan needed)."""
        self.injector.powered = False

    def heal(self) -> None:
        self.injector.power_on()

    # -- shipping -----------------------------------------------------------

    def send(self, record_count: int, payload_bytes: int) -> float:
        """Ship one batch; returns the modelled transfer delay.

        Raises :class:`~repro.errors.LinkPartitionedError` when the
        corridor is down (including a plan-scheduled partition firing
        on this very send) and :class:`~repro.errors.TransientIOError`
        for a plan-scheduled transient drop — the shipper retries
        those, while a partition parks the follower until healed.
        """
        if self.partitioned:
            self.stats.partition_rejections += 1
            raise errors.LinkPartitionedError(
                "replication link is partitioned"
            )
        index = self.injector.next_write()
        if self.injector.transient_write(index):
            self.stats.transient_failures += 1
            raise errors.TransientIOError(
                f"transient replication fault on send #{index}"
            )
        if self.injector.cut_now(index):
            self.stats.partition_rejections += 1
            raise errors.LinkPartitionedError(
                f"replication link partitioned at send #{index}"
            )
        delay = self.config.latency_seconds + (
            payload_bytes / self.config.bandwidth_bytes_per_second
            if self.config.bandwidth_bytes_per_second > 0
            else 0.0
        )
        self.stats.messages += 1
        self.stats.records += record_count
        self.stats.bytes_shipped += payload_bytes
        self.stats.simulated_seconds += delay
        if self.config.delay_scale > 0.0:
            time.sleep(delay * self.config.delay_scale)
        return delay
