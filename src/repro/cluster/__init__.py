"""Replicated rgpdOS cluster (PR 10).

Journal-shipping replication with read-replica scale-out and geo-aware
GDPR placement:

* :mod:`repro.cluster.link` — the simulated WAN corridor (latency,
  bandwidth, seeded faults via the storage fault injector);
* :mod:`repro.cluster.placement` — Chapter V (Art. 44–46) enforced at
  placement time and re-checked on failover;
* :mod:`repro.cluster.cluster` — leader/follower topology, pipelined
  group-committed shipping, MVCC replica reads, RTBF watermark, and
  crash-path failover.
"""

from .cluster import (ClusterNode, ReplicatedCluster, ShippedRecord,
                      ROLE_DEAD, ROLE_FOLLOWER, ROLE_LEADER)
from .link import LinkConfig, LinkStats, ReplicationLink
from .placement import NodeLocation, PlacementEngine

__all__ = [
    "ClusterNode",
    "LinkConfig",
    "LinkStats",
    "NodeLocation",
    "PlacementEngine",
    "ReplicatedCluster",
    "ReplicationLink",
    "ShippedRecord",
    "ROLE_DEAD",
    "ROLE_FOLLOWER",
    "ROLE_LEADER",
]
