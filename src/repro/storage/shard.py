"""Sharded DBFS — scatter-gather over N independent `DatabaseFS` shards.

The paper's § 3(1) layout gives every data subject their own inode
subtree; nothing in the design requires all those subtrees to live in
one filesystem.  :class:`ShardedDBFS` exploits that: it runs N
independent :class:`~repro.storage.dbfs.DatabaseFS` instances — each
with its own :class:`~repro.storage.block.BlockDevice` and metadata
journal — and places every subject on exactly one shard by a stable
hash of ``subject_id``.

**Placement is lineage-affine.**  Copies made by the ``copy`` built-in
keep the original's ``subject_id``, so a whole lineage group always
lands on one shard and RTBF / consent propagation / restriction never
cross a shard boundary.  That locality is what makes the expensive
subject-scoped operations flat in the population size:

* *routing* — store, fetch, update, delete, export, membrane get/put
  and the post-erasure residue scan touch only the owning shard (a
  delete's ``device.scan`` walks one shard's blocks, not all of them);
* *scatter-gather* — type-level queries (``select_uids``,
  ``query_membranes``, ``iter_membranes``, ``forensic_scan``) fan out
  to every shard and merge, preserving the single-DBFS result order;
* *batched rights* — multi-subject operations group their per-shard
  work under one :meth:`~repro.storage.journal.Journal.batch` group
  commit per shard (see :meth:`ShardedDBFS.batch` and
  ``SubjectRights.bulk_erase`` / ``bulk_right_of_access``).

The schema trees are replicated: every shard declares every type, so
any shard can answer a type-level query over its own subjects and the
format descriptors stay a per-shard, read-once affair.

``ShardedDBFS(shard_count=1)`` is behaviour-compatible with a plain
``DatabaseFS`` — the equivalence tests in
``tests/storage/test_sharding.py`` assert identical results op by op —
and ``RgpdOS(shards=1)`` (the default) keeps constructing the plain
class, so the seed layout is untouched.
"""

from __future__ import annotations

import json
import zlib
from contextlib import ExitStack, contextmanager
from dataclasses import replace as _dc_replace
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .. import errors
from ..core.active_data import AccessCredential, PDRef
from ..core.crypto import EscrowBlob, OperatorKey
from ..core.datatypes import PDType
from ..core.membrane import Membrane
from ..obs import NULL_TELEMETRY, Telemetry
from .block import BlockDevice
from .btree import FieldIndex
from .cache import CacheConfig, DEFAULT_CACHE_CONFIG
from .dbfs import DatabaseFS, DBFSStats
from .journal import JournalConfig
from .query import (
    DataQuery,
    DeleteRequest,
    MembraneQuery,
    Predicate,
    StoreRequest,
    UpdateRequest,
)


def shard_index(subject_id: str, shard_count: int) -> int:
    """Stable placement: CRC-32 of the subject id, modulo shard count.

    Deliberately *not* Python's ``hash`` (randomised per process —
    placement must survive a reboot/remount unchanged).
    """
    return zlib.crc32(subject_id.encode("utf-8")) % shard_count


class ShardedDBFS:
    """N independent DBFS shards behind the single-DBFS interface.

    Drop-in for :class:`DatabaseFS` everywhere the kernel, DED,
    built-ins, rights engine, compliance auditor and benchmarks touch
    the store.  See the module docstring for the routing rules.
    """

    def __init__(
        self,
        shard_count: int = 1,
        devices: Optional[Sequence[BlockDevice]] = None,
        operator_key: Optional[OperatorKey] = None,
        journal_blocks: int = 256,
        cache_config: Optional[CacheConfig] = None,
        journal_config: Optional[JournalConfig] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        if devices is not None:
            shard_count = len(devices)
        if shard_count < 1:
            raise errors.DBFSError(
                f"a sharded DBFS needs at least 1 shard, got {shard_count}"
            )
        self.cache_config = (
            cache_config if cache_config is not None else DEFAULT_CACHE_CONFIG
        )
        self.journal_config = journal_config
        # One Telemetry shared by every shard: spans from different
        # shards land in the same tracer, which is what makes
        # scatter-gather skew visible in a single trace.
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._shards: List[DatabaseFS] = [
            DatabaseFS(
                device=devices[i] if devices is not None else None,
                operator_key=operator_key,
                journal_blocks=journal_blocks,
                cache_config=self.cache_config,
                journal_config=journal_config,
                telemetry=self.telemetry,
            )
            for i in range(shard_count)
        ]
        # uid -> owning shard index; maintained at store time and
        # rebuilt from the shards' subject trees on remount.
        self._uid_shard: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------

    @property
    def shard_count(self) -> int:
        return len(self._shards)

    @property
    def shards(self) -> List[DatabaseFS]:
        return list(self._shards)

    def shard_index_for_subject(self, subject_id: str) -> int:
        return shard_index(subject_id, len(self._shards))

    def shard_for_subject(self, subject_id: str) -> DatabaseFS:
        return self._shards[self.shard_index_for_subject(subject_id)]

    def shard_for_uid(self, uid: str) -> DatabaseFS:
        return self._owning_shard(uid)

    def subjects_by_shard(
        self, subject_ids: Sequence[str]
    ) -> Dict[int, List[str]]:
        """Group subject ids by owning shard (insertion order kept)."""
        groups: Dict[int, List[str]] = {}
        for subject_id in subject_ids:
            groups.setdefault(
                self.shard_index_for_subject(subject_id), []
            ).append(subject_id)
        return groups

    def _owning_shard(self, uid: str) -> DatabaseFS:
        """Shard holding ``uid``; unknown uids fall through to shard 0
        so the error type (and its DED-check ordering) matches the
        single-DBFS behaviour exactly."""
        index = self._uid_shard.get(uid)
        return self._shards[0 if index is None else index]

    # ------------------------------------------------------------------
    # Schema management (replicated to every shard)
    # ------------------------------------------------------------------

    def create_type(self, pd_type: PDType, credential: AccessCredential) -> None:
        for shard in self._shards:
            shard.create_type(pd_type, credential)

    def evolve_type(
        self, new_type: PDType, credential: AccessCredential
    ) -> PDType:
        result = new_type
        for shard in self._shards:
            result = shard.evolve_type(new_type, credential)
        return result

    def schema_version(self, type_name: str) -> int:
        return self._shards[0].schema_version(type_name)

    def get_type(self, name: str) -> PDType:
        return self._shards[0].get_type(name)

    def list_types(self) -> List[str]:
        return self._shards[0].list_types()

    # ------------------------------------------------------------------
    # Secondary field indexes (one per shard, queried scatter-gather)
    # ------------------------------------------------------------------

    def create_index(
        self, type_name: str, field_name: str, credential: AccessCredential
    ) -> List[FieldIndex]:
        return [
            shard.create_index(type_name, field_name, credential)
            for shard in self._shards
        ]

    def has_index(self, type_name: str, field_name: str) -> bool:
        return self._shards[0].has_index(type_name, field_name)

    def select_uids(
        self,
        type_name: str,
        predicate: Predicate,
        credential: AccessCredential,
    ) -> List[str]:
        matches: List[str] = []
        for index, shard in enumerate(self._shards):
            with self.telemetry.span(
                "shard.fanout", shard=index, op="select_uids"
            ):
                matches.extend(
                    shard.select_uids(type_name, predicate, credential)
                )
        return sorted(matches)

    # ------------------------------------------------------------------
    # Store (routed by the membrane's subject id)
    # ------------------------------------------------------------------

    def _store_shard_index(self, request: StoreRequest) -> int:
        """Placement for a store: hash the membrane's subject id.

        Anything malformed (no membrane, unparseable JSON, missing
        subject) routes to shard 0, whose own validation raises the
        same error a single DBFS would.
        """
        if not request.membrane_json:
            return 0
        try:
            subject_id = json.loads(request.membrane_json).get("subject_id")
        except (ValueError, AttributeError):
            return 0
        if not isinstance(subject_id, str) or not subject_id:
            return 0
        return self.shard_index_for_subject(subject_id)

    def store(self, request: StoreRequest, credential: AccessCredential) -> PDRef:
        index = self._store_shard_index(request)
        ref = self._shards[index].store(request, credential)
        self._uid_shard[ref.uid] = index
        return ref

    def store_many(
        self, requests: Sequence[StoreRequest], credential: AccessCredential
    ) -> List[PDRef]:
        """Bulk store: one journal group commit per involved shard.

        Refs come back in request order, exactly as the single-DBFS
        ``store_many`` returns them.
        """
        self._shards[0]._require_ded(credential, "store_many")
        placements = [self._store_shard_index(r) for r in requests]
        refs: List[PDRef] = []
        with ExitStack() as stack:
            for index in sorted(set(placements)):
                stack.enter_context(self._shards[index].journal.batch())
            for request, index in zip(requests, placements):
                ref = self._shards[index].store(request, credential)
                self._uid_shard[ref.uid] = index
                refs.append(ref)
        for index in sorted(set(placements)):
            self._shards[index].stats.bulk_stores += 1
        return refs

    @contextmanager
    def batch(self) -> Iterator[None]:
        """Group-commit context spanning every shard's journal."""
        with ExitStack() as stack:
            for shard in self._shards:
                stack.enter_context(shard.journal.batch())
            yield

    # ------------------------------------------------------------------
    # Membrane phase
    # ------------------------------------------------------------------

    def query_membranes(
        self, query: MembraneQuery, credential: AccessCredential
    ) -> List[Tuple[PDRef, Membrane]]:
        if query.subject_id:
            # Subject-scoped: only the owning shard can hold matches,
            # but the type must still fail loudly if undeclared.
            self.get_type(query.pd_type)
            shard = self.shard_for_subject(query.subject_id)
            return shard.query_membranes(query, credential)
        if query.uids is not None:
            results: List[Tuple[PDRef, Membrane]] = []
            for index, uids in self._uids_by_shard(query.uids).items():
                sub_query = _dc_replace(query, uids=tuple(uids))
                with self.telemetry.span(
                    "shard.fanout", shard=index, op="query_membranes"
                ):
                    results.extend(
                        self._shards[index].query_membranes(
                            sub_query, credential
                        )
                    )
            results.sort(key=lambda pair: pair[0].uid)
            return results
        results = []
        for index, shard in enumerate(self._shards):
            with self.telemetry.span(
                "shard.fanout", shard=index, op="query_membranes"
            ):
                results.extend(shard.query_membranes(query, credential))
        results.sort(key=lambda pair: pair[0].uid)
        return results

    def get_membrane(self, uid: str, credential: AccessCredential) -> Membrane:
        return self._owning_shard(uid).get_membrane(uid, credential)

    def put_membrane(
        self, uid: str, membrane: Membrane, credential: AccessCredential
    ) -> None:
        self._owning_shard(uid).put_membrane(uid, membrane, credential)

    def lineage_members(self, lineage: str) -> List[str]:
        # A lineage id is the uid of the group's first copy source, so
        # the whole group lives on that uid's shard (lineage affinity).
        index = self._uid_shard.get(lineage)
        if index is not None:
            return self._shards[index].lineage_members(lineage)
        members: List[str] = []
        for shard in self._shards:
            members.extend(shard.lineage_members(lineage))
        return sorted(members)

    # ------------------------------------------------------------------
    # Data phase
    # ------------------------------------------------------------------

    def fetch_records(
        self, query: DataQuery, credential: AccessCredential
    ) -> Dict[str, Dict[str, object]]:
        self._shards[0]._require_ded(credential, "fetch_records")
        results: Dict[str, Dict[str, object]] = {}
        for index, uids in self._uids_by_shard(query.uids).items():
            sub_query = _dc_replace(query, uids=tuple(uids))
            with self.telemetry.span(
                "shard.fanout", shard=index, op="fetch_records"
            ):
                results.update(
                    self._shards[index].fetch_records(sub_query, credential)
                )
        return results

    def _load_record_raw(self, uid: str) -> Dict[str, object]:
        return self._owning_shard(uid)._load_record_raw(uid)

    def _uids_by_shard(self, uids: Sequence[str]) -> Dict[int, List[str]]:
        """Group uids by owning shard; unknown uids go to shard 0 so
        lookups fail with the single-DBFS error."""
        groups: Dict[int, List[str]] = {}
        for uid in uids:
            groups.setdefault(self._uid_shard.get(uid, 0), []).append(uid)
        return groups

    # ------------------------------------------------------------------
    # Update / delete
    # ------------------------------------------------------------------

    def update(self, request: UpdateRequest, credential: AccessCredential) -> None:
        self._owning_shard(request.uid).update(request, credential)

    def delete(
        self, request: DeleteRequest, credential: AccessCredential
    ) -> Membrane:
        return self._owning_shard(request.uid).delete(request, credential)

    def escrow_blob(self, uid: str) -> EscrowBlob:
        return self._owning_shard(uid).escrow_blob(uid)

    # ------------------------------------------------------------------
    # Subject-level operations (single-shard by construction)
    # ------------------------------------------------------------------

    def list_subjects(self) -> List[str]:
        subjects: List[str] = []
        for shard in self._shards:
            subjects.extend(shard.list_subjects())
        return sorted(subjects)

    def uids_of_subject(self, subject_id: str) -> List[str]:
        return self.shard_for_subject(subject_id).uids_of_subject(subject_id)

    def export_subject(
        self, subject_id: str, credential: AccessCredential
    ) -> Dict[str, object]:
        return self.shard_for_subject(subject_id).export_subject(
            subject_id, credential
        )

    # ------------------------------------------------------------------
    # Maintenance & forensics (scatter-gather)
    # ------------------------------------------------------------------

    def all_uids(self) -> List[str]:
        uids: List[str] = []
        for shard in self._shards:
            uids.extend(shard.all_uids())
        return sorted(uids)

    def iter_membranes(
        self, credential: AccessCredential
    ) -> List[Tuple[str, Membrane]]:
        pairs: List[Tuple[str, Membrane]] = []
        for shard in self._shards:
            pairs.extend(shard.iter_membranes(credential))
        pairs.sort(key=lambda pair: pair[0])
        return pairs

    def forensic_scan(self, needle: bytes) -> Dict[str, int]:
        totals = {"device_blocks": 0, "journal_records": 0}
        for index, shard in enumerate(self._shards):
            with self.telemetry.span(
                "shard.fanout", shard=index, op="forensic_scan"
            ):
                counts = shard.forensic_scan(needle)
            totals["device_blocks"] += counts["device_blocks"]
            totals["journal_records"] += counts["journal_records"]
        return totals

    def record_inode(self, uid: str):
        return self._owning_shard(uid).record_inode(uid)

    def record_size(self, uid: str) -> int:
        return self._owning_shard(uid).record_size(uid)

    def residue_counts(
        self,
        needles: Sequence[bytes],
        subject_id: Optional[str] = None,
    ) -> Dict[str, int]:
        """Residue scan, scoped to the owning shard when the erased
        subject is known — the subject's plaintext never touched any
        other shard's device or journal, so scanning them would only
        cost time.  Without a subject the scan covers every shard.
        """
        if subject_id is not None:
            return self.shard_for_subject(subject_id).residue_counts(
                needles, subject_id=subject_id
            )
        totals = {"device_blocks": 0, "journal_records": 0}
        for shard in self._shards:
            counts = shard.residue_counts(needles)
            totals["device_blocks"] += counts["device_blocks"]
            totals["journal_records"] += counts["journal_records"]
        return totals

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    @property
    def stats(self) -> DBFSStats:
        """Aggregated operation counters (sum over shards)."""
        total = DBFSStats()
        for shard in self._shards:
            for name in vars(total):
                setattr(
                    total, name, getattr(total, name) + getattr(shard.stats, name)
                )
        return total

    def cache_stats(self) -> Dict[str, object]:
        """Per-shard cache/journal report, plus the shard count."""
        return {
            "shards": len(self._shards),
            "per_shard": [shard.cache_stats() for shard in self._shards],
        }

    def shard_stats(self) -> List[Dict[str, object]]:
        """One occupancy/journal summary per shard."""
        stats: List[Dict[str, object]] = []
        for index, shard in enumerate(self._shards):
            entry = shard.shard_stats()[0]
            entry["shard"] = index
            stats.append(entry)
        return stats

    # ------------------------------------------------------------------
    # Crash recovery
    # ------------------------------------------------------------------

    def remount(self) -> Dict[str, int]:
        """Remount every shard and rebuild the uid→shard map.

        Schema counts are reported once (the schema trees are
        replicas); record-level counts are summed across shards.
        """
        per_shard = [shard.remount() for shard in self._shards]
        self._uid_shard.clear()
        for index, shard in enumerate(self._shards):
            for uid in shard.all_uids():
                self._uid_shard[uid] = index
        return {
            "types": per_shard[0]["types"],
            "records": sum(r["records"] for r in per_shard),
            "lineage_groups": sum(r["lineage_groups"] for r in per_shard),
            "escrow_blobs": sum(r["escrow_blobs"] for r in per_shard),
            "field_indexes": per_shard[0]["field_indexes"],
        }
