"""Sharded DBFS — scatter-gather over N independent `DatabaseFS` shards.

The paper's § 3(1) layout gives every data subject their own inode
subtree; nothing in the design requires all those subtrees to live in
one filesystem.  :class:`ShardedDBFS` exploits that: it runs N
independent :class:`~repro.storage.dbfs.DatabaseFS` instances — each
with its own :class:`~repro.storage.block.BlockDevice` and metadata
journal — and places every subject on exactly one shard by a stable
hash of ``subject_id``.

**Placement is lineage-affine.**  Copies made by the ``copy`` built-in
keep the original's ``subject_id``, so a whole lineage group always
lands on one shard and RTBF / consent propagation / restriction never
cross a shard boundary.  That locality is what makes the expensive
subject-scoped operations flat in the population size:

* *routing* — store, fetch, update, delete, export, membrane get/put
  and the post-erasure residue scan touch only the owning shard (a
  delete's ``device.scan`` walks one shard's blocks, not all of them);
* *scatter-gather* — type-level queries (``select_uids``,
  ``query_membranes``, ``iter_membranes``, ``forensic_scan``) fan out
  to every shard and merge, preserving the single-DBFS result order;
* *batched rights* — multi-subject operations group their per-shard
  work under one :meth:`~repro.storage.journal.Journal.batch` group
  commit per shard (see :meth:`ShardedDBFS.batch` and
  ``SubjectRights.bulk_erase`` / ``bulk_right_of_access``).

The schema trees are replicated: every shard declares every type, so
any shard can answer a type-level query over its own subjects and the
format descriptors stay a per-shard, read-once affair.

``ShardedDBFS(shard_count=1)`` is behaviour-compatible with a plain
``DatabaseFS`` — the equivalence tests in
``tests/storage/test_sharding.py`` assert identical results op by op —
and ``RgpdOS(shards=1)`` (the default) keeps constructing the plain
class, so the seed layout is untouched.
"""

from __future__ import annotations

import json
import threading
import zlib
from contextlib import ExitStack, contextmanager
from uuid import uuid4
from dataclasses import replace as _dc_replace
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from .. import errors
from ..core.active_data import AccessCredential, PDRef
from ..core.crypto import EscrowBlob, OperatorKey
from ..core.datatypes import PDType
from ..core.membrane import Membrane
from ..obs import NULL_TELEMETRY, Telemetry
from .block import BlockDevice
from .btree import DEFAULT_PAGE_CAPACITY, DurableFieldIndex
from .cache import CacheConfig, DEFAULT_CACHE_CONFIG
from .dbfs import DatabaseFS, DBFSStats
from .inode import InodeTable
from .mvcc import FleetSnapshot, Snapshot
from .journal import JournalConfig, TXN_COMMIT, TXN_DELETE
from .query import (
    DataQuery,
    DeleteRequest,
    MembraneQuery,
    Predicate,
    StoreRequest,
    UpdateRequest,
)


def shard_index(subject_id: str, shard_count: int) -> int:
    """Stable placement: CRC-32 of the subject id, modulo shard count.

    Deliberately *not* Python's ``hash`` (randomised per process —
    placement must survive a reboot/remount unchanged).
    """
    return zlib.crc32(subject_id.encode("utf-8")) % shard_count


class ShardedDBFS:
    """N independent DBFS shards behind the single-DBFS interface.

    Drop-in for :class:`DatabaseFS` everywhere the kernel, DED,
    built-ins, rights engine, compliance auditor and benchmarks touch
    the store.  See the module docstring for the routing rules.
    """

    def __init__(
        self,
        shard_count: int = 1,
        devices: Optional[Sequence[BlockDevice]] = None,
        operator_key: Optional[OperatorKey] = None,
        journal_blocks: int = 256,
        cache_config: Optional[CacheConfig] = None,
        journal_config: Optional[JournalConfig] = None,
        telemetry: Optional[Telemetry] = None,
        record_codec: str = "v2",
        scan_batch_rows: int = 256,
        bloom_filters: bool = True,
        index_page_capacity: int = DEFAULT_PAGE_CAPACITY,
    ) -> None:
        if devices is not None:
            shard_count = len(devices)
        if shard_count < 1:
            raise errors.DBFSError(
                f"a sharded DBFS needs at least 1 shard, got {shard_count}"
            )
        self.cache_config = (
            cache_config if cache_config is not None else DEFAULT_CACHE_CONFIG
        )
        self.journal_config = journal_config
        # One Telemetry shared by every shard: spans from different
        # shards land in the same tracer, which is what makes
        # scatter-gather skew visible in a single trace.
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._shards: List[DatabaseFS] = [
            DatabaseFS(
                device=devices[i] if devices is not None else None,
                operator_key=operator_key,
                journal_blocks=journal_blocks,
                cache_config=self.cache_config,
                journal_config=journal_config,
                telemetry=self.telemetry,
                record_codec=record_codec,
                scan_batch_rows=scan_batch_rows,
                bloom_filters=bloom_filters,
                index_page_capacity=index_page_capacity,
            )
            for i in range(shard_count)
        ]
        # uid -> owning shard index; maintained at store time and
        # rebuilt from the shards' subject trees on remount.  Writes
        # take _uid_lock; lookups are lock-free single dict reads.
        self._uid_shard: Dict[str, int] = {}
        self._uid_lock = threading.Lock()
        # Optional parallel scatter-gather runner (see set_fanout).
        self._fanout: Optional[Callable[..., List[object]]] = None
        # shard index -> failure reason; only ever populated by
        # remount_from_devices when a shard's crash recovery fails.
        self._degraded: Dict[int, str] = {}
        #: Per-shard crash-reconciliation reports of the last
        #: remount_from_devices (empty for a normally built fleet).
        self.recovery_report: Dict[str, object] = {}
        # Fleet-level retention of TTL observer registrations, so a
        # true-crash remount can carry them over to the fresh shard
        # objects it builds (see remount_from_devices ttl_observers=).
        self._fleet_ttl_observers: List[
            Callable[[str, str, Optional[float]], None]
        ] = []

    @classmethod
    def remount_from_devices(
        cls,
        devices: Sequence[BlockDevice],
        inode_tables: Sequence["InodeTable"],
        operator_key: Optional[OperatorKey] = None,
        cache_config: Optional[CacheConfig] = None,
        journal_config: Optional[JournalConfig] = None,
        telemetry: Optional[Telemetry] = None,
        record_codec: str = "v2",
        scan_batch_rows: int = 256,
        bloom_filters: bool = True,
        index_page_capacity: int = DEFAULT_PAGE_CAPACITY,
        ttl_observers: Sequence[
            Callable[[str, str, Optional[float]], None]
        ] = (),
    ) -> "ShardedDBFS":
        """True-crash remount of a whole fleet, shard by shard.

        Each shard recovers independently through
        :meth:`DatabaseFS.remount_from_device` — its own device bytes,
        inode table and journal extent, nothing shared.  A shard whose
        recovery fails is **degraded**, not fatal: the healthy shards
        keep serving, scatter-gather skips the degraded one, and only
        operations that must touch it raise
        :class:`~repro.errors.ShardUnavailableError`.  The per-shard
        reconciliation reports (and the degraded map) land in
        :attr:`recovery_report`.

        ``ttl_observers`` (usually the crashed fleet's
        :attr:`fleet_ttl_observers`) are re-registered on every
        recovered shard, so daemons subscribed before the crash keep
        hearing TTL events on the sharded path exactly as they do
        across a single-DBFS in-place remount.  The observers' *wheel
        state* is still stale — pair this with
        ``ExpiryDaemon.rebind`` to re-seed from the recovered
        membranes.
        """
        if not devices or len(devices) != len(inode_tables):
            raise errors.DBFSError(
                "remount_from_devices needs one inode table per device "
                f"(got {len(devices)} devices, {len(inode_tables)} tables)"
            )
        fleet = cls.__new__(cls)
        fleet.cache_config = (
            cache_config if cache_config is not None else DEFAULT_CACHE_CONFIG
        )
        fleet.journal_config = journal_config
        fleet.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        fleet._shards = []
        fleet._degraded = {}
        fleet._uid_shard = {}
        fleet._uid_lock = threading.Lock()
        fleet._fanout = None
        fleet._fleet_ttl_observers = list(ttl_observers)
        for index, (device, inodes) in enumerate(zip(devices, inode_tables)):
            try:
                shard = DatabaseFS.remount_from_device(
                    device,
                    inodes,
                    operator_key=operator_key,
                    cache_config=fleet.cache_config,
                    journal_config=journal_config,
                    telemetry=fleet.telemetry,
                    record_codec=record_codec,
                    scan_batch_rows=scan_batch_rows,
                    bloom_filters=bloom_filters,
                    index_page_capacity=index_page_capacity,
                )
            except (errors.RgpdOSError, ValueError, KeyError, TypeError) as exc:
                # Isolate the corruption: one bad shard must degrade,
                # not kill the fleet.
                fleet._shards.append(None)  # type: ignore[arg-type]
                fleet._degraded[index] = f"{type(exc).__name__}: {exc}"
                continue
            fleet._shards.append(shard)
            for uid in shard.all_uids():
                fleet._uid_shard[uid] = index
        for observer in fleet._fleet_ttl_observers:
            for _, shard in fleet._healthy():
                shard.add_ttl_observer(observer)
        torn_batches = fleet._resolve_torn_fleet_batches()
        fleet.recovery_report = {
            "shards": len(fleet._shards),
            "degraded": dict(fleet._degraded),
            "torn_fleet_batches": torn_batches,
            "per_shard": [
                shard.recovery_report if shard is not None else None
                for shard in fleet._shards
            ],
        }
        return fleet

    def _resolve_torn_fleet_batches(self) -> Dict[str, int]:
        """Presumed-abort resolution of cross-shard group commits.

        A ``fleet-batch`` marker visible in an *uncommitted*
        transaction on any participant proves the commit fan-out was
        interrupted before every shard's COMMIT landed — so the group
        as a whole never committed, and the shards where it *did*
        commit must roll their half back (per-shard recovery already
        discarded the uncommitted halves).  A marker with no
        uncommitted sibling anywhere is left alone: the group either
        committed everywhere or never wrote a single store.  The
        rollback is idempotent — a second crash and remount finds the
        stores already gone.
        """
        present: Dict[str, Dict[int, Tuple[bool, List[str]]]] = {}
        for index, shard in self._healthy():
            committed_txns = set()
            by_txn: Dict[int, List[object]] = {}
            for record in shard.journal.records():
                by_txn.setdefault(record.txn_id, []).append(record)
                if record.record_type == TXN_COMMIT:
                    committed_txns.add(record.txn_id)
            for txn_id, records in by_txn.items():
                marker = next(
                    (
                        r
                        for r in records
                        if r.record_type == TXN_DELETE
                        and r.target.startswith("fleet-batch:")
                    ),
                    None,
                )
                if marker is None:
                    continue
                batch_id = marker.target.split(":", 2)[1]
                uids = [
                    r.target[len("store:"):]
                    for r in records
                    if r.record_type == TXN_DELETE
                    and r.target.startswith("store:")
                ]
                present.setdefault(batch_id, {})[index] = (
                    txn_id in committed_txns,
                    uids,
                )
        torn = 0
        rolled_back = 0
        for batch_id, by_shard in present.items():
            if all(committed for committed, _ in by_shard.values()):
                continue
            torn += 1
            for index, (committed, uids) in by_shard.items():
                if not committed or not uids:
                    continue
                rolled_back += self._shards[index].rollback_stores(uids)
                for uid in uids:
                    self._uid_shard.pop(uid, None)
        return {"torn_batches": torn, "rolled_back_stores": rolled_back}

    def _shard_at(self, index: int) -> DatabaseFS:
        """The shard at ``index``, or ShardUnavailableError if degraded."""
        reason = self._degraded.get(index)
        if reason is not None:
            raise errors.ShardUnavailableError(
                f"shard {index} is degraded after crash recovery ({reason})"
            )
        return self._shards[index]

    def _healthy(self) -> List[Tuple[int, DatabaseFS]]:
        return [
            (index, shard)
            for index, shard in enumerate(self._shards)
            if index not in self._degraded
        ]

    @property
    def degraded_shards(self) -> Dict[int, str]:
        """Degraded shard indexes -> failure reason (empty if healthy)."""
        return dict(self._degraded)

    # ------------------------------------------------------------------
    # Concurrency: parallel fan-out + fleet snapshots
    # ------------------------------------------------------------------

    def set_fanout(
        self, run: Optional[Callable[..., List[object]]]
    ) -> None:
        """Install a parallel scatter-gather runner (or None for serial).

        ``run`` takes a list of zero-argument callables and returns
        their results in order; the request engine installs its worker
        pool here so type-level queries and bulk rights hit all shards
        concurrently.  Each sub-task touches exactly one shard, and
        reads take no shard-wide locks, so the tasks are independent.
        """
        self._fanout = run

    def _fan(self, tasks: Sequence[Callable[[], object]]) -> List[object]:
        """Run scatter-gather sub-tasks, in parallel when a runner is set."""
        if self._fanout is None or len(tasks) <= 1:
            return [task() for task in tasks]
        return list(self._fanout(tasks))

    def begin_snapshot(self) -> FleetSnapshot:
        """One consistent read point across the fleet.

        Takes every healthy shard's MVCC snapshot back to back; a
        degraded shard's slot stays ``None`` (reads never reach it).
        The vector is not globally serialized across shards — each
        shard's component is consistent, which is exactly the
        guarantee subject-affine placement needs: a subject's whole
        lineage lives on one shard, so per-subject state is never
        split across two snapshot components.
        """
        return FleetSnapshot([
            shard.begin_snapshot() if index not in self._degraded else None
            for index, shard in enumerate(self._shards)
        ])

    def mvcc_stats(self) -> Dict[str, object]:
        """Per-shard MVCC counters plus fleet totals."""
        per_shard = [
            shard.mvcc_stats() if index not in self._degraded else None
            for index, shard in enumerate(self._shards)
        ]
        healthy = [s for s in per_shard if s is not None]
        return {
            "snapshots_taken": sum(s["snapshots_taken"] for s in healthy),
            "active_snapshots": sum(s["active_snapshots"] for s in healthy),
            "chain_entries_recorded": sum(
                s["chain_entries_recorded"] for s in healthy
            ),
            "per_shard": per_shard,
        }

    @staticmethod
    def _sub(snapshot: Optional[FleetSnapshot], index: int) -> Optional[Snapshot]:
        """The per-shard component of a fleet snapshot (None passthrough)."""
        return None if snapshot is None else snapshot.for_shard(index)

    def write_lock(self, uid: str) -> "threading.RLock":
        """The owning shard's single-writer lock (read-modify-write).

        Lineage groups are shard-affine, so one shard's lock covers a
        whole ``apply_membrane_change`` propagation.
        """
        return self._owning_shard(uid)._write_lock

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------

    @property
    def shard_count(self) -> int:
        return len(self._shards)

    @property
    def shards(self) -> List[DatabaseFS]:
        return [shard for _, shard in self._healthy()]

    def shard_index_for_subject(self, subject_id: str) -> int:
        return shard_index(subject_id, len(self._shards))

    def shard_for_subject(self, subject_id: str) -> DatabaseFS:
        return self._shard_at(self.shard_index_for_subject(subject_id))

    def shard_for_uid(self, uid: str) -> DatabaseFS:
        return self._owning_shard(uid)

    def subjects_by_shard(
        self, subject_ids: Sequence[str]
    ) -> Dict[int, List[str]]:
        """Group subject ids by owning shard (insertion order kept)."""
        groups: Dict[int, List[str]] = {}
        for subject_id in subject_ids:
            groups.setdefault(
                self.shard_index_for_subject(subject_id), []
            ).append(subject_id)
        return groups

    def _owning_shard(self, uid: str) -> DatabaseFS:
        """Shard holding ``uid``; unknown uids fall through to shard 0
        so the error type (and its DED-check ordering) matches the
        single-DBFS behaviour exactly.  With degraded shards in the
        fleet an unknown uid is ambiguous — it may live on a shard we
        cannot read — so absence must not masquerade as
        UnknownRecordError."""
        index = self._uid_shard.get(uid)
        if index is None and self._degraded:
            raise errors.ShardUnavailableError(
                f"uid {uid!r} is not on any healthy shard and shards "
                f"{sorted(self._degraded)} are degraded; cannot prove absence"
            )
        return self._shard_at(0 if index is None else index)

    def _primary(self) -> DatabaseFS:
        """First healthy shard — schema reads work on a degraded fleet
        because the schema trees are replicas."""
        healthy = self._healthy()
        if not healthy:
            raise errors.ShardUnavailableError(
                "every shard is degraded; no replica of the schema survives"
            )
        return healthy[0][1]

    # ------------------------------------------------------------------
    # Schema management (replicated to every shard)
    # ------------------------------------------------------------------

    def create_type(self, pd_type: PDType, credential: AccessCredential) -> None:
        for _, shard in self._healthy():
            shard.create_type(pd_type, credential)

    def evolve_type(
        self, new_type: PDType, credential: AccessCredential
    ) -> PDType:
        result = new_type
        for _, shard in self._healthy():
            result = shard.evolve_type(new_type, credential)
        return result

    def schema_version(self, type_name: str) -> int:
        return self._primary().schema_version(type_name)

    def get_type(self, name: str) -> PDType:
        return self._primary().get_type(name)

    def list_types(self) -> List[str]:
        return self._primary().list_types()

    # ------------------------------------------------------------------
    # Secondary field indexes (one per shard, queried scatter-gather)
    # ------------------------------------------------------------------

    def create_index(
        self, type_name: str, field_name: str, credential: AccessCredential
    ) -> List[DurableFieldIndex]:
        return [
            shard.create_index(type_name, field_name, credential)
            for _, shard in self._healthy()
        ]

    def flush_accelerators(self) -> int:
        """Persist every shard's index pages and bloom sidecars."""
        return sum(
            shard.flush_accelerators() for _, shard in self._healthy()
        )

    def compact(
        self,
        rewrite_records: bool = True,
        max_records: Optional[int] = None,
    ) -> Dict[str, int]:
        """Compact every healthy shard; reports are summed.

        ``max_records`` is a per-call budget for the whole fleet: it is
        split evenly across the healthy shards (each gets at least 1),
        and the fleet-level ``cycle_complete`` is the AND of the shard
        reports — the incremental wave only closes when every shard's
        wave has.
        """
        total: Dict[str, int] = {}
        healthy = list(self._healthy())
        per_shard = (
            None
            if max_records is None
            else max(1, max_records // max(1, len(healthy)))
        )
        complete = 1
        for _, shard in healthy:
            report = shard.compact(
                rewrite_records=rewrite_records, max_records=per_shard
            )
            complete &= report.get("cycle_complete", 1)
            for key, value in report.items():
                total[key] = total.get(key, 0) + value
        total["cycle_complete"] = complete
        return total

    def add_ttl_observer(
        self, observer: Callable[[str, str, Optional[float]], None]
    ) -> None:
        """Subscribe to TTL deadline changes on every shard.

        One observer hears the whole fleet: the expiry daemon keeps a
        single timer wheel and routes each firing back to the owning
        shard through ``subjects_by_shard``.  The registration is also
        retained fleet-side (``_fleet_ttl_observers``) so
        :meth:`remount_from_devices` can re-attach observers to the
        fresh shard objects it builds — see ``ExpiryDaemon.rebind``.
        """
        self._fleet_ttl_observers.append(observer)
        for _, shard in self._healthy():
            shard.add_ttl_observer(observer)

    @property
    def fleet_ttl_observers(
        self,
    ) -> List[Callable[[str, str, Optional[float]], None]]:
        """The registrations to carry into ``remount_from_devices``."""
        return list(self._fleet_ttl_observers)

    def has_index(self, type_name: str, field_name: str) -> bool:
        return self._primary().has_index(type_name, field_name)

    def select_uids(
        self,
        type_name: str,
        predicate: Predicate,
        credential: AccessCredential,
        snapshot: Optional[FleetSnapshot] = None,
    ) -> List[str]:
        def one(index: int, shard: DatabaseFS) -> List[str]:
            with self.telemetry.span(
                "shard.fanout", shard=index, op="select_uids"
            ):
                return shard.select_uids(
                    type_name, predicate, credential,
                    snapshot=self._sub(snapshot, index),
                )

        matches: List[str] = []
        for per_shard in self._fan([
            (lambda i=index, s=shard: one(i, s))
            for index, shard in self._healthy()
        ]):
            matches.extend(per_shard)
        return sorted(matches)

    def select_uids_where(
        self,
        type_name: str,
        predicates: Sequence[Predicate],
        credential: AccessCredential,
        snapshot: Optional[FleetSnapshot] = None,
    ) -> List[str]:
        """Scatter-gather the planned multi-predicate query.

        Each shard plans *its own* execution — index cardinalities are
        per-shard statistics, so two shards may legitimately pick
        different driving indexes for the same predicates — and the
        merged result preserves the single-DBFS order.
        """
        def one(index: int, shard: DatabaseFS) -> List[str]:
            with self.telemetry.span(
                "shard.fanout", shard=index, op="select_uids_where"
            ):
                return shard.select_uids_where(
                    type_name, predicates, credential,
                    snapshot=self._sub(snapshot, index),
                )

        matches: List[str] = []
        for per_shard in self._fan([
            (lambda i=index, s=shard: one(i, s))
            for index, shard in self._healthy()
        ]):
            matches.extend(per_shard)
        return sorted(matches)

    def explain(
        self,
        type_name: str,
        predicates: Sequence[Predicate],
        credential: AccessCredential,
    ):
        """Per-shard plans for the query (shard index -> QueryPlan)."""
        return {
            index: shard.explain(type_name, predicates, credential)
            for index, shard in self._healthy()
        }

    # ------------------------------------------------------------------
    # Store (routed by the membrane's subject id)
    # ------------------------------------------------------------------

    def _store_shard_index(self, request: StoreRequest) -> int:
        """Placement for a store: hash the membrane's subject id.

        Anything malformed (no membrane, unparseable JSON, missing
        subject) routes to shard 0, whose own validation raises the
        same error a single DBFS would.
        """
        if not request.membrane_json:
            return 0
        try:
            subject_id = json.loads(request.membrane_json).get("subject_id")
        except (ValueError, AttributeError):
            return 0
        if not isinstance(subject_id, str) or not subject_id:
            return 0
        return self.shard_index_for_subject(subject_id)

    def store(self, request: StoreRequest, credential: AccessCredential) -> PDRef:
        index = self._store_shard_index(request)
        ref = self._shard_at(index).store(request, credential)
        with self._uid_lock:
            self._uid_shard[ref.uid] = index
        return ref

    def store_many(
        self, requests: Sequence[StoreRequest], credential: AccessCredential
    ) -> List[PDRef]:
        """Bulk store: one journal group commit per involved shard.

        Refs come back in request order, exactly as the single-DBFS
        ``store_many`` returns them.
        """
        self._primary()._require_ded(credential, "store_many")
        placements = [self._store_shard_index(r) for r in requests]
        refs: List[PDRef] = []
        with self._fleet_group(sorted(set(placements))):
            for request, index in zip(requests, placements):
                ref = self._shards[index].store(request, credential)
                with self._uid_lock:
                    self._uid_shard[ref.uid] = index
                refs.append(ref)
        for index in sorted(set(placements)):
            self._shards[index].stats.bulk_stores += 1
        return refs

    @contextmanager
    def _fleet_group(self, indexes: Sequence[int]) -> Iterator[None]:
        """One group commit spanning ``indexes``, atomically.

        Every participating shard gets its own journal batch, plus —
        when the group truly spans shards — a shared
        ``fleet-batch:<id>:<participants>`` marker record inside the
        batch transaction.  Commit ordering makes the marker usable
        for recovery: checkpoints are held until *every* shard's
        COMMIT record has landed, so a crash anywhere in the commit
        fan-out leaves at least one participant's marker visibly
        uncommitted, and ``remount_from_devices`` then rolls the
        committed halves back (two-phase presumed-abort).  A fully
        committed group may later have its markers checkpointed away
        on any subset of shards — by then no uncommitted marker
        exists anywhere, so recovery leaves it alone.
        """
        shards = [(index, self._shard_at(index)) for index in sorted(indexes)]
        with ExitStack() as stack:
            # Writer locks first, in ascending shard order: every
            # fleet group acquires the same way, so two concurrent
            # groups can contend but never deadlock, and single-shard
            # mutators (which take their shard's lock end to end)
            # cannot interleave into the group commit.
            for _, shard in shards:
                stack.enter_context(shard._write_lock)
            # Holds enter next so they release after the batches: the
            # unwind commits every shard's batch, *then* lets
            # checkpoints run.
            for _, shard in shards:
                stack.enter_context(shard.journal.hold_checkpoints())
            for _, shard in shards:
                stack.enter_context(shard.journal.batch())
            if len(shards) > 1:
                batch_id = uuid4().hex[:12]
                participants = ",".join(str(index) for index, _ in shards)
                for _, shard in shards:
                    shard.journal.log_delete(
                        f"fleet-batch:{batch_id}:{participants}"
                    )
            yield

    @contextmanager
    def batch(self) -> Iterator[None]:
        """Group-commit context spanning every shard's journal."""
        with self._fleet_group([index for index, _ in self._healthy()]):
            yield

    # ------------------------------------------------------------------
    # Membrane phase
    # ------------------------------------------------------------------

    def query_membranes(
        self,
        query: MembraneQuery,
        credential: AccessCredential,
        snapshot: Optional[FleetSnapshot] = None,
    ) -> List[Tuple[PDRef, Membrane]]:
        if query.subject_id:
            # Subject-scoped: only the owning shard can hold matches,
            # but the type must still fail loudly if undeclared.
            self.get_type(query.pd_type)
            index = self.shard_index_for_subject(query.subject_id)
            return self._shard_at(index).query_membranes(
                query, credential, snapshot=self._sub(snapshot, index)
            )
        if query.uids is not None:
            def one_group(index: int, uids: List[str]):
                sub_query = _dc_replace(query, uids=tuple(uids))
                with self.telemetry.span(
                    "shard.fanout", shard=index, op="query_membranes"
                ):
                    return self._shard_at(index).query_membranes(
                        sub_query, credential,
                        snapshot=self._sub(snapshot, index),
                    )

            results: List[Tuple[PDRef, Membrane]] = []
            for per_shard in self._fan([
                (lambda i=index, u=uids: one_group(i, u))
                for index, uids in self._uids_by_shard(query.uids).items()
            ]):
                results.extend(per_shard)
            results.sort(key=lambda pair: pair[0].uid)
            return results

        def one(index: int, shard: DatabaseFS):
            with self.telemetry.span(
                "shard.fanout", shard=index, op="query_membranes"
            ):
                return shard.query_membranes(
                    query, credential, snapshot=self._sub(snapshot, index)
                )

        results = []
        for per_shard in self._fan([
            (lambda i=index, s=shard: one(i, s))
            for index, shard in self._healthy()
        ]):
            results.extend(per_shard)
        results.sort(key=lambda pair: pair[0].uid)
        return results

    def get_membrane(
        self,
        uid: str,
        credential: AccessCredential,
        snapshot: Optional[FleetSnapshot] = None,
    ) -> Membrane:
        index = self._uid_shard.get(uid)
        shard = self._owning_shard(uid)
        sub = self._sub(snapshot, index if index is not None else 0)
        return shard.get_membrane(uid, credential, snapshot=sub)

    def put_membrane(
        self, uid: str, membrane: Membrane, credential: AccessCredential
    ) -> None:
        self._owning_shard(uid).put_membrane(uid, membrane, credential)

    def lineage_members(self, lineage: str) -> List[str]:
        # A lineage id is the uid of the group's first copy source, so
        # the whole group lives on that uid's shard (lineage affinity).
        index = self._uid_shard.get(lineage)
        if index is not None:
            return self._shard_at(index).lineage_members(lineage)
        members: List[str] = []
        for _, shard in self._healthy():
            members.extend(shard.lineage_members(lineage))
        return sorted(members)

    # ------------------------------------------------------------------
    # Data phase
    # ------------------------------------------------------------------

    def fetch_records(
        self,
        query: DataQuery,
        credential: AccessCredential,
        snapshot: Optional[FleetSnapshot] = None,
    ) -> Dict[str, Dict[str, object]]:
        self._primary()._require_ded(credential, "fetch_records")

        def one_group(index: int, uids: List[str]):
            sub_query = _dc_replace(query, uids=tuple(uids))
            with self.telemetry.span(
                "shard.fanout", shard=index, op="fetch_records"
            ):
                return self._shard_at(index).fetch_records(
                    sub_query, credential,
                    snapshot=self._sub(snapshot, index),
                )

        results: Dict[str, Dict[str, object]] = {}
        for per_shard in self._fan([
            (lambda i=index, u=uids: one_group(i, u))
            for index, uids in self._uids_by_shard(query.uids).items()
        ]):
            results.update(per_shard)
        return results

    def _load_record_raw(self, uid: str) -> Dict[str, object]:
        return self._owning_shard(uid)._load_record_raw(uid)

    def _uids_by_shard(self, uids: Sequence[str]) -> Dict[int, List[str]]:
        """Group uids by owning shard; unknown uids go to shard 0 so
        lookups fail with the single-DBFS error."""
        groups: Dict[int, List[str]] = {}
        for uid in uids:
            groups.setdefault(self._uid_shard.get(uid, 0), []).append(uid)
        return groups

    # ------------------------------------------------------------------
    # Update / delete
    # ------------------------------------------------------------------

    def update(self, request: UpdateRequest, credential: AccessCredential) -> None:
        self._owning_shard(request.uid).update(request, credential)

    def delete(
        self, request: DeleteRequest, credential: AccessCredential
    ) -> Membrane:
        return self._owning_shard(request.uid).delete(request, credential)

    def escrow_blob(self, uid: str) -> EscrowBlob:
        return self._owning_shard(uid).escrow_blob(uid)

    # ------------------------------------------------------------------
    # Subject-level operations (single-shard by construction)
    # ------------------------------------------------------------------

    def list_subjects(self) -> List[str]:
        subjects: List[str] = []
        for _, shard in self._healthy():
            subjects.extend(shard.list_subjects())
        return sorted(subjects)

    def uids_of_subject(self, subject_id: str) -> List[str]:
        return self.shard_for_subject(subject_id).uids_of_subject(subject_id)

    def export_subject(
        self,
        subject_id: str,
        credential: AccessCredential,
        snapshot: Optional[FleetSnapshot] = None,
    ) -> Dict[str, object]:
        index = self.shard_index_for_subject(subject_id)
        return self._shard_at(index).export_subject(
            subject_id, credential, snapshot=self._sub(snapshot, index)
        )

    # ------------------------------------------------------------------
    # Maintenance & forensics (scatter-gather)
    # ------------------------------------------------------------------

    def all_uids(self) -> List[str]:
        uids: List[str] = []
        for _, shard in self._healthy():
            uids.extend(shard.all_uids())
        return sorted(uids)

    def iter_membranes(
        self,
        credential: AccessCredential,
        snapshot: Optional[FleetSnapshot] = None,
    ) -> List[Tuple[str, Membrane]]:
        pairs: List[Tuple[str, Membrane]] = []
        for per_shard in self._fan([
            (lambda i=index, s=shard: s.iter_membranes(
                credential, snapshot=self._sub(snapshot, i)
            ))
            for index, shard in self._healthy()
        ]):
            pairs.extend(per_shard)
        pairs.sort(key=lambda pair: pair[0])
        return pairs

    def forensic_scan(self, needle: bytes) -> Dict[str, int]:
        def one(index: int, shard: DatabaseFS) -> Dict[str, int]:
            with self.telemetry.span(
                "shard.fanout", shard=index, op="forensic_scan"
            ):
                return shard.forensic_scan(needle)

        totals = {"device_blocks": 0, "journal_records": 0}
        for counts in self._fan([
            (lambda i=index, s=shard: one(i, s))
            for index, shard in self._healthy()
        ]):
            totals["device_blocks"] += counts["device_blocks"]
            totals["journal_records"] += counts["journal_records"]
        return totals

    def record_inode(self, uid: str):
        return self._owning_shard(uid).record_inode(uid)

    def record_size(self, uid: str) -> int:
        return self._owning_shard(uid).record_size(uid)

    def residue_counts(
        self,
        needles: Sequence[bytes],
        subject_id: Optional[str] = None,
    ) -> Dict[str, int]:
        """Residue scan, scoped to the owning shard when the erased
        subject is known — the subject's plaintext never touched any
        other shard's device or journal, so scanning them would only
        cost time.  Without a subject the scan covers every shard.
        """
        if subject_id is not None:
            return self.shard_for_subject(subject_id).residue_counts(
                needles, subject_id=subject_id
            )
        totals = {"device_blocks": 0, "journal_records": 0}
        for _, shard in self._healthy():
            counts = shard.residue_counts(needles)
            totals["device_blocks"] += counts["device_blocks"]
            totals["journal_records"] += counts["journal_records"]
        return totals

    def residue_sample(
        self,
        needles: Sequence[bytes],
        start_block: int,
        block_count: int,
    ) -> Dict[str, int]:
        """One incremental residue window, applied to every healthy
        shard in parallel position: the scrubber's single cursor walks
        the same block window on all devices, so one full sweep of the
        largest device covers the whole fleet."""
        totals = {"scanned_blocks": 0, "device_blocks": 0}
        for result in self._fan([
            (lambda s=shard: s.residue_sample(
                needles, start_block, block_count
            ))
            for _, shard in self._healthy()
        ]):
            totals["scanned_blocks"] += result["scanned_blocks"]
            totals["device_blocks"] += result["device_blocks"]
        return totals

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    @property
    def stats(self) -> DBFSStats:
        """Aggregated operation counters (sum over shards)."""
        total = DBFSStats()
        for _, shard in self._healthy():
            for name in vars(total):
                setattr(
                    total, name, getattr(total, name) + getattr(shard.stats, name)
                )
        return total

    def cache_stats(self) -> Dict[str, object]:
        """Per-shard cache/journal report, plus the shard count."""
        return {
            "shards": len(self._shards),
            "degraded": sorted(self._degraded),
            "per_shard": [
                shard.cache_stats() if shard is not None else None
                for shard in self._shards
            ],
        }

    def shard_stats(self) -> List[Dict[str, object]]:
        """One occupancy/journal summary per shard."""
        stats: List[Dict[str, object]] = []
        for index, shard in enumerate(self._shards):
            if index in self._degraded:
                stats.append({
                    "shard": index,
                    "degraded": True,
                    "reason": self._degraded[index],
                })
                continue
            entry = shard.shard_stats()[0]
            entry["shard"] = index
            stats.append(entry)
        return stats

    # ------------------------------------------------------------------
    # Crash recovery
    # ------------------------------------------------------------------

    def remount(self) -> Dict[str, int]:
        """Remount every shard and rebuild the uid→shard map.

        Schema counts are reported once (the schema trees are
        replicas); record-level counts are summed across shards.
        """
        per_shard = [shard.remount() for _, shard in self._healthy()]
        self._uid_shard.clear()
        for index, shard in self._healthy():
            for uid in shard.all_uids():
                self._uid_shard[uid] = index
        return {
            "types": per_shard[0]["types"],
            "records": sum(r["records"] for r in per_shard),
            "lineage_groups": sum(r["lineage_groups"] for r in per_shard),
            "escrow_blobs": sum(r["escrow_blobs"] for r in per_shard),
            "field_indexes": per_shard[0]["field_indexes"],
        }
