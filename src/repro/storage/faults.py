"""Deterministic fault injection for the simulated block device.

The crash-consistency story of § 1 ("a DB-engine delete can leave PD
behind in lower layers") only holds if it survives the failure modes a
real device actually has.  This module injects four of them, all
seeded and replayable:

* **power loss** — the device dies *during* the Nth write attempt: the
  write-through page cache has already accepted the payload (the
  volatile copy is ahead of the medium, exactly the state a dirty
  cache leaves behind), the medium receives at most a torn prefix, and
  every IO after that raises :class:`~repro.errors.PowerLossError`
  until :meth:`FaultInjector.power_on`;
* **torn writes** — the interrupted write lands partially: a
  seed-determined prefix of the payload reaches the medium, which is
  what makes the journal's torn-tail truncation observable;
* **transient IO errors** — every Nth attempt raises
  :class:`~repro.errors.TransientIOError` *once*; an immediate retry
  of the same operation succeeds.  This is the fault the NVMe driver's
  bounded-retry path absorbs;
* **read bit flips** — every Nth read returns a copy with one
  seed-determined bit flipped.  Only the returned copy is corrupted —
  medium and cache keep the true bytes — modelling a transient bus /
  DMA error rather than medium rot.  The journal's per-record CRC is
  what turns this into a detected (skipped) record instead of silent
  corruption.

One :class:`FaultInjector` can be shared by several
:class:`FaultyBlockDevice` instances: the write/read indexes are then
global across the fleet and the power rail is single — cutting power
at write #N kills *all* shards at the same instant, which is how the
crash harness exercises multi-shard recovery.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Optional

from .. import errors
from .block import BlockDevice


@dataclass(frozen=True)
class FaultPlan:
    """Seeded, declarative description of the faults to inject.

    All indexes are 1-based counts of *attempts* (a retried write gets
    a fresh index).  ``None`` / ``0`` disables a fault class.
    """

    seed: int = 0
    #: Cut power during write attempt ``N+1`` — the first N writes
    #: reach the medium intact, the next one is lost or torn.
    power_cut_after_writes: Optional[int] = None
    #: When the power cut interrupts a write, let a seed-determined
    #: prefix of the payload reach the medium (a torn write).  With
    #: False the interrupted write is lost entirely.
    torn_tail: bool = True
    #: Raise :class:`TransientIOError` on every Nth write attempt.
    transient_write_every: Optional[int] = None
    #: Raise :class:`TransientIOError` on every Nth read attempt.
    transient_read_every: Optional[int] = None
    #: Flip one bit in the returned copy of every Nth read.
    bit_flip_read_every: Optional[int] = None


@dataclass
class FaultStats:
    """What the injector actually did (for assertions and reports)."""

    power_cuts: int = 0
    torn_writes: int = 0
    lost_writes: int = 0
    transient_write_errors: int = 0
    transient_read_errors: int = 0
    bit_flips: int = 0
    blocked_while_off: int = 0


class FaultInjector:
    """Shared fault state: attempt counters and the power rail.

    Deterministic by construction — same plan, same operation
    sequence, same faults.  No randomness at injection time; torn
    lengths and flipped bits derive from ``crc32(seed:index)``.
    """

    def __init__(self, plan: Optional[FaultPlan] = None) -> None:
        self.plan = plan if plan is not None else FaultPlan()
        self.write_index = 0
        self.read_index = 0
        self.powered = True
        self._cut_fired = False
        self.stats = FaultStats()

    # -- power rail ---------------------------------------------------------

    def power_on(self) -> None:
        """Restore power after a cut (the 'reboot' half of a crash)."""
        self.powered = True

    def check_power(self, op: str) -> None:
        if not self.powered:
            self.stats.blocked_while_off += 1
            raise errors.PowerLossError(
                f"device is powered off ({op} attempted after a power cut)"
            )

    # -- per-attempt decisions ----------------------------------------------

    def next_write(self) -> int:
        self.write_index += 1
        return self.write_index

    def next_read(self) -> int:
        self.read_index += 1
        return self.read_index

    def _every(self, every: Optional[int], index: int) -> bool:
        return bool(every) and index % every == 0

    def transient_write(self, index: int) -> bool:
        if self._every(self.plan.transient_write_every, index):
            self.stats.transient_write_errors += 1
            return True
        return False

    def transient_read(self, index: int) -> bool:
        if self._every(self.plan.transient_read_every, index):
            self.stats.transient_read_errors += 1
            return True
        return False

    def bit_flip_read(self, index: int) -> bool:
        return self._every(self.plan.bit_flip_read_every, index)

    def cut_now(self, index: int) -> bool:
        cut = self.plan.power_cut_after_writes
        if cut is None or self._cut_fired or index <= cut:
            return False
        self._cut_fired = True
        self.powered = False
        self.stats.power_cuts += 1
        return True

    def entropy(self, index: int) -> int:
        """Deterministic per-index noise for torn lengths / bit picks."""
        return zlib.crc32(f"{self.plan.seed}:{index}".encode("ascii"))


class FaultyBlockDevice(BlockDevice):
    """A :class:`BlockDevice` whose IO path runs through a :class:`FaultInjector`.

    Drop-in for the plain device — DBFS, the journal and the inode
    table never know.  Pass ``injector`` to share one rail across a
    sharded fleet, or ``plan`` for a private injector.
    """

    def __init__(
        self,
        *args: object,
        plan: Optional[FaultPlan] = None,
        injector: Optional[FaultInjector] = None,
        **kwargs: object,
    ) -> None:
        super().__init__(*args, **kwargs)  # type: ignore[arg-type]
        self.injector = injector if injector is not None else FaultInjector(plan)

    # -- faulty IO ----------------------------------------------------------

    def write(self, block_no: int, data: bytes) -> None:
        inj = self.injector
        inj.check_power("write")
        self._check_range(block_no)
        if len(data) > self.block_size:
            raise errors.BlockDeviceError(
                f"payload of {len(data)} bytes exceeds block size {self.block_size}"
            )
        index = inj.next_write()
        if inj.transient_write(index):
            raise errors.TransientIOError(
                f"transient fault on write #{index} (block {block_no})"
            )
        if inj.cut_now(index):
            # The volatile cache accepted the write before the medium
            # did — after the cut it is *ahead* of durable state, which
            # is why remount must drop it.
            self._cache_insert(block_no, bytes(data))
            if self.plan.torn_tail and len(data) > 1:
                keep = 1 + inj.entropy(index) % (len(data) - 1)
                self._blocks[block_no] = bytes(data[:keep])
                inj.stats.torn_writes += 1
            else:
                inj.stats.lost_writes += 1
            raise errors.PowerLossError(
                f"power lost during write #{index} (block {block_no})"
            )
        super().write(block_no, data)

    def scrub(self, block_no: int) -> None:
        inj = self.injector
        inj.check_power("scrub")
        self._check_range(block_no)
        index = inj.next_write()
        if inj.transient_write(index):
            raise errors.TransientIOError(
                f"transient fault on scrub #{index} (block {block_no})"
            )
        if inj.cut_now(index):
            # The scrub never reached the medium; the cache entry is
            # gone either way (the OS dropped it before issuing the
            # command).  Recovery must re-issue the scrub.
            self._cache_invalidate(block_no)
            inj.stats.lost_writes += 1
            raise errors.PowerLossError(
                f"power lost during scrub #{index} (block {block_no})"
            )
        super().scrub(block_no)

    def read(self, block_no: int) -> bytes:
        inj = self.injector
        inj.check_power("read")
        index = inj.next_read()
        if inj.transient_read(index):
            raise errors.TransientIOError(
                f"transient fault on read #{index} (block {block_no})"
            )
        data = super().read(block_no)
        if data and inj.bit_flip_read(index):
            bit = inj.entropy(index) % (len(data) * 8)
            corrupt = bytearray(data)
            corrupt[bit // 8] ^= 1 << (bit % 8)
            inj.stats.bit_flips += 1
            return bytes(corrupt)
        return data

    # -- convenience --------------------------------------------------------

    @property
    def plan(self) -> FaultPlan:
        return self.injector.plan

    def power_on(self) -> None:
        self.injector.power_on()

    def __repr__(self) -> str:
        state = "on" if self.injector.powered else "OFF"
        return (
            f"FaultyBlockDevice({self.used_blocks}/{self.block_count} blocks, "
            f"power {state}, {self.injector.write_index} writes seen)"
        )
