"""Record codecs for DBFS rows (paper § 3(1): format-descriptor inodes).

Two wire encodings coexist, negotiated through the per-type format
descriptor inode:

* **v1** — ``json+base64-bytes``: the row is a JSON object; ``bytes``
  values are wrapped as ``{"__bytes__": "<base64>"}``.  Every read pays
  a full ``json.loads`` of the row.

* **v2** — ``binary-v2``: a schema-aware binary layout.  The format
  descriptor carries an append-only ``field_order`` list; each row
  stores a per-row field-offset table followed by tagged values, so a
  reader can decode *only* the fields a predicate or projection
  touches (partial decode) and ``bytes`` are stored raw, not base64.

v2 row layout (all integers little-endian)::

    [0]      magic      0xB2   (JSON text can never start with 0xB2)
    [1]      version    0x02
    [2:4]    u16 N      number of offset-table slots
    [4:4+4N] u32 * N    value offsets relative to the values section;
                        0xFFFFFFFF marks an absent field
    [...]    values     each value = 1 tag byte + payload

Value tags::

    0x00 NONE    (no payload)
    0x01 INT     8-byte signed little-endian (<q)
    0x02 FLOAT   8-byte IEEE-754 double (<d)
    0x03 BOOL    1 byte (0 or 1)
    0x04 STR     u32 length + UTF-8 bytes
    0x05 BYTES   u32 length + raw bytes
    0x06 JSON    u32 length + UTF-8 JSON (fallback: out-of-range ints,
                 nested containers; nested bytes use the v1 wrapping)

Schema evolution is append-only (``evolve_type``), so ``field_order``
only ever grows at the tail: rows written before an evolution simply
have a shorter offset table and decode fine against the longer order.
Decoding auto-detects the encoding per row from the magic byte, which
keeps mixed-encoding tables (pre-/post-upgrade rows) and crash
recovery robust without trusting anything but the row bytes and the
descriptor's field order.
"""
from __future__ import annotations

import base64
import json
import struct
from typing import Dict, Iterable, List, Optional, Sequence

from ..errors import DBFSError

# Encoding names as written into format-descriptor inodes.
ENCODING_V1 = "json+base64-bytes"
ENCODING_V2 = "binary-v2"

MAGIC_V2 = 0xB2
VERSION_V2 = 0x02

_ABSENT = 0xFFFFFFFF

_TAG_NONE = 0x00
_TAG_INT = 0x01
_TAG_FLOAT = 0x02
_TAG_BOOL = 0x03
_TAG_STR = 0x04
_TAG_BYTES = 0x05
_TAG_JSON = 0x06

_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1

_HEADER = struct.Struct("<BBH")
_U32 = struct.Struct("<I")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")


# --------------------------------------------------------------------------
# v1: JSON with base64-wrapped bytes
# --------------------------------------------------------------------------

def _json_default(obj: object) -> object:
    if isinstance(obj, bytes):
        return {"__bytes__": base64.b64encode(obj).decode("ascii")}
    raise TypeError(f"unserializable value of type {type(obj).__name__}")


def _json_object_hook(obj: Dict[str, object]) -> object:
    if set(obj) == {"__bytes__"}:
        return base64.b64decode(obj["__bytes__"])
    return obj


def encode_record_v1(record: Dict[str, object]) -> bytes:
    """Serialize a record dict with the v1 JSON encoding."""
    return json.dumps(record, sort_keys=True, default=_json_default).encode()


def decode_record_v1(raw: bytes) -> Dict[str, object]:
    """Deserialize a v1 JSON payload (empty payload = empty record).

    Accepts any bytes-like object (``memoryview`` from the zero-copy
    read path included), hence ``str(raw, ...)`` over ``raw.decode()``.
    """
    if not raw:
        return {}
    return json.loads(str(raw, "utf-8"), object_hook=_json_object_hook)


def is_v2_payload(raw: bytes) -> bool:
    """True when *raw* carries the v2 magic header."""
    return len(raw) >= 2 and raw[0] == MAGIC_V2 and raw[1] == VERSION_V2


# --------------------------------------------------------------------------
# v2: schema-aware binary rows with a per-row field-offset table
# --------------------------------------------------------------------------

class RecordCodec:
    """Compiled v2 codec for one PD type's ``field_order``.

    One instance is cached per live format descriptor; it pre-computes
    the name→ordinal map and offset-table unpackers so the per-row work
    is a couple of ``struct`` calls.
    """

    __slots__ = ("field_order", "ordinal", "_offsets_fmt")

    def __init__(self, field_order: Sequence[str]):
        self.field_order: List[str] = list(field_order)
        self.ordinal: Dict[str, int] = {
            name: i for i, name in enumerate(self.field_order)
        }
        if len(self.ordinal) != len(self.field_order):
            raise DBFSError("format descriptor field_order has duplicates")
        self._offsets_fmt: Dict[int, struct.Struct] = {}

    def _offsets(self, count: int) -> struct.Struct:
        unpacker = self._offsets_fmt.get(count)
        if unpacker is None:
            unpacker = struct.Struct(f"<{count}I")
            self._offsets_fmt[count] = unpacker
        return unpacker

    # -- encode ----------------------------------------------------------

    def encode(self, record: Dict[str, object]) -> bytes:
        order = self.field_order
        ordinal = self.ordinal
        for name in record:
            if name not in ordinal:
                raise DBFSError(
                    f"field {name!r} not in format descriptor field order"
                )
        offsets = [_ABSENT] * len(order)
        values = bytearray()
        for name, value in record.items():
            offsets[ordinal[name]] = len(values)
            _encode_value(values, value)
        out = bytearray(_HEADER.pack(MAGIC_V2, VERSION_V2, len(order)))
        out += self._offsets(len(order)).pack(*offsets)
        out += values
        return bytes(out)

    # -- decode ----------------------------------------------------------

    def decode(self, raw: bytes) -> Dict[str, object]:
        """Fully decode a v2 row (or fall back to v1 JSON per-row)."""
        if not raw:
            return {}
        if not is_v2_payload(raw):
            return decode_record_v1(raw)
        count, offsets, base = self._parse_header(raw)
        order = self.field_order
        record: Dict[str, object] = {}
        for i in range(count):
            off = offsets[i]
            if off != _ABSENT:
                record[order[i]] = _decode_value(raw, base + off)
        return record

    def decode_fields(
        self, raw: bytes, fields: Iterable[str]
    ) -> Dict[str, object]:
        """Decode only *fields*, using the offset table to skip the rest.

        v1 rows (no magic byte) fall back to a full JSON decode followed
        by projection — correct, just not cheaper.
        """
        if not raw:
            return {}
        if not is_v2_payload(raw):
            full = decode_record_v1(raw)
            return {k: v for k, v in full.items() if k in set(fields)}
        count, offsets, base = self._parse_header(raw)
        ordinal = self.ordinal
        record: Dict[str, object] = {}
        for name in fields:
            i = ordinal.get(name)
            if i is None or i >= count:
                continue
            off = offsets[i]
            if off != _ABSENT:
                record[name] = _decode_value(raw, base + off)
        return record

    def _parse_header(self, raw: bytes):
        try:
            _, _, count = _HEADER.unpack_from(raw, 0)
        except struct.error as exc:
            raise DBFSError(f"truncated v2 row header: {exc}") from exc
        if count > len(self.field_order):
            raise DBFSError(
                f"v2 row has {count} field slots but the format descriptor "
                f"knows only {len(self.field_order)} fields"
            )
        base = _HEADER.size + 4 * count
        if len(raw) < base:
            raise DBFSError("truncated v2 row offset table")
        offsets = self._offsets(count).unpack_from(raw, _HEADER.size)
        return count, offsets, base


def _encode_value(out: bytearray, value: object) -> None:
    if value is None:
        out.append(_TAG_NONE)
    elif value is True or value is False:
        out.append(_TAG_BOOL)
        out.append(1 if value else 0)
    elif isinstance(value, int) and _INT64_MIN <= value <= _INT64_MAX:
        out.append(_TAG_INT)
        out += _I64.pack(value)
    elif isinstance(value, float):
        out.append(_TAG_FLOAT)
        out += _F64.pack(value)
    elif isinstance(value, str):
        encoded = value.encode("utf-8")
        out.append(_TAG_STR)
        out += _U32.pack(len(encoded))
        out += encoded
    elif isinstance(value, bytes):
        out.append(_TAG_BYTES)
        out += _U32.pack(len(value))
        out += value
    else:
        # Fallback covers out-of-range ints and nested containers; the
        # JSON leg reuses the v1 bytes wrapping for nested bytes.
        encoded = json.dumps(
            value, sort_keys=True, default=_json_default
        ).encode()
        out.append(_TAG_JSON)
        out += _U32.pack(len(encoded))
        out += encoded


def _decode_value(raw: bytes, pos: int) -> object:
    try:
        tag = raw[pos]
    except IndexError as exc:
        raise DBFSError("v2 value offset past end of row") from exc
    try:
        if tag == _TAG_NONE:
            return None
        if tag == _TAG_INT:
            return _I64.unpack_from(raw, pos + 1)[0]
        if tag == _TAG_FLOAT:
            return _F64.unpack_from(raw, pos + 1)[0]
        if tag == _TAG_BOOL:
            return raw[pos + 1] != 0
        if tag == _TAG_STR:
            (length,) = _U32.unpack_from(raw, pos + 1)
            start = pos + 5
            # str(buffer, encoding) decodes any bytes-like object, so
            # memoryview rows from the zero-copy path need no copy here.
            return str(raw[start:start + length], "utf-8")
        if tag == _TAG_BYTES:
            (length,) = _U32.unpack_from(raw, pos + 1)
            start = pos + 5
            return bytes(raw[start:start + length])
        if tag == _TAG_JSON:
            (length,) = _U32.unpack_from(raw, pos + 1)
            start = pos + 5
            return json.loads(
                str(raw[start:start + length], "utf-8"),
                object_hook=_json_object_hook,
            )
    except (struct.error, IndexError, UnicodeDecodeError) as exc:
        raise DBFSError(f"corrupt v2 value at offset {pos}: {exc}") from exc
    raise DBFSError(f"unknown v2 value tag 0x{tag:02x} at offset {pos}")


def codec_for_format(format_spec: Dict[str, object]) -> Optional[RecordCodec]:
    """Compile a :class:`RecordCodec` for a v2 format spec (None for v1)."""
    if format_spec.get("encoding") != ENCODING_V2:
        return None
    field_order = format_spec.get("field_order")
    if not field_order:
        raise DBFSError(
            "binary-v2 format descriptor is missing its field_order"
        )
    return RecordCodec(field_order)


def decode_any(raw: bytes, codec: Optional[RecordCodec]) -> Dict[str, object]:
    """Decode a row of either encoding, auto-detected per row."""
    if raw and is_v2_payload(raw):
        if codec is None:
            raise DBFSError(
                "found a binary-v2 row but the format descriptor "
                "declares no field order"
            )
        return codec.decode(raw)
    return decode_record_v1(raw)
