"""ext4-like file-based filesystem.

This is the "second filesystem" of rgpdOS (§ 2: non-personal data
"can be implemented with a traditional filesystem (e.g., ext4) which
works at the file granularity") **and** the substrate under the Fig. 2
baseline, where a userspace DB engine persists its tables as ordinary
files on a general-purpose OS.

The paper's indictment of this design is reproduced faithfully:

* files are opaque byte streams — the FS has no notion of PD, types,
  membranes or subjects;
* every data write is journaled with its payload (``data=journal``
  mode), so unlinking a file leaves its bytes in the journal;
* unlink frees blocks without scrubbing, so the bytes also linger on
  the device until reallocation overwrites them.

Both residues are observable through :meth:`FileBasedFS.forensic_scan`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from .. import errors
from .block import BlockDevice
from .inode import KIND_DIRECTORY, KIND_FILE, Inode, InodeTable, resolve_path
from .journal import Journal


@dataclass(frozen=True)
class DirEntry:
    """One directory listing entry."""

    name: str
    kind: str
    size: int
    inode: int


def _split_path(path: str) -> List[str]:
    parts = [part for part in path.split("/") if part]
    if not parts:
        raise errors.FileSystemError(f"invalid path {path!r}")
    return parts


class FileBasedFS:
    """A traditional journaled filesystem working at file granularity.

    The public surface mirrors the handful of POSIX calls the baseline
    DB engine needs: ``mkdir``, ``create``, ``write``, ``read``,
    ``unlink``, ``rename``, ``listdir``, ``stat``.
    """

    def __init__(
        self,
        device: Optional[BlockDevice] = None,
        journal_blocks: int = 1024,
        journaled: bool = True,
    ) -> None:
        self.device = device or BlockDevice()
        self.inodes = InodeTable(self.device)
        self._root = self.inodes.allocate(KIND_DIRECTORY)
        self.journaled = journaled
        self.journal: Optional[Journal] = (
            Journal(self.device, reserved_blocks=journal_blocks) if journaled else None
        )

    @property
    def root(self) -> Inode:
        return self._root

    # -- namespace ops ------------------------------------------------------

    def mkdir(self, path: str) -> None:
        """Create a directory; parents must already exist."""
        parts = _split_path(path)
        parent = self._resolve_dir("/".join(parts[:-1])) if parts[:-1] else self._root
        if parts[-1] in parent.children:
            raise errors.FileSystemError(f"{path!r} already exists")
        directory = self.inodes.allocate(KIND_DIRECTORY)
        self.inodes.link_child(parent.number, parts[-1], directory.number)

    def create(self, path: str, data: bytes = b"") -> None:
        """Create a file, journaling its initial contents."""
        parts = _split_path(path)
        parent = self._resolve_dir("/".join(parts[:-1])) if parts[:-1] else self._root
        if parts[-1] in parent.children:
            raise errors.FileSystemError(f"{path!r} already exists")
        inode = self.inodes.allocate(KIND_FILE)
        self.inodes.link_child(parent.number, parts[-1], inode.number)
        self._journaled_write(path, inode, data)

    def write(self, path: str, data: bytes) -> None:
        """Replace a file's contents (whole-file write, like O_TRUNC)."""
        inode = self._resolve_file(path)
        self._journaled_write(path, inode, data)

    def append(self, path: str, data: bytes) -> None:
        inode = self._resolve_file(path)
        current = self.inodes.read_payload(inode.number)
        self._journaled_write(path, inode, current + data)

    def read(self, path: str) -> bytes:
        inode = self._resolve_file(path)
        return self.inodes.read_payload(inode.number)

    def unlink(self, path: str) -> None:
        """Delete a file.

        Faithful to real filesystems: the journal keeps the payload
        records, and the freed blocks are not scrubbed.
        """
        parts = _split_path(path)
        parent = self._resolve_dir("/".join(parts[:-1])) if parts[:-1] else self._root
        inode = self._resolve_file(path)
        if self.journal is not None:
            self.journal.begin()
            self.journal.log_delete(path)
            self.journal.commit()
        self.inodes.unlink_child(parent.number, parts[-1])
        self.inodes.free(inode.number, scrub=False)

    def rename(self, old_path: str, new_path: str) -> None:
        old_parts = _split_path(old_path)
        new_parts = _split_path(new_path)
        old_parent = (
            self._resolve_dir("/".join(old_parts[:-1])) if old_parts[:-1] else self._root
        )
        new_parent = (
            self._resolve_dir("/".join(new_parts[:-1])) if new_parts[:-1] else self._root
        )
        if new_parts[-1] in new_parent.children:
            raise errors.FileSystemError(f"{new_path!r} already exists")
        child_no = self.inodes.unlink_child(old_parent.number, old_parts[-1])
        self.inodes.link_child(new_parent.number, new_parts[-1], child_no)

    def listdir(self, path: str = "/") -> List[DirEntry]:
        directory = self._resolve_dir(path) if path.strip("/") else self._root
        entries = []
        for name, child_no in sorted(directory.children.items()):
            child = self.inodes.get(child_no)
            entries.append(
                DirEntry(name=name, kind=child.kind, size=child.size, inode=child.number)
            )
        return entries

    def exists(self, path: str) -> bool:
        return resolve_path(self.inodes, self._root.number, path) is not None

    def stat(self, path: str) -> DirEntry:
        inode = resolve_path(self.inodes, self._root.number, path)
        if inode is None:
            raise errors.FileNotFoundInFSError(f"no such path: {path!r}")
        name = _split_path(path)[-1]
        return DirEntry(name=name, kind=inode.kind, size=inode.size, inode=inode.number)

    # -- forensics ----------------------------------------------------------

    def forensic_scan(self, needle: bytes) -> Dict[str, int]:
        """Count residues of ``needle`` across the storage stack.

        Returns a dict with keys ``device_blocks`` (blocks anywhere on
        the device still containing the needle) and ``journal_records``
        (journal entries whose payload contains it).  A filesystem that
        truly forgot would report zero for both.
        """
        result = {
            "device_blocks": len(self.device.scan(needle)),
            "journal_records": 0,
        }
        if self.journal is not None:
            result["journal_records"] = len(self.journal.scan_payloads(needle))
        return result

    # -- internals ----------------------------------------------------------

    def _journaled_write(self, path: str, inode: Inode, data: bytes) -> None:
        if self.journal is not None:
            self.journal.begin()
            self.journal.log_write(path, data)
            self.journal.commit()
        self.inodes.write_payload(inode.number, data)

    def _resolve_dir(self, path: str) -> Inode:
        if not path.strip("/"):
            return self._root
        inode = resolve_path(self.inodes, self._root.number, path)
        if inode is None:
            raise errors.FileNotFoundInFSError(f"no such directory: {path!r}")
        if inode.kind != KIND_DIRECTORY:
            raise errors.FileSystemError(f"{path!r} is not a directory")
        return inode

    def _resolve_file(self, path: str) -> Inode:
        inode = resolve_path(self.inodes, self._root.number, path)
        if inode is None:
            raise errors.FileNotFoundInFSError(f"no such file: {path!r}")
        if inode.kind != KIND_FILE:
            raise errors.FileSystemError(f"{path!r} is not a regular file")
        return inode
