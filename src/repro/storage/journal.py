"""Write-ahead journal.

Section 1 of the paper motivates rgpdOS with exactly this component:

    "the filesystem's logging mechanism can compromise the GDPR's
    right to be forgotten as data deleted by the DB engine can still
    be present in the filesystem's logs."

The ext4-like baseline filesystem journals every data write here, in
data-journaling mode (like ``ext4 data=journal``): the journal records
carry the *payload bytes*.  Deleting a file later does not rewrite
history — the payload remains replayable from the journal until the
log wraps.  The ILL-F experiment scans this journal after a delete to
demonstrate the violation, and shows that DBFS (which journals only
encrypted/erased state and scrubs on erasure) does not exhibit it.

The journal is itself stored on the block device, in a reserved extent,
so "the bytes are on disk" is literally true in the simulation.

**On-device format** (version 2, crash-recoverable).  Slot 0 of the
reserved extent holds a small binary *superblock*: the slot of the
oldest live record (the log head), the sequence number that record
must carry, and a next-sequence hint for recovering an empty log.
Slots 1..n-1 are a circular record area.  Each record is framed with a
4-byte magic, a compact JSON header (sequence, txn, type, and — when
non-trivial — target, payload length, payload CRC32) and the payload,
chunked across consecutive slots.  Recovery (:meth:`Journal.recover`)
needs *no in-memory state*: it starts at the superblock's head and
walks the sequence chain, validating magic, header, length and CRC of
every record.  A torn tail (a crash between the chunk writes of
:meth:`Journal._append`) truncates the log at the torn record —
counted in :class:`JournalStats`, never raised — and a checkpoint
marker found mid-log rolls the interrupted checkpoint forward.
:meth:`Journal.remount` rebuilds a journal over a surviving device
from the extent alone.

Durability ordering rules (each leaves the log scannable if the
machine dies between any two writes):

* reclaim: superblock head moves past the reclaimed records *before*
  their blocks are scrubbed, before the new record's chunks land;
* checkpoint: the CHECKPOINT marker and superblock are written first,
  the old log blocks scrubbed after (a crash in between leaves a
  marker-led log, not a marker-less scrubbed extent).

**Group commit** (the write-side fast path): :meth:`Journal.batch`
opens one transaction that absorbs every ``begin``/``commit`` pair
issued inside it, coalescing N op-metadata appends into a single
committed group with a single flush.  N independent ops cost
``3N`` records (BEGIN + op + COMMIT each) and N flushes; a batched
group costs ``N + 2`` records and one flush.  DBFS exposes this
through :meth:`repro.storage.dbfs.DatabaseFS.store_many`, which the
GDPRBench load phase uses.  A batch is all-or-nothing: if the body
raises, no COMMIT record is written and recovery treats the whole
group as never having happened.

**Auto-checkpoint** (:class:`JournalConfig`): without a checkpoint
policy the log only sheds records when the reserved extent wraps, so
``blocks_in_use`` grows to the cap and recovery replays the full
history every remount.  A threshold on live records or blocks flushes
and truncates the log after the enclosing commit, bounding both the
replay cost of :meth:`Journal.recover` and the window during which
op metadata (uids, never payloads) of erased PD lingers in the log.
Callers whose write-ahead protocol commits *before* applying (DBFS
erasure) wrap the commit+apply span in :meth:`hold_checkpoints` so
the intent record cannot be truncated away mid-apply.
"""

from __future__ import annotations

import json
import struct
import zlib
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

from .. import errors
from ..obs import NULL_TELEMETRY, Telemetry
from .block import BlockDevice

# Transaction record types.
TXN_BEGIN = "begin"
TXN_WRITE = "write"      # payload-carrying data write
TXN_DELETE = "delete"    # metadata-only deletion marker
TXN_COMMIT = "commit"
TXN_CHECKPOINT = "checkpoint"

_VALID_TYPES = frozenset({TXN_BEGIN, TXN_WRITE, TXN_DELETE, TXN_COMMIT, TXN_CHECKPOINT})

# On-device framing: every record's first chunk opens with this magic
# so the recovery scan can tell a record head from scrubbed space or a
# stale payload chunk.
_RECORD_MAGIC = b"JRN2"
# Superblock: magic, version, head slot, sequence the head record
# must carry, next-sequence hint for empty-log recovery, and a
# generation counter.  Two copies live on the extent — slot 0 and the
# last slot — because the superblock is an in-place overwrite and a
# power cut can tear it: the update protocol writes the backup copy
# completely before touching the primary, so at every instant at
# least one copy parses, and recovery takes the newest valid one
# (generation compared with serial arithmetic so the 16-bit counter
# may wrap).
_SB_FORMAT = "<2sBHIIH"
_SB_MAGIC = b"JS"
_SB_VERSION = 3


@dataclass(frozen=True)
class JournalRecord:
    """One journal entry.

    ``payload`` is the raw data for TXN_WRITE records — this is the
    field that retains "deleted" PD.  ``target`` names the object the
    record concerns (a path or an inode number rendered as a string).
    """

    sequence: int
    txn_id: int
    record_type: str
    target: str = ""
    payload: bytes = b""

    def to_bytes(self) -> bytes:
        # Compact header: trivial fields (empty target, empty payload)
        # are omitted so BEGIN/COMMIT records stay small even on
        # tiny-block devices.  The CRC lets recovery reject payloads
        # whose continuation chunks were lost or bit-flipped.
        fields = {"seq": self.sequence, "txn": self.txn_id, "type": self.record_type}
        if self.target:
            fields["target"] = self.target
        if self.payload:
            fields["len"] = len(self.payload)
            fields["crc"] = zlib.crc32(self.payload) & 0xFFFFFFFF
        header = json.dumps(fields, separators=(",", ":")).encode()
        return header + b"\n" + self.payload

    @classmethod
    def from_bytes(cls, raw: bytes) -> "JournalRecord":
        try:
            header_raw, payload = raw.split(b"\n", 1)
            header = json.loads(header_raw)
        except (ValueError, json.JSONDecodeError) as exc:
            raise errors.JournalError(f"corrupt journal record: {exc}") from exc
        if not isinstance(header, dict):
            raise errors.JournalError(f"corrupt journal header: {header!r}")
        if header.get("type") not in _VALID_TYPES:
            raise errors.JournalError(f"unknown record type {header.get('type')!r}")
        declared = header.get("len", 0)
        if declared != len(payload):
            raise errors.JournalError(
                f"journal payload length mismatch: header says {declared}, "
                f"got {len(payload)}"
            )
        crc = header.get("crc")
        if crc is not None and (zlib.crc32(payload) & 0xFFFFFFFF) != crc:
            raise errors.JournalError(
                f"journal payload CRC mismatch for seq {header.get('seq')}"
            )
        try:
            return cls(
                sequence=int(header["seq"]),
                txn_id=int(header["txn"]),
                record_type=header["type"],
                target=header.get("target", ""),
                payload=payload,
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise errors.JournalError(f"corrupt journal header: {exc}") from exc


@dataclass
class _OpenTransaction:
    txn_id: int
    records: List[JournalRecord] = field(default_factory=list)


@dataclass
class _ScanResult:
    """What a from-device extent scan found."""

    records: List[JournalRecord]
    record_blocks: List[List[int]]
    cursor: int            # slot just past the last valid record
    torn_records: int      # torn/corrupt tail records truncated away
    next_seq_hint: int     # superblock hint, for recovering an empty log


@dataclass(frozen=True)
class JournalConfig:
    """Auto-checkpoint policy knobs.

    ``checkpoint_after_records`` / ``checkpoint_after_blocks`` bound
    the live log: once either threshold is reached at a commit
    boundary, the journal checkpoints (flushes and truncates) itself.
    ``None`` disables that trigger; the all-``None`` default preserves
    the historical never-checkpoint behaviour.
    """

    checkpoint_after_records: Optional[int] = None
    checkpoint_after_blocks: Optional[int] = None

    @property
    def enabled(self) -> bool:
        return (
            self.checkpoint_after_records is not None
            or self.checkpoint_after_blocks is not None
        )


@dataclass
class JournalStats:
    """Append/flush accounting — what group commit saves is visible here."""

    appends: int = 0        # records physically appended to the extent
    commits: int = 0        # transactions committed
    flushes: int = 0        # commit flushes actually issued
    group_commits: int = 0  # batches closed
    batched_ops: int = 0    # begin/commit pairs absorbed into a batch
    aborted_batches: int = 0      # batches closed without a COMMIT
    checkpoints: int = 0          # checkpoint truncations issued
    checkpointed_records: int = 0  # records discarded by checkpoints
    recovers: int = 0             # recovery passes run
    recovered_records: int = 0    # committed records re-read from disk
    torn_records: int = 0         # torn tail records truncated at recovery


class Journal:
    """Circular write-ahead log stored on a reserved device extent.

    One journal record occupies one or more whole blocks.  When the
    record area fills, the oldest records are reclaimed (that is the
    only way data ever leaves the journal — never because a file was
    deleted).  Slot 0 and the last slot of the extent hold the two
    superblock copies; the record area is ``reserved_blocks - 2``
    slots.
    """

    def __init__(
        self,
        device: BlockDevice,
        reserved_blocks: int = 1024,
        config: Optional[JournalConfig] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        if reserved_blocks < 4:
            raise errors.JournalError(
                f"journal needs at least 4 reserved blocks, got {reserved_blocks}"
            )
        if reserved_blocks > 0xFFFF:
            raise errors.JournalError(
                f"journal extent of {reserved_blocks} blocks exceeds the "
                f"superblock's addressable {0xFFFF} slots"
            )
        self.device = device
        self.config = config or JournalConfig()
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._extent = device.allocate_many(reserved_blocks)
        self._slot_of = {block: slot for slot, block in enumerate(self._extent)}
        self._extent_cursor = 1  # next free slot; slot 0 is the superblock
        self._records: List[JournalRecord] = []  # in-memory index of live records
        self._record_blocks: List[List[int]] = []  # blocks backing each live record
        self._next_sequence = 0
        self._next_txn = 1
        self._open: Optional[_OpenTransaction] = None
        self._batching = False
        self._checkpoint_holds = 0
        self.reserved_blocks = reserved_blocks
        self.stats = JournalStats()
        self._sb_generation = 0
        self._write_superblock(self._extent_cursor, self._next_sequence)

    @classmethod
    def remount(
        cls,
        device: BlockDevice,
        extent: Sequence[int],
        config: Optional[JournalConfig] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> "Journal":
        """Rebuild a journal over a surviving device — device bytes only.

        This is the true-crash entrypoint: nothing from the pre-crash
        ``Journal`` object is consulted.  The superblock is read from
        ``extent[0]``, the record chain scanned and validated, torn
        tails truncated, and the sequence/txn counters and append
        cursor restored so post-recovery appends neither reuse
        sequence numbers nor clobber live records.
        """
        if len(extent) < 4:
            raise errors.JournalError(
                f"journal needs at least 4 reserved blocks, got {len(extent)}"
            )
        journal = cls.__new__(cls)
        journal.device = device
        journal.config = config or JournalConfig()
        journal.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        journal._extent = list(extent)
        journal._slot_of = {block: slot for slot, block in enumerate(journal._extent)}
        journal._extent_cursor = 1
        journal._records = []
        journal._record_blocks = []
        journal._next_sequence = 0
        journal._next_txn = 1
        journal._open = None
        journal._batching = False
        journal._checkpoint_holds = 0
        journal.reserved_blocks = len(journal._extent)
        journal.stats = JournalStats()
        journal._sb_generation = 0
        journal.recover()
        return journal

    @property
    def extent(self) -> List[int]:
        """The device blocks reserved for the journal (slot 0 first)."""
        return list(self._extent)

    @property
    def in_batch(self) -> bool:
        """True while a group-commit batch is open (see :meth:`batch`)."""
        return self._batching

    # -- transaction API ----------------------------------------------------

    def begin(self) -> int:
        """Open a transaction and return its id.

        Inside a :meth:`batch`, ``begin`` joins the open group
        transaction instead of opening (or rejecting) a nested one.
        """
        if self._batching and self._open is not None:
            self.stats.batched_ops += 1
            return self._open.txn_id
        if self._open is not None:
            raise errors.JournalError(
                f"transaction {self._open.txn_id} is already open"
            )
        txn_id = self._next_txn
        self._next_txn += 1
        self._open = _OpenTransaction(txn_id)
        self._append(JournalRecord(self._take_seq(), txn_id, TXN_BEGIN))
        return txn_id

    def log_write(self, target: str, payload: bytes) -> None:
        """Record a data write (payload included) in the open txn."""
        txn = self._require_open()
        record = JournalRecord(self._take_seq(), txn.txn_id, TXN_WRITE, target, payload)
        txn.records.append(record)
        self._append(record)

    def log_delete(self, target: str) -> None:
        """Record a deletion marker (no payload) in the open txn."""
        txn = self._require_open()
        record = JournalRecord(self._take_seq(), txn.txn_id, TXN_DELETE, target)
        txn.records.append(record)
        self._append(record)

    def log_op(self, op: str, target: str) -> None:
        """Record a metadata-only operation intent as ``"<op>:<target>"``.

        Convenience over :meth:`log_delete` — DBFS intents (store,
        update, erase, …) are all ``op:uid`` markers with no payload,
        and recovery parses them back by splitting on the first colon.
        """
        self.log_delete(f"{op}:{target}")

    def commit(self) -> None:
        """Commit the open transaction (one flush).

        Inside a :meth:`batch`, the commit is deferred: the single
        group COMMIT record and its flush are issued when the batch
        closes.
        """
        if self._batching:
            self._require_open()
            return
        txn = self._require_open()
        with self.telemetry.op("journal.commit", txn=txn.txn_id):
            self._append(JournalRecord(self._take_seq(), txn.txn_id, TXN_COMMIT))
            self.stats.commits += 1
            self.stats.flushes += 1
        self._open = None
        self._maybe_checkpoint()

    def abort(self) -> None:
        """Drop the open transaction (its records remain physically logged)."""
        if self._batching:
            raise errors.JournalError("cannot abort inside a journal batch")
        self._require_open()
        self._open = None

    @contextmanager
    def batch(self) -> Iterator[int]:
        """Group commit: coalesce enclosed ops into one committed group.

        Usage::

            with journal.batch():
                for request in requests:
                    ...  # each op's begin/log/commit joins the group

        Everything logged inside the context shares one transaction;
        one COMMIT record and one flush close the group.  Batches do
        not nest, and a batch cannot open while a plain transaction is
        in flight.

        The group is all-or-nothing: if the body raises, the COMMIT
        record is never written, so :meth:`replay`/:meth:`recover` see
        none of the group's records — exactly what a crash in the
        middle of the batch would leave behind.
        """
        if self._batching:
            raise errors.JournalError("a journal batch is already open")
        if self._open is not None:
            raise errors.JournalError(
                "cannot open a batch while a transaction is in flight"
            )
        txn_id = self._next_txn
        self._next_txn += 1
        self._open = _OpenTransaction(txn_id)
        self._batching = True
        ops_before = self.stats.batched_ops
        with self.telemetry.op("journal.batch", txn=txn_id) as span:
            self._append(JournalRecord(self._take_seq(), txn_id, TXN_BEGIN))
            try:
                yield txn_id
            except BaseException:
                self._batching = False
                self._open = None
                self.stats.aborted_batches += 1
                span.set_attr("aborted", True)
                raise
            else:
                self._batching = False
                self._append(JournalRecord(self._take_seq(), txn_id, TXN_COMMIT))
                self.stats.commits += 1
                self.stats.flushes += 1
                self.stats.group_commits += 1
                span.set_attr("ops", self.stats.batched_ops - ops_before)
                self._open = None
                self._maybe_checkpoint()

    @contextmanager
    def hold_checkpoints(self) -> Iterator[None]:
        """Defer auto-checkpoints while a commit-before-apply op runs.

        DBFS erasure commits its intent record *before* the
        destructive scrubs so a crash mid-apply can be redone.  An
        auto-checkpoint firing at that commit would truncate the very
        intent the redo needs; holding checkpoints across the
        commit+apply span closes that window.  The deferred policy
        check runs when the outermost hold releases.
        """
        self._checkpoint_holds += 1
        try:
            yield
        finally:
            self._checkpoint_holds -= 1
            if self._checkpoint_holds == 0:
                self._maybe_checkpoint()

    # -- recovery / inspection ----------------------------------------------

    def replay(self) -> List[JournalRecord]:
        """Return committed records in order, as crash recovery would."""
        committed_txns = {
            record.txn_id
            for record in self._records
            if record.record_type == TXN_COMMIT
        }
        return [
            record
            for record in self._records
            if record.txn_id in committed_txns
            and record.record_type in (TXN_WRITE, TXN_DELETE)
        ]

    def recover(self) -> List[JournalRecord]:
        """Crash recovery proper: re-read the log from the device.

        Nothing in-memory is trusted: the scan starts at the on-device
        superblock, follows the sequence chain, validates every
        record's framing/length/CRC, truncates torn tails (counted in
        ``stats.torn_records``), rolls an interrupted checkpoint
        forward, and then *replaces* this journal's in-memory index,
        sequence/txn counters and append cursor with what the device
        actually holds.  Returns the committed WRITE/DELETE records in
        order.  Its cost is proportional to the log length — which is
        what the auto-checkpoint policy bounds, and what the SHARD
        benchmark's remount comparison measures.  Records of
        transactions lacking a COMMIT (a crash mid-batch) are dropped
        wholesale: group commits are all-or-nothing.
        """
        with self.telemetry.op("journal.recover") as span:
            scan = self._scan_extent()
            self._records = scan.records
            self._record_blocks = scan.record_blocks
            self._extent_cursor = scan.cursor
            if scan.records:
                self._next_sequence = max(
                    self._next_sequence, scan.records[-1].sequence + 1
                )
                self._next_txn = max(
                    self._next_txn,
                    max(record.txn_id for record in scan.records) + 1,
                )
            else:
                self._next_sequence = max(self._next_sequence, scan.next_seq_hint)
            self._open = None
            self._batching = False
            committed_txns = {
                record.txn_id
                for record in self._records
                if record.record_type == TXN_COMMIT
            }
            recovered = [
                record
                for record in self._records
                if record.txn_id in committed_txns
                and record.record_type in (TXN_WRITE, TXN_DELETE)
            ]
            self.stats.recovers += 1
            self.stats.recovered_records += len(recovered)
            self.stats.torn_records += scan.torn_records
            span.set_attr("records", len(recovered))
            span.set_attr("torn", scan.torn_records)
        return recovered

    def scan_payloads(self, needle: bytes) -> List[JournalRecord]:
        """Forensic scan: records whose payload still contains ``needle``.

        This is the observation at the heart of the ILL-F experiment.
        """
        if not needle:
            raise errors.JournalError("cannot scan for an empty needle")
        return [record for record in self._records if needle in record.payload]

    def records(self) -> Iterator[JournalRecord]:
        return iter(self._records)

    def __len__(self) -> int:
        return len(self._records)

    @property
    def blocks_in_use(self) -> int:
        return sum(len(blocks) for blocks in self._record_blocks)

    def checkpoint(self) -> int:
        """Truncate the log; returns the number of records discarded.
        Real filesystems do this on their own schedule — crucially,
        *not* when a user deletes PD.

        Crash-atomic ordering: the CHECKPOINT marker (and the
        superblock pointing at it) is written *before* the old log
        blocks are scrubbed.  A crash at any point leaves either the
        old log or a marker-led one — never a scrubbed, marker-less
        extent indistinguishable from corruption.
        """
        with self.telemetry.op("journal.checkpoint") as span:
            discarded = len(self._records)
            old_blocks = self._record_blocks
            self._records = []
            self._record_blocks = []
            # _append sees an empty log, so it writes the superblock
            # (head = marker) before the marker's own chunks land.
            self._append(JournalRecord(self._take_seq(), 0, TXN_CHECKPOINT))
            marker_blocks = set(self._record_blocks[0])
            for blocks in old_blocks:
                for block_no in blocks:
                    # A full extent can make the marker reuse an old
                    # record's slot; never scrub the marker itself.
                    if block_no not in marker_blocks:
                        self.device.scrub(block_no)
            self.stats.checkpoints += 1
            self.stats.checkpointed_records += discarded
            span.set_attr("discarded", discarded)
        return discarded

    def compact(self) -> Dict[str, int]:
        """Force a checkpoint and report what the truncation reclaimed.

        The auto-checkpoint policy bounds the log on its own schedule;
        ``compact`` is the *on-demand* variant the retention path uses
        after an erasure wave, so op history naming freshly-erased uids
        does not linger until the policy happens to fire.  Returns
        ``{"records_discarded": n, "blocks_reclaimed": m}``.
        """
        blocks_before = self.blocks_in_use
        discarded = self.checkpoint()
        return {
            "records_discarded": discarded,
            "blocks_reclaimed": max(0, blocks_before - self.blocks_in_use),
        }

    # -- internals ----------------------------------------------------------

    def _maybe_checkpoint(self) -> None:
        """Apply the auto-checkpoint policy at a commit boundary."""
        if self._open is not None or self._checkpoint_holds or not self.config.enabled:
            return
        cap_records = self.config.checkpoint_after_records
        cap_blocks = self.config.checkpoint_after_blocks
        if (cap_records is not None and len(self._records) >= cap_records) or (
            cap_blocks is not None and self.blocks_in_use >= cap_blocks
        ):
            self.checkpoint()

    def _require_open(self) -> _OpenTransaction:
        if self._open is None:
            raise errors.JournalError("no open transaction")
        return self._open

    def _take_seq(self) -> int:
        seq = self._next_sequence
        self._next_sequence += 1
        return seq

    def _advance(self, slot: int) -> int:
        """Next record slot after ``slot``, wrapping within the record
        area (slot 0 and the last slot hold the superblock copies)."""
        slot += 1
        return 1 if slot >= len(self._extent) - 1 else slot

    def _write_superblock(self, head_slot: int, base_sequence: int) -> None:
        self._sb_generation = (self._sb_generation + 1) & 0xFFFF
        raw = struct.pack(
            _SB_FORMAT,
            _SB_MAGIC,
            _SB_VERSION,
            head_slot,
            base_sequence & 0xFFFFFFFF,
            self._next_sequence & 0xFFFFFFFF,
            self._sb_generation,
        )
        # Backup first, primary second: a torn write destroys at most
        # the copy being written, and the other is complete — either
        # the previous state (torn backup) or the new one (torn
        # primary).  Recovery never faces two torn copies.
        self.device.write(self._extent[-1], raw)
        self.device.write(self._extent[0], raw)

    def _parse_superblock(self, raw: bytes) -> Optional[tuple]:
        """Decode one superblock copy; None if torn or invalid."""
        if len(raw) != struct.calcsize(_SB_FORMAT):
            return None
        magic, version, head, base, next_seq, generation = struct.unpack(
            _SB_FORMAT, raw
        )
        if magic != _SB_MAGIC or version != _SB_VERSION:
            return None
        if not 1 <= head < len(self._extent) - 1:
            return None
        return head, base, next_seq, generation

    def _read_superblock(self) -> tuple:
        primary = self._parse_superblock(self.device.read(self._extent[0]))
        backup = self._parse_superblock(self.device.read(self._extent[-1]))
        if primary is None and backup is None:
            raise errors.JournalError(
                "corrupt journal superblock: neither copy parses"
            )
        if primary is None:
            chosen = backup
        elif backup is None:
            chosen = primary
        else:
            # Serial-arithmetic comparison of the wrapping generation.
            newer = (primary[3] - backup[3]) & 0xFFFF < 0x8000
            chosen = primary if newer else backup
        self._sb_generation = chosen[3]
        return chosen[0], chosen[1], chosen[2]

    def _chunk(self, raw: bytes) -> List[bytes]:
        """Frame a record's bytes for the extent: magic + chunking."""
        size = self.device.block_size
        first_capacity = size - len(_RECORD_MAGIC)
        chunks = [_RECORD_MAGIC + raw[:first_capacity]]
        for offset in range(first_capacity, len(raw), size):
            chunks.append(raw[offset : offset + size])
        return chunks

    def _chunk_count(self, raw_length: int) -> int:
        size = self.device.block_size
        first_capacity = size - len(_RECORD_MAGIC)
        if raw_length <= first_capacity:
            return 1
        remainder = raw_length - first_capacity
        return 1 + (remainder + size - 1) // size

    def _scan_extent(self) -> _ScanResult:
        """Walk the on-device record chain from the superblock head.

        Stops cleanly at scrubbed space or a stale (wrong-sequence)
        block; stops with truncation at a torn record (valid head
        framing, invalid body), scrubbing the torn blocks so no
        partial payload lingers in the extent.
        """
        head, base_sequence, next_seq_hint = self._read_superblock()
        usable = len(self._extent) - 2
        records: List[JournalRecord] = []
        record_blocks: List[List[int]] = []
        torn = 0
        position = head
        expected = base_sequence
        used = 0
        while used < usable:
            first = self.device.read(self._extent[position])
            if not first.startswith(_RECORD_MAGIC):
                break  # scrubbed or stale space: clean end of log
            body = first[len(_RECORD_MAGIC) :]
            slots = [position]
            # The JSON header may span blocks on tiny-block devices.
            header_torn = False
            while b"\n" not in body:
                if len(slots) >= usable - used:
                    header_torn = True
                    break
                slots.append(self._advance(slots[-1]))
                body += self.device.read(self._extent[slots[-1]])
            if header_torn:
                torn += 1
                self._scrub_slots(slots)
                break
            header_raw = body.split(b"\n", 1)[0]
            try:
                header = json.loads(header_raw)
                sequence = int(header["seq"])
                payload_length = int(header.get("len", 0))
                valid_type = header.get("type") in _VALID_TYPES
            except (ValueError, TypeError, KeyError):
                torn += 1
                self._scrub_slots(slots)
                break
            if not valid_type or payload_length < 0:
                torn += 1
                self._scrub_slots(slots)
                break
            if sequence != expected:
                break  # stale record from a reclaimed region: end of log
            raw_length = len(header_raw) + 1 + payload_length
            total_chunks = self._chunk_count(raw_length)
            if total_chunks > usable - used:
                # The record claims more chunks than the free region
                # holds — its tail writes never landed.
                torn += 1
                self._scrub_slots(slots)
                break
            while len(slots) < total_chunks:
                slots.append(self._advance(slots[-1]))
                body += self.device.read(self._extent[slots[-1]])
            try:
                record = JournalRecord.from_bytes(body[:raw_length])
            except errors.JournalError:
                torn += 1
                self._scrub_slots(slots)
                break
            slots = slots[:total_chunks]
            records.append(record)
            record_blocks.append([self._extent[slot] for slot in slots])
            expected = sequence + 1
            used += total_chunks
            position = self._advance(slots[-1])
        # Roll an interrupted checkpoint forward: everything before the
        # last CHECKPOINT marker was already flushed — superblock first,
        # then scrub, same ordering rule as a live checkpoint.
        marker_index = None
        for index, record in enumerate(records):
            if record.record_type == TXN_CHECKPOINT:
                marker_index = index
        if marker_index:
            stale_blocks = record_blocks[:marker_index]
            records = records[marker_index:]
            record_blocks = record_blocks[marker_index:]
            self._write_superblock(
                self._slot_of[record_blocks[0][0]], records[0].sequence
            )
            keep = {block for blocks in record_blocks for block in blocks}
            for blocks in stale_blocks:
                for block_no in blocks:
                    if block_no not in keep:
                        self.device.scrub(block_no)
        return _ScanResult(
            records=records,
            record_blocks=record_blocks,
            cursor=position,
            torn_records=torn,
            next_seq_hint=next_seq_hint,
        )

    def _scrub_slots(self, slots: List[int]) -> None:
        for slot in slots:
            self.device.scrub(self._extent[slot])

    def _append(self, record: JournalRecord) -> None:
        raw = record.to_bytes()
        chunks = self._chunk(raw)
        usable = self.reserved_blocks - 2
        if len(chunks) > usable:
            raise errors.JournalError(
                f"record of {len(raw)} bytes exceeds journal capacity"
            )
        was_empty = not self._records
        # Reclaim oldest records until the chunks fit in the record area.
        reclaimed: List[List[int]] = []
        while self.blocks_in_use + len(chunks) > usable and self._records:
            reclaimed.append(self._record_blocks.pop(0))
            self._records.pop(0)
        slots: List[int] = []
        cursor = self._extent_cursor
        for _ in chunks:
            slots.append(cursor)
            cursor = self._advance(cursor)
        # Durability ordering: move the superblock head past reclaimed
        # records (or onto this record, if the log was empty) before
        # any block is scrubbed or written.
        if reclaimed or was_empty:
            if self._records:
                head_slot = self._slot_of[self._record_blocks[0][0]]
                base_sequence = self._records[0].sequence
            else:
                head_slot, base_sequence = slots[0], record.sequence
            self._write_superblock(head_slot, base_sequence)
        new_slots = set(slots)
        for blocks in reclaimed:
            for block_no in blocks:
                if self._slot_of[block_no] not in new_slots:
                    self.device.scrub(block_no)
        for slot, chunk in zip(slots, chunks):
            self.device.write(self._extent[slot], chunk)
        self._extent_cursor = cursor
        self._records.append(record)
        self._record_blocks.append([self._extent[slot] for slot in slots])
        self.stats.appends += 1
