"""Write-ahead journal.

Section 1 of the paper motivates rgpdOS with exactly this component:

    "the filesystem's logging mechanism can compromise the GDPR's
    right to be forgotten as data deleted by the DB engine can still
    be present in the filesystem's logs."

The ext4-like baseline filesystem journals every data write here, in
data-journaling mode (like ``ext4 data=journal``): the journal records
carry the *payload bytes*.  Deleting a file later does not rewrite
history — the payload remains replayable from the journal until the
log wraps.  The ILL-F experiment scans this journal after a delete to
demonstrate the violation, and shows that DBFS (which journals only
encrypted/erased state and scrubs on erasure) does not exhibit it.

The journal is itself stored on the block device, in a reserved extent,
so "the bytes are on disk" is literally true in the simulation.

**Group commit** (the write-side fast path): :meth:`Journal.batch`
opens one transaction that absorbs every ``begin``/``commit`` pair
issued inside it, coalescing N op-metadata appends into a single
committed group with a single flush.  N independent ops cost
``3N`` records (BEGIN + op + COMMIT each) and N flushes; a batched
group costs ``N + 2`` records and one flush.  DBFS exposes this
through :meth:`repro.storage.dbfs.DatabaseFS.store_many`, which the
GDPRBench load phase uses.  A batch is all-or-nothing: if the body
raises, no COMMIT record is written and recovery treats the whole
group as never having happened.

**Auto-checkpoint** (:class:`JournalConfig`): without a checkpoint
policy the log only sheds records when the reserved extent wraps, so
``blocks_in_use`` grows to the cap and recovery replays the full
history every remount.  A threshold on live records or blocks flushes
and truncates the log after the enclosing commit, bounding both the
replay cost of :meth:`Journal.recover` and the window during which
op metadata (uids, never payloads) of erased PD lingers in the log.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from .. import errors
from ..obs import NULL_TELEMETRY, Telemetry
from .block import BlockDevice

# Transaction record types.
TXN_BEGIN = "begin"
TXN_WRITE = "write"      # payload-carrying data write
TXN_DELETE = "delete"    # metadata-only deletion marker
TXN_COMMIT = "commit"
TXN_CHECKPOINT = "checkpoint"

_VALID_TYPES = frozenset({TXN_BEGIN, TXN_WRITE, TXN_DELETE, TXN_COMMIT, TXN_CHECKPOINT})


@dataclass(frozen=True)
class JournalRecord:
    """One journal entry.

    ``payload`` is the raw data for TXN_WRITE records — this is the
    field that retains "deleted" PD.  ``target`` names the object the
    record concerns (a path or an inode number rendered as a string).
    """

    sequence: int
    txn_id: int
    record_type: str
    target: str = ""
    payload: bytes = b""

    def to_bytes(self) -> bytes:
        header = json.dumps(
            {
                "seq": self.sequence,
                "txn": self.txn_id,
                "type": self.record_type,
                "target": self.target,
                "len": len(self.payload),
            }
        ).encode()
        return header + b"\n" + self.payload

    @classmethod
    def from_bytes(cls, raw: bytes) -> "JournalRecord":
        try:
            header_raw, payload = raw.split(b"\n", 1)
            header = json.loads(header_raw)
        except (ValueError, json.JSONDecodeError) as exc:
            raise errors.JournalError(f"corrupt journal record: {exc}") from exc
        if header["type"] not in _VALID_TYPES:
            raise errors.JournalError(f"unknown record type {header['type']!r}")
        if header["len"] != len(payload):
            raise errors.JournalError(
                f"journal payload length mismatch: header says {header['len']}, "
                f"got {len(payload)}"
            )
        return cls(
            sequence=header["seq"],
            txn_id=header["txn"],
            record_type=header["type"],
            target=header["target"],
            payload=payload,
        )


@dataclass
class _OpenTransaction:
    txn_id: int
    records: List[JournalRecord] = field(default_factory=list)


@dataclass(frozen=True)
class JournalConfig:
    """Auto-checkpoint policy knobs.

    ``checkpoint_after_records`` / ``checkpoint_after_blocks`` bound
    the live log: once either threshold is reached at a commit
    boundary, the journal checkpoints (flushes and truncates) itself.
    ``None`` disables that trigger; the all-``None`` default preserves
    the historical never-checkpoint behaviour.
    """

    checkpoint_after_records: Optional[int] = None
    checkpoint_after_blocks: Optional[int] = None

    @property
    def enabled(self) -> bool:
        return (
            self.checkpoint_after_records is not None
            or self.checkpoint_after_blocks is not None
        )


@dataclass
class JournalStats:
    """Append/flush accounting — what group commit saves is visible here."""

    appends: int = 0        # records physically appended to the extent
    commits: int = 0        # transactions committed
    flushes: int = 0        # commit flushes actually issued
    group_commits: int = 0  # batches closed
    batched_ops: int = 0    # begin/commit pairs absorbed into a batch
    aborted_batches: int = 0      # batches closed without a COMMIT
    checkpoints: int = 0          # checkpoint truncations issued
    checkpointed_records: int = 0  # records discarded by checkpoints
    recovers: int = 0             # recovery passes run
    recovered_records: int = 0    # committed records re-read from disk


class Journal:
    """Circular write-ahead log stored on a reserved device extent.

    One journal record occupies one or more whole blocks.  When the
    reserved extent fills, the oldest records are reclaimed (that is
    the only way data ever leaves the journal — never because a file
    was deleted).
    """

    def __init__(
        self,
        device: BlockDevice,
        reserved_blocks: int = 1024,
        config: Optional[JournalConfig] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        if reserved_blocks < 4:
            raise errors.JournalError(
                f"journal needs at least 4 reserved blocks, got {reserved_blocks}"
            )
        self.device = device
        self.config = config or JournalConfig()
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._extent = device.allocate_many(reserved_blocks)
        self._extent_cursor = 0  # next free slot in the extent, wraps
        self._records: List[JournalRecord] = []  # in-memory index of live records
        self._record_blocks: List[List[int]] = []  # blocks backing each live record
        self._next_sequence = 0
        self._next_txn = 1
        self._open: Optional[_OpenTransaction] = None
        self._batching = False
        self.reserved_blocks = reserved_blocks
        self.stats = JournalStats()

    # -- transaction API ----------------------------------------------------

    def begin(self) -> int:
        """Open a transaction and return its id.

        Inside a :meth:`batch`, ``begin`` joins the open group
        transaction instead of opening (or rejecting) a nested one.
        """
        if self._batching and self._open is not None:
            self.stats.batched_ops += 1
            return self._open.txn_id
        if self._open is not None:
            raise errors.JournalError(
                f"transaction {self._open.txn_id} is already open"
            )
        txn_id = self._next_txn
        self._next_txn += 1
        self._open = _OpenTransaction(txn_id)
        self._append(JournalRecord(self._take_seq(), txn_id, TXN_BEGIN))
        return txn_id

    def log_write(self, target: str, payload: bytes) -> None:
        """Record a data write (payload included) in the open txn."""
        txn = self._require_open()
        record = JournalRecord(self._take_seq(), txn.txn_id, TXN_WRITE, target, payload)
        txn.records.append(record)
        self._append(record)

    def log_delete(self, target: str) -> None:
        """Record a deletion marker (no payload) in the open txn."""
        txn = self._require_open()
        record = JournalRecord(self._take_seq(), txn.txn_id, TXN_DELETE, target)
        txn.records.append(record)
        self._append(record)

    def commit(self) -> None:
        """Commit the open transaction (one flush).

        Inside a :meth:`batch`, the commit is deferred: the single
        group COMMIT record and its flush are issued when the batch
        closes.
        """
        if self._batching:
            self._require_open()
            return
        txn = self._require_open()
        with self.telemetry.op("journal.commit", txn=txn.txn_id):
            self._append(JournalRecord(self._take_seq(), txn.txn_id, TXN_COMMIT))
            self.stats.commits += 1
            self.stats.flushes += 1
        self._open = None
        self._maybe_checkpoint()

    def abort(self) -> None:
        """Drop the open transaction (its records remain physically logged)."""
        if self._batching:
            raise errors.JournalError("cannot abort inside a journal batch")
        self._require_open()
        self._open = None

    @contextmanager
    def batch(self) -> Iterator[int]:
        """Group commit: coalesce enclosed ops into one committed group.

        Usage::

            with journal.batch():
                for request in requests:
                    ...  # each op's begin/log/commit joins the group

        Everything logged inside the context shares one transaction;
        one COMMIT record and one flush close the group.  Batches do
        not nest, and a batch cannot open while a plain transaction is
        in flight.

        The group is all-or-nothing: if the body raises, the COMMIT
        record is never written, so :meth:`replay`/:meth:`recover` see
        none of the group's records — exactly what a crash in the
        middle of the batch would leave behind.
        """
        if self._batching:
            raise errors.JournalError("a journal batch is already open")
        if self._open is not None:
            raise errors.JournalError(
                "cannot open a batch while a transaction is in flight"
            )
        txn_id = self._next_txn
        self._next_txn += 1
        self._open = _OpenTransaction(txn_id)
        self._batching = True
        ops_before = self.stats.batched_ops
        with self.telemetry.op("journal.batch", txn=txn_id) as span:
            self._append(JournalRecord(self._take_seq(), txn_id, TXN_BEGIN))
            try:
                yield txn_id
            except BaseException:
                self._batching = False
                self._open = None
                self.stats.aborted_batches += 1
                span.set_attr("aborted", True)
                raise
            else:
                self._batching = False
                self._append(JournalRecord(self._take_seq(), txn_id, TXN_COMMIT))
                self.stats.commits += 1
                self.stats.flushes += 1
                self.stats.group_commits += 1
                span.set_attr("ops", self.stats.batched_ops - ops_before)
                self._open = None
                self._maybe_checkpoint()

    # -- recovery / inspection ----------------------------------------------

    def replay(self) -> List[JournalRecord]:
        """Return committed records in order, as crash recovery would."""
        committed_txns = {
            record.txn_id
            for record in self._records
            if record.record_type == TXN_COMMIT
        }
        return [
            record
            for record in self._records
            if record.txn_id in committed_txns
            and record.record_type in (TXN_WRITE, TXN_DELETE)
        ]

    def recover(self) -> List[JournalRecord]:
        """Crash recovery proper: re-read the log from the device.

        Unlike :meth:`replay` (which trusts the in-memory index), this
        reads every live record's blocks back from the extent, parses
        and validates them, then returns the committed WRITE/DELETE
        records in order.  Its cost is proportional to the log length
        — which is what the auto-checkpoint policy bounds, and what
        the SHARD benchmark's remount comparison measures.  Records of
        transactions lacking a COMMIT (a crash mid-batch) are dropped
        wholesale: group commits are all-or-nothing.
        """
        with self.telemetry.op("journal.recover") as span:
            on_disk: List[JournalRecord] = []
            for blocks in self._record_blocks:
                raw = b"".join(self.device.read(block_no) for block_no in blocks)
                on_disk.append(JournalRecord.from_bytes(raw))
            committed_txns = {
                record.txn_id
                for record in on_disk
                if record.record_type == TXN_COMMIT
            }
            recovered = [
                record
                for record in on_disk
                if record.txn_id in committed_txns
                and record.record_type in (TXN_WRITE, TXN_DELETE)
            ]
            self.stats.recovers += 1
            self.stats.recovered_records += len(recovered)
            span.set_attr("records", len(recovered))
        return recovered

    def scan_payloads(self, needle: bytes) -> List[JournalRecord]:
        """Forensic scan: records whose payload still contains ``needle``.

        This is the observation at the heart of the ILL-F experiment.
        """
        if not needle:
            raise errors.JournalError("cannot scan for an empty needle")
        return [record for record in self._records if needle in record.payload]

    def records(self) -> Iterator[JournalRecord]:
        return iter(self._records)

    def __len__(self) -> int:
        return len(self._records)

    @property
    def blocks_in_use(self) -> int:
        return sum(len(blocks) for blocks in self._record_blocks)

    def checkpoint(self) -> int:
        """Truncate the log (e.g. after a checkpoint flush); returns
        the number of records discarded.  Real filesystems do this on
        their own schedule — crucially, *not* when a user deletes PD.
        """
        with self.telemetry.op("journal.checkpoint") as span:
            discarded = len(self._records)
            for blocks in self._record_blocks:
                for block_no in blocks:
                    self.device.scrub(block_no)
            self._records.clear()
            self._record_blocks.clear()
            self._append(
                JournalRecord(self._take_seq(), 0, TXN_CHECKPOINT)
            )
            self.stats.checkpoints += 1
            self.stats.checkpointed_records += discarded
            span.set_attr("discarded", discarded)
        return discarded

    # -- internals ----------------------------------------------------------

    def _maybe_checkpoint(self) -> None:
        """Apply the auto-checkpoint policy at a commit boundary."""
        if self._open is not None or not self.config.enabled:
            return
        cap_records = self.config.checkpoint_after_records
        cap_blocks = self.config.checkpoint_after_blocks
        if (cap_records is not None and len(self._records) >= cap_records) or (
            cap_blocks is not None and self.blocks_in_use >= cap_blocks
        ):
            self.checkpoint()

    def _require_open(self) -> _OpenTransaction:
        if self._open is None:
            raise errors.JournalError("no open transaction")
        return self._open

    def _take_seq(self) -> int:
        seq = self._next_sequence
        self._next_sequence += 1
        return seq

    def _append(self, record: JournalRecord) -> None:
        raw = record.to_bytes()
        size = self.device.block_size
        chunks = [raw[i : i + size] for i in range(0, len(raw), size)] or [b""]
        if len(chunks) > self.reserved_blocks:
            raise errors.JournalError(
                f"record of {len(raw)} bytes exceeds journal capacity"
            )
        # Reclaim oldest records until the chunks fit in the extent.
        while self.blocks_in_use + len(chunks) > self.reserved_blocks and self._records:
            oldest_blocks = self._record_blocks.pop(0)
            self._records.pop(0)
            for block_no in oldest_blocks:
                self.device.scrub(block_no)
        blocks: List[int] = []
        for chunk in chunks:
            block_no = self._extent[self._extent_cursor]
            self._extent_cursor = (self._extent_cursor + 1) % len(self._extent)
            self.device.write(block_no, chunk)
            blocks.append(block_no)
        self._records.append(record)
        self._record_blocks.append(blocks)
        self.stats.appends += 1
