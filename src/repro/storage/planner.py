"""Selectivity-driven query planning over DBFS field indexes.

The paper pushes query capability into the filesystem (§ 3(1): the
format descriptor means DBFS "knows the general structure of the
data"); once conjunctive multi-predicate queries exist, something has
to decide *which* index drives the lookup.  This module is that
something: given the predicates of a query and the
:class:`~repro.storage.btree.FieldIndex` objects that exist for the
type, it picks the indexed predicate with the lowest cardinality
estimate as the driving lookup, leaves the rest as *residual*
predicates to be checked via partial decode, and falls back to a full
table scan when no predicate is indexable.

The planner is deliberately storage-agnostic: it sees index statistics
and predicates, never records, so :class:`~repro.storage.dbfs.DatabaseFS`
plans locally and :class:`~repro.storage.shard.ShardedDBFS` simply
scatter-gathers the same planning to every shard.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Optional, Sequence, Tuple

from .btree import FieldIndex
from .query import (
    OP_EQ,
    OP_GE,
    OP_GT,
    OP_LE,
    OP_LT,
    OP_NE,
    Predicate,
    _OPS,
)

STRATEGY_INDEX = "index"
STRATEGY_SCAN = "scan"

# Operators _select_indexed can answer from a B-tree field index.
INDEXABLE_OPS = frozenset({OP_EQ, OP_NE, OP_LT, OP_LE, OP_GT, OP_GE})


@dataclass(frozen=True)
class QueryPlan:
    """The planner's decision for one conjunctive predicate set.

    ``fields_needed`` is the union of the residual predicates' fields —
    exactly what the executor must decode per candidate row; with the
    v2 codec that is a partial decode guided by the row's offset table.
    """

    type_name: str
    strategy: str                      # STRATEGY_INDEX or STRATEGY_SCAN
    predicates: Tuple[Predicate, ...]
    index_field: Optional[str] = None
    index_predicate: Optional[Predicate] = None
    residual: Tuple[Predicate, ...] = ()
    estimated_rows: int = 0
    table_rows: int = 0
    candidate_estimates: Mapping[str, int] = field(default_factory=dict)

    @property
    def fields_needed(self) -> Tuple[str, ...]:
        seen: Dict[str, None] = {}
        for predicate in self.residual:
            seen.setdefault(predicate.field_name, None)
        return tuple(seen)

    def describe(self) -> Dict[str, object]:
        """JSON-safe summary (used by ``repro explain`` and trace spans)."""
        return {
            "type": self.type_name,
            "strategy": self.strategy,
            "index_field": self.index_field,
            "index_predicate": (
                self.index_predicate.describe()
                if self.index_predicate is not None else None
            ),
            "residual": [p.describe() for p in self.residual],
            "estimated_rows": self.estimated_rows,
            "table_rows": self.table_rows,
            "fields_decoded": list(self.fields_needed),
            "candidate_estimates": dict(self.candidate_estimates),
        }


def compile_residual(
    predicates: Sequence[Predicate],
) -> Callable[[Mapping[str, object]], bool]:
    """Compile residual predicates into one batch-friendly callable.

    The executor evaluates residuals over whole batches of partially
    decoded rows, so the per-row cost matters: the compiled form hoists
    the ``_OPS`` dispatch and attribute lookups out of the loop, leaving
    a tuple walk of ``(field, op, value)`` triples per row.  Semantics
    match :meth:`Predicate.evaluate` exactly — a missing field or a
    ``TypeError`` from a cross-type comparison collapses to False.
    """
    compiled = tuple(
        (p.field_name, _OPS[p.op], p.value) for p in predicates
    )
    if not compiled:
        return lambda record: True

    def evaluate(record: Mapping[str, object]) -> bool:
        for field_name, op, value in compiled:
            if field_name not in record:
                return False
            try:
                if not op(record[field_name], value):
                    return False
            except TypeError:
                return False
        return True

    return evaluate


def plan_query(
    type_name: str,
    predicates: Sequence[Predicate],
    indexes: Mapping[str, FieldIndex],
    table_rows: int,
) -> QueryPlan:
    """Choose the driving index (or a scan) for a conjunctive query.

    Every indexable predicate whose field has an index is costed with
    :meth:`FieldIndex.estimate`; the cheapest drives the lookup and the
    others become residuals.  With several predicates on the *same*
    field only the cheapest drives — the rest still apply as residuals,
    so correctness never depends on the estimate being right.
    """
    predicates = tuple(predicates)
    estimates: Dict[str, int] = {}
    best: Optional[Predicate] = None
    best_cost = -1
    for predicate in predicates:
        if predicate.op not in INDEXABLE_OPS:
            continue
        index = indexes.get(predicate.field_name)
        if index is None:
            continue
        cost = index.estimate(predicate.op, predicate.value)
        key = predicate.describe()
        estimates[key] = cost
        if best is None or cost < best_cost:
            best, best_cost = predicate, cost
    if best is None:
        return QueryPlan(
            type_name=type_name,
            strategy=STRATEGY_SCAN,
            predicates=predicates,
            residual=predicates,
            estimated_rows=table_rows,
            table_rows=table_rows,
            candidate_estimates=estimates,
        )
    residual = tuple(p for p in predicates if p is not best)
    return QueryPlan(
        type_name=type_name,
        strategy=STRATEGY_INDEX,
        predicates=predicates,
        index_field=best.field_name,
        index_predicate=best,
        residual=residual,
        estimated_rows=best_cost,
        table_rows=table_rows,
        candidate_estimates=estimates,
    )
