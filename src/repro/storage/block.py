"""Simulated block device.

Everything above this module (inodes, journal, filesystems, DBFS)
reads and writes fixed-size blocks here, exactly as uFS sits on a real
device.  The simulation keeps two things real devices have and pure
dicts do not:

* **Deleted data persists.**  Freeing a block does *not* zero it; the
  bytes stay until the block is scrubbed or handed out again.  Section
  1 of the paper argues a DB-engine "delete" can leave PD behind in
  lower layers — this device (plus the journal) is what lets the
  FIG2/ILL-F experiments observe that concretely, via
  :meth:`BlockDevice.scan`.  (Reallocation *does* scrub: handing a
  freed block's stale bytes to a new owner would leak the previous
  owner's PD through an ordinary ``read``.)
* **Access costs.**  Reads and writes advance a latency counter so the
  benchmark harness can report simulated IO time per operation.
* **Page cache.**  An LRU cache of recently touched blocks
  (write-through) absorbs repeat reads without the simulated latency
  charge.  Its RTBF-critical invariant: a scrubbed or freed block is
  *invalidated*, never served stale — secure erasure must reach the
  cache, not only the medium.
"""

from __future__ import annotations

import heapq
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set

from .. import errors
from ..obs import NULL_TELEMETRY, Telemetry


@dataclass
class DeviceStats:
    """IO accounting maintained by the device."""

    reads: int = 0
    writes: int = 0
    blocks_allocated: int = 0
    blocks_freed: int = 0
    simulated_io_seconds: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    cache_invalidations: int = 0

    def snapshot(self) -> "DeviceStats":
        return DeviceStats(
            reads=self.reads,
            writes=self.writes,
            blocks_allocated=self.blocks_allocated,
            blocks_freed=self.blocks_freed,
            simulated_io_seconds=self.simulated_io_seconds,
            cache_hits=self.cache_hits,
            cache_misses=self.cache_misses,
            cache_evictions=self.cache_evictions,
            cache_invalidations=self.cache_invalidations,
        )


class BlockDevice:
    """A fixed-geometry array of blocks with an allocation bitmap.

    Parameters
    ----------
    block_count:
        Number of blocks on the device.
    block_size:
        Bytes per block.
    read_latency / write_latency:
        Simulated seconds charged per block access (defaults roughly
        model a fast NVMe device; absolute values only matter
        relatively).
    page_cache_blocks:
        Capacity of the LRU page cache (blocks).  ``0`` disables the
        cache (every read pays the device latency) — the FASTPATH
        benchmark's baseline configuration.
    io_delay_scale:
        When ``> 0``, each cache-missing read and each write *realizes*
        its simulated latency as an actual ``time.sleep(latency *
        io_delay_scale)``.  The sleep releases the GIL, so concurrent
        request-engine workers genuinely overlap their device waits —
        which is what lets the concurrency benchmark measure real
        speedup rather than GIL-serialized bookkeeping.  ``0`` (the
        default) keeps the historical accounting-only behaviour; the
        accounting in ``stats.simulated_io_seconds`` is identical
        either way, so enabling this changes wall time only.
    telemetry:
        Shared :class:`~repro.obs.Telemetry`.  When enabled, every
        ``read``/``write``/``scrub`` records its wall time into the
        ``block.read`` / ``block.write`` / ``block.scrub`` histograms.
        The histograms are bound once at construction so the disabled
        path costs a single ``is not None`` test per operation.
    """

    def __init__(
        self,
        block_count: int = 65536,
        block_size: int = 4096,
        read_latency: float = 10e-6,
        write_latency: float = 20e-6,
        page_cache_blocks: int = 1024,
        io_delay_scale: float = 0.0,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        if block_count <= 0 or block_size <= 0:
            raise errors.BlockDeviceError(
                f"invalid geometry: {block_count} blocks x {block_size} bytes"
            )
        if page_cache_blocks < 0:
            raise errors.BlockDeviceError(
                f"invalid page cache capacity {page_cache_blocks}"
            )
        if io_delay_scale < 0:
            raise errors.BlockDeviceError(
                f"invalid io_delay_scale {io_delay_scale}"
            )
        self.block_count = block_count
        self.block_size = block_size
        self.read_latency = read_latency
        self.write_latency = write_latency
        self.page_cache_blocks = page_cache_blocks
        self.io_delay_scale = io_delay_scale
        self._page_cache: "OrderedDict[int, bytes]" = OrderedDict()
        # Guards the page cache, the stats record, and the allocation
        # state.  Reentrant: write() holds it across the cache insert,
        # and allocate() may scrub (which re-acquires).  Sleeps for
        # io_delay_scale happen *outside* the lock so concurrent
        # workers overlap their device waits instead of queueing.
        self._lock = threading.RLock()
        self._blocks: List[bytes] = [b""] * block_count
        # Allocation state: blocks below the watermark have been handed
        # out at least once; freed ones sit in a min-heap so the lowest
        # freed block is reused first (matching real allocators' bias
        # toward low block numbers, and making reuse deterministic).
        self._watermark = 0
        self._freed_heap: List[int] = []
        self._freed_set: Set[int] = set()
        self.stats = DeviceStats()
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        if self.telemetry.enabled:
            registry = self.telemetry.registry
            self._hist_read = registry.histogram("block.read")
            self._hist_write = registry.histogram("block.write")
            self._hist_scrub = registry.histogram("block.scrub")
        else:
            self._hist_read = self._hist_write = self._hist_scrub = None

    # -- allocation ---------------------------------------------------------

    def allocate(self) -> int:
        """Claim a free block and return its number.

        A reused block is scrubbed before it is handed out: without
        this, a freed-then-reallocated block exposes the previous
        owner's PD to the new owner's very first ``read`` (the § 1
        lower-layer leak, one level below the journal).  Freed blocks
        that have *not* been reallocated keep their bytes — that
        residue is what the FIG2/ILL-F forensic scans observe.
        """
        with self._lock:
            if self._freed_heap:
                block_no = heapq.heappop(self._freed_heap)
                self._freed_set.discard(block_no)
                if self._blocks[block_no]:
                    # Secure-erase stale contents before the new owner can
                    # observe them (charged like any scrub write).
                    self.scrub(block_no)
            elif self._watermark < self.block_count:
                block_no = self._watermark
                self._watermark += 1
            else:
                raise errors.OutOfSpaceError(
                    f"device full: all {self.block_count} blocks in use"
                )
            self.stats.blocks_allocated += 1
            return block_no

    def allocate_many(self, count: int) -> List[int]:
        """Claim ``count`` blocks atomically (all or nothing)."""
        if count < 0:
            raise errors.BlockDeviceError(f"cannot allocate {count} blocks")
        if count > self.free_blocks:
            raise errors.OutOfSpaceError(
                f"device has {self.free_blocks} free blocks, need {count}"
            )
        return [self.allocate() for _ in range(count)]

    def free(self, block_no: int) -> None:
        """Return a block to the free pool.

        The medium keeps the bytes (see the module docstring), but the
        page cache must not: a freed block is no longer anyone's data,
        and serving it from cache would hand stale PD to the next
        owner even after the on-medium copy is scrubbed.
        """
        self._check_range(block_no)
        with self._lock:
            if block_no in self._freed_set or block_no >= self._watermark:
                raise errors.BlockDeviceError(f"double free of block {block_no}")
            heapq.heappush(self._freed_heap, block_no)
            self._freed_set.add(block_no)
            self._cache_invalidate(block_no)
            self.stats.blocks_freed += 1

    def is_allocated(self, block_no: int) -> bool:
        self._check_range(block_no)
        return block_no < self._watermark and block_no not in self._freed_set

    @property
    def free_blocks(self) -> int:
        return (self.block_count - self._watermark) + len(self._freed_set)

    @property
    def used_blocks(self) -> int:
        return self.block_count - self.free_blocks

    # -- IO -----------------------------------------------------------------

    def read(self, block_no: int) -> bytes:
        """Read one block. Reading a never-written block returns b''.

        A page-cache hit skips the simulated device latency; every
        logical read still counts in ``stats.reads``.
        """
        hist = self._hist_read
        start = time.perf_counter_ns() if hist is not None else 0
        self._check_range(block_no)
        with self._lock:
            self.stats.reads += 1
            cached = self._page_cache.get(block_no)
            if cached is not None:
                self.stats.cache_hits += 1
                self._page_cache.move_to_end(block_no)
            else:
                self.stats.cache_misses += 1
                self.stats.simulated_io_seconds += self.read_latency
        if cached is not None:
            if hist is not None:
                hist.observe(time.perf_counter_ns() - start)
            return cached
        if self.io_delay_scale > 0.0:
            # Realize the device wait outside the lock: the sleep
            # releases the GIL, so parallel readers overlap here.
            time.sleep(self.read_latency * self.io_delay_scale)
        # Fetch and cache in ONE critical section: a write()/scrub()/
        # free() landing during the unlocked wait above must not have
        # its cache update or invalidation overwritten by this reader
        # re-inserting pre-mutation bytes.  Fetching under the lock
        # means the inserted copy always matches the medium at insert
        # time, and freed blocks are never (re-)cached at all — the
        # erasure invariant ("invalidated, never served stale") holds.
        with self._lock:
            data = self._blocks[block_no]
            if block_no < self._watermark and block_no not in self._freed_set:
                self._cache_insert(block_no, data)
        if hist is not None:
            hist.observe(time.perf_counter_ns() - start)
        return data

    def read_view(self, block_no: int) -> memoryview:
        """Read one block as a :class:`memoryview` (zero-copy slice base).

        Blocks are stored as immutable ``bytes`` objects replaced
        wholesale on :meth:`write`/:meth:`scrub`, so a view handed out
        here is a stable snapshot of the block at read time — a later
        write swaps in a *new* bytes object and cannot mutate bytes a
        view already references.  Callers (inode extents, the codec's
        partial decode) slice this view instead of copying.
        """
        return memoryview(self.read(block_no))

    def write(self, block_no: int, data: bytes) -> None:
        """Write one block; ``data`` must fit in the block size.

        Write-through: the medium and the page cache are updated
        together, so a later read can never observe pre-write bytes.
        """
        hist = self._hist_write
        start = time.perf_counter_ns() if hist is not None else 0
        self._check_range(block_no)
        if len(data) > self.block_size:
            raise errors.BlockDeviceError(
                f"payload of {len(data)} bytes exceeds block size {self.block_size}"
            )
        if self.io_delay_scale > 0.0:
            time.sleep(self.write_latency * self.io_delay_scale)
        with self._lock:
            self.stats.writes += 1
            self.stats.simulated_io_seconds += self.write_latency
            self._blocks[block_no] = bytes(data)
            self._cache_insert(block_no, self._blocks[block_no])
        if hist is not None:
            hist.observe(time.perf_counter_ns() - start)

    def scrub(self, block_no: int) -> None:
        """Explicitly zero a block (secure-erase primitive).

        rgpdOS's DBFS calls this on erasure; the ext4-like baseline
        never does, which is exactly the gap the paper points at.
        The block is also dropped from the page cache — erasure that
        leaves the bytes readable from cache would be no erasure.
        """
        hist = self._hist_scrub
        start = time.perf_counter_ns() if hist is not None else 0
        self._check_range(block_no)
        if self.io_delay_scale > 0.0:
            time.sleep(self.write_latency * self.io_delay_scale)
        with self._lock:
            self.stats.writes += 1
            self.stats.simulated_io_seconds += self.write_latency
            self._blocks[block_no] = b""
            self._cache_invalidate(block_no)
        if hist is not None:
            hist.observe(time.perf_counter_ns() - start)

    # -- forensics ----------------------------------------------------------

    def scan(self, needle: bytes) -> List[int]:
        """Return every block (allocated or free) containing ``needle``.

        This is the forensic primitive the RTBF experiment uses to show
        that "deleted" PD survives in the baseline filesystem.
        """
        if not needle:
            raise errors.BlockDeviceError("cannot scan for an empty needle")
        return [
            block_no
            for block_no, data in enumerate(self._blocks)
            if needle in data
        ]

    def scan_range(self, needle: bytes, start: int, stop: int) -> List[int]:
        """Like :meth:`scan`, bounded to blocks ``[start, stop)``.

        The incremental residue scrubber samples the device one window
        per tick instead of paying an O(device) scan on every pass;
        the window is clamped to the device, so a cursor walking past
        the end simply sees an empty tail.
        """
        if not needle:
            raise errors.BlockDeviceError("cannot scan for an empty needle")
        start = max(0, start)
        stop = min(self.block_count, stop)
        return [
            block_no
            for block_no in range(start, stop)
            if needle in self._blocks[block_no]
        ]

    def iter_allocated(self) -> Iterator[int]:
        for block_no in range(self._watermark):
            if block_no not in self._freed_set:
                yield block_no

    def scan_cache(self, needle: bytes) -> List[int]:
        """Return every page-cache-resident block containing ``needle``.

        The RTBF invariant must hold in the cache too: after a crash,
        a lost write can leave the cache ahead of the medium, and after
        an erasure nothing may serve the old bytes.  The crash harness
        checks this alongside the on-medium :meth:`scan`.
        """
        if not needle:
            raise errors.BlockDeviceError("cannot scan for an empty needle")
        with self._lock:
            entries = list(self._page_cache.items())
        return [block_no for block_no, data in entries if needle in data]

    # -- page cache ---------------------------------------------------------

    def _cache_insert(self, block_no: int, data: bytes) -> None:
        if self.page_cache_blocks <= 0:
            return
        with self._lock:
            if block_no in self._page_cache:
                self._page_cache.move_to_end(block_no)
            self._page_cache[block_no] = data
            while len(self._page_cache) > self.page_cache_blocks:
                self._page_cache.popitem(last=False)
                self.stats.cache_evictions += 1

    def _cache_invalidate(self, block_no: int) -> None:
        with self._lock:
            if self._page_cache.pop(block_no, None) is not None:
                self.stats.cache_invalidations += 1

    def cached_blocks(self) -> List[int]:
        """Block numbers currently resident in the page cache (tests)."""
        with self._lock:
            return list(self._page_cache)

    def drop_page_cache(self) -> int:
        """Discard every cached block; returns how many were dropped.

        Remount-after-crash must call this: the cache belongs to the
        *session*, not the medium, and after a power cut it can hold
        write-through copies of writes the medium never received.
        """
        with self._lock:
            dropped = len(self._page_cache)
            self._page_cache.clear()
            self.stats.cache_invalidations += dropped
            return dropped

    def cache_stats(self) -> Dict[str, object]:
        """Observable page-cache state (size, capacity, hit rate)."""
        with self._lock:
            lookups = self.stats.cache_hits + self.stats.cache_misses
            size = len(self._page_cache)
        return {
            "name": "page-cache",
            "capacity": self.page_cache_blocks,
            "size": size,
            "hits": self.stats.cache_hits,
            "misses": self.stats.cache_misses,
            "evictions": self.stats.cache_evictions,
            "invalidations": self.stats.cache_invalidations,
            "hit_rate": round(self.stats.cache_hits / lookups, 4) if lookups else 0.0,
        }

    # -- helpers ------------------------------------------------------------

    def _check_range(self, block_no: int) -> None:
        if not 0 <= block_no < self.block_count:
            raise errors.BlockDeviceError(
                f"block {block_no} out of range [0, {self.block_count})"
            )

    def __repr__(self) -> str:
        return (
            f"BlockDevice({self.used_blocks}/{self.block_count} blocks used, "
            f"{self.block_size}B blocks)"
        )


def store_bytes(device: BlockDevice, payload: bytes) -> List[int]:
    """Split ``payload`` across freshly allocated blocks and write it.

    Returns the ordered block list.  The inverse is :func:`load_bytes`.
    """
    size = device.block_size
    chunks = [payload[i : i + size] for i in range(0, len(payload), size)] or [b""]
    blocks = device.allocate_many(len(chunks))
    for block_no, chunk in zip(blocks, chunks):
        device.write(block_no, chunk)
    return blocks


def load_bytes(device: BlockDevice, blocks: List[int], length: Optional[int] = None) -> bytes:
    """Reassemble a payload previously written with :func:`store_bytes`."""
    payload = b"".join(device.read(block_no) for block_no in blocks)
    if length is not None:
        payload = payload[:length]
    return payload
