"""DBFS — the database-oriented filesystem (paper Idea 3, § 3(1)).

DBFS stores PD as typed records in inode trees, not as opaque files.
Its layout follows § 3(1) of the paper word for word:

* **Subject tree** — "the first tree gathers every PD from all
  subjects, with a separate set of inodes for each of them, grouping
  not only their personal data but also the membrane."  Layout::

      subjects_root/
        <subject_id>/            (KIND_SUBJECT)
          <uid>                  (KIND_RECORD, payload = public fields)
            .sensitive inode     (linked via attrs, separate storage)
            .membrane inode      (KIND_MEMBRANE, payload = membrane JSON)

* **Schema tree** — "the second major tree provides the database
  structure, with a core inode ... for each table describing the
  structure of the contained data, the different fields of the table,
  and a list of subject's inodes."  Layout::

      schema_root/
        <type_name>              (KIND_TABLE, payload = schema JSON,
                                  children = uid -> record inode)

* **Format descriptors** — "a dedicated set of inodes describes the
  general structure of the data encoded in the inode subtree of each
  subject: meant to be accessed only once by the filesystem during a
  given live session."  Read lazily once and cached per live session::

      formats_root/
        <type_name>              (KIND_FORMAT, payload = encoding spec)

Enforcement at this boundary (paper § 2, rules 3 and 4):

* every ``store`` must carry a membrane (:class:`MissingMembraneError`
  otherwise) — invariant 3;
* every entry point requires a DED credential
  (:class:`PDLeakError` otherwise) — invariant 4.  The kernel-level
  LSM policy enforces the same rule one layer down; DBFS checks again
  because defense in depth is the point of an end-to-end design.

GDPR-specific storage behaviour:

* **sensitive-field separation** — fields marked ``sensitive`` are
  stored in a physically separate inode (the paper: "sensitive data
  (e.g., a social security number) be stored separately from less
  sensitive data (e.g. a name)");
* **privacy-preserving journaling** — DBFS journals operation
  *metadata only* (uids, never payloads), so its own crash-recovery
  log cannot violate the right to be forgotten the way the baseline's
  data journal does;
* **erasure that actually erases** — ``delete`` scrubs data blocks;
  in ``escrow`` mode the record is first re-encrypted under the
  authority's public key (§ 4) and the ciphertext takes its place.
"""

from __future__ import annotations

import functools
import itertools
import json
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from .. import errors
from ..core.active_data import AccessCredential, PDRef
from ..core.crypto import EscrowBlob, OperatorKey
from ..core.datatypes import PDType
from ..core.membrane import Membrane
from ..obs import NULL_TELEMETRY, Telemetry
from .block import BlockDevice, store_bytes
from .btree import (
    DEFAULT_PAGE_CAPACITY,
    BloomFilter,
    DurableFieldIndex,
    FieldIndex,
    bloom_key,
)
from .cache import MISSING, CacheConfig, DEFAULT_CACHE_CONFIG, LRUCache
from .codec import (
    ENCODING_V1,
    ENCODING_V2,
    RecordCodec,
    codec_for_format,
    decode_any,
    decode_record_v1,
    encode_record_v1,
    is_v2_payload,
)
from .planner import STRATEGY_INDEX, QueryPlan, compile_residual, plan_query
from .inode import (
    KIND_DIRECTORY,
    KIND_FORMAT,
    KIND_INDEX,
    KIND_MEMBRANE,
    KIND_RECORD,
    KIND_SUBJECT,
    KIND_TABLE,
    Inode,
    InodeTable,
)
from .journal import TXN_COMMIT, TXN_DELETE, Journal, JournalConfig
from .mvcc import MVCCState, Snapshot
from .query import (
    OP_EQ,
    OP_GE,
    OP_GT,
    OP_LE,
    OP_LT,
    OP_NE,
    DataQuery,
    DeleteRequest,
    MembraneQuery,
    Predicate,
    StoreRequest,
    UpdateRequest,
)

_uid_counter = itertools.count(1)


def _encode_record(record: Mapping[str, object]) -> bytes:
    """v1 JSON encoding (kept for escrow blobs and v1-encoded tables).

    The authority-escrow path always uses this codec: the ciphertext
    must stay decodable by the authority without the operator's format
    descriptors.  Table rows go through :meth:`DatabaseFS._encode_payload`
    instead, which dispatches on the type's negotiated encoding.
    """
    return encode_record_v1(dict(record))


def _decode_record(raw: bytes) -> Dict[str, object]:
    return decode_record_v1(raw)


def _locked_writer(method):
    """Serialize a mutating DBFS method under the per-store write lock.

    One writer at a time per shard is the concurrency contract the
    journal's group commit depends on (BEGIN/op/COMMIT sequences from
    two threads must never interleave in the log).  The lock is an
    RLock so composed paths — ``store_many`` → ``store``, ``delete`` →
    ``put_membrane`` — re-enter freely.  Readers do NOT take this
    lock: they run against MVCC snapshots plus the short index lock,
    so a scan never waits out a journal flush.
    """

    @functools.wraps(method)
    def wrapper(self, *args, **kwargs):
        with self._write_lock:
            return method(self, *args, **kwargs)

    return wrapper


@dataclass
class DBFSStats:
    """Operation counters DBFS maintains for the benchmarks."""

    stores: int = 0
    bulk_stores: int = 0
    membrane_queries: int = 0
    data_queries: int = 0
    updates: int = 0
    deletes: int = 0
    denied_accesses: int = 0
    format_reads: int = 0
    listing_cache_hits: int = 0
    listing_cache_misses: int = 0
    membrane_cache_hits: int = 0
    membrane_cache_misses: int = 0
    plans: int = 0
    full_decodes: int = 0
    partial_decodes: int = 0
    fields_decoded: int = 0
    index_page_reads: int = 0
    index_bloom_hits: int = 0
    index_bloom_skips: int = 0
    compactions: int = 0
    compacted_indexes: int = 0
    compaction_blocks_reclaimed: int = 0


class _StatCounter:
    """Counter handed to durable indexes: bumps a DBFSStats field and
    (when telemetry is enabled) the equally-named registry counter, so
    both benchmarks and ``repro stats`` see the same numbers."""

    __slots__ = ("_stats", "_attr", "_telemetry_counter")

    def __init__(self, stats: DBFSStats, attr: str, telemetry_counter=None):
        self._stats = stats
        self._attr = attr
        self._telemetry_counter = telemetry_counter

    def inc(self, amount: int = 1) -> None:
        setattr(self._stats, self._attr,
                getattr(self._stats, self._attr) + amount)
        if self._telemetry_counter is not None:
            self._telemetry_counter.inc(amount)


class DatabaseFS:
    """The PD filesystem.  See module docstring for the layout."""

    def __init__(
        self,
        device: Optional[BlockDevice] = None,
        operator_key: Optional[OperatorKey] = None,
        journal_blocks: int = 256,
        cache_config: Optional[CacheConfig] = None,
        journal_config: Optional[JournalConfig] = None,
        telemetry: Optional[Telemetry] = None,
        record_codec: str = "v2",
        scan_batch_rows: int = 256,
        bloom_filters: bool = True,
        index_page_capacity: int = DEFAULT_PAGE_CAPACITY,
    ) -> None:
        self.cache_config = cache_config if cache_config is not None else DEFAULT_CACHE_CONFIG
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        if record_codec not in ("v1", "v2"):
            raise errors.DBFSError(
                f"unknown record codec {record_codec!r} (valid: v1, v2)"
            )
        #: Encoding written into *new* format descriptors; existing
        #: tables keep whatever their descriptor negotiated.
        self._record_codec = record_codec
        #: Rows per chunk on the batched read path; 0 restores the
        #: row-at-a-time legacy scan (the batching benchmark's baseline).
        self.scan_batch_rows = scan_batch_rows
        #: Per-table subject/uid bloom filters gating negative lookups.
        self.bloom_filters = bloom_filters
        self._index_page_capacity = index_page_capacity
        self.device = device or BlockDevice(
            page_cache_blocks=self.cache_config.page_cache_blocks,
            telemetry=self.telemetry,
        )
        # Inode capacity tracks the device: a bigger device (the
        # sharding benchmarks size devices per population slice) gets
        # a proportionally bigger table; the default 65536-block
        # device keeps the historical 65536-inode cap.
        self.inodes = InodeTable(
            self.device, max_inodes=max(65536, self.device.block_count)
        )
        self._operator_key = operator_key
        # Metadata-only journal (no PD payloads ever).
        self.journal = Journal(
            self.device, reserved_blocks=journal_blocks, config=journal_config,
            telemetry=self.telemetry,
        )

        self._subjects_root = self.inodes.allocate(KIND_DIRECTORY)
        self._schema_root = self.inodes.allocate(KIND_DIRECTORY)
        self._formats_root = self.inodes.allocate(KIND_DIRECTORY)
        # Fourth root: durable field-index pages and persisted bloom
        # filters hang here, outside the subject/schema trees, so the
        # reachability sweep and remount can treat them uniformly.
        self._indexes_root = self.inodes.allocate(KIND_DIRECTORY)
        # Role markers + journal extent let remount_from_device find
        # the trees and the journal from surviving state alone.
        self._subjects_root.attrs["role"] = "subjects-root"
        self._schema_root.attrs["role"] = "schema-root"
        self._formats_root.attrs["role"] = "formats-root"
        self._indexes_root.attrs["role"] = "indexes-root"
        self._subjects_root.attrs["journal_extent"] = self.journal.extent

        self._init_concurrency()
        self._init_volatile()
        self.stats = DBFSStats()
        self._init_accel_counters()
        #: Crash-reconciliation report of the last remount_from_device
        #: (rolled-back stores, redone erasures, orphan sweeps).
        self.recovery_report: Dict[str, int] = {}

    def _init_accel_counters(self) -> None:
        """Counters/histograms shared by the accelerator structures.

        Created once per DBFS object (they wrap ``self.stats``, which
        also lives object-long); the telemetry legs are null objects
        when telemetry is disabled, so the hot paths never branch.
        """
        self._ctr_page_reads = _StatCounter(
            self.stats, "index_page_reads",
            self.telemetry.counter("index.page_reads"),
        )
        self._ctr_bloom_hits = _StatCounter(
            self.stats, "index_bloom_hits",
            self.telemetry.counter("index.bloom_hits"),
        )
        self._ctr_bloom_skips = _StatCounter(
            self.stats, "index_bloom_skips",
            self.telemetry.counter("index.bloom_skips"),
        )
        self._hist_remount = self.telemetry.histogram("dbfs.remount")
        self._hist_index_attach = self.telemetry.histogram(
            "dbfs.remount.index_attach"
        )

    def _init_concurrency(self) -> None:
        """Create the two locks the request engine's contract rests on.

        ``_write_lock`` — per-shard single writer; every mutating
        entry point holds it end to end (see :func:`_locked_writer`).
        ``_index_lock`` — guards the volatile lookup structures
        (record/membrane indexes, field indexes, listing cache,
        lineage index) for *short* critical sections only, so snapshot
        readers synchronize with writers on index mutation without
        ever waiting for journal or device IO.
        """
        self._write_lock = threading.RLock()
        self._index_lock = threading.RLock()
        # TTL observers survive an in-place remount (the registrations
        # belong to daemons, not to the derived state _init_volatile
        # rebuilds); remount_from_device starts with a fresh list, and
        # the expiry daemon re-seeds its wheel from the membranes
        # (ExpiryDaemon.rebind is the re-attach path for that case).
        self.ttl_observers: List[Callable[[str, str, Optional[float]], None]] = []
        # Mutation observers: the replication capture point.  Each
        # fires *after* a mutation's journal transaction commits, with
        # (op, payload) sufficient to replay the op on another node.
        # Same lifecycle as ttl_observers.
        self.mutation_observers: List[
            Callable[[str, Dict[str, object]], None]
        ] = []
        # A delete's _finish_erase persists the membrane through
        # put_membrane; replaying that nested membrane_update *before*
        # the delete op would leave an "erased" membrane over a live
        # plaintext record on followers.  The delete path raises this
        # flag so only its own op record ships.
        self._suppress_mutation_notify = False

    def _init_volatile(self) -> None:
        """(Re)create every derived, in-memory-only structure.

        Everything assigned here is rebuilt from the durable planes on
        remount; nothing in it survives a crash.
        """
        #: MVCC commit counter + snapshot bookkeeping (session-local:
        #: snapshots do not survive a remount, and must not — the
        #: chains reference pre-crash membrane states).
        self.mvcc = MVCCState()
        self._types: Dict[str, PDType] = {}
        self._record_index: Dict[str, int] = {}      # uid -> record inode no
        self._membrane_index: Dict[str, int] = {}    # uid -> membrane inode no
        self._escrow_blobs: Dict[str, EscrowBlob] = {}
        self._format_cache: Dict[str, Dict[str, object]] = {}  # per live session
        # Compiled v2 row codecs, one per live format descriptor (None
        # for v1 tables).  Lives and dies with _format_cache.
        self._codec_cache: Dict[str, Optional[RecordCodec]] = {}
        # Secondary field indexes: (type, field) -> index.  Values are
        # DurableFieldIndex (on-device pages) for dbfs-owned indexes;
        # the in-memory FieldIndex shares the same interface and still
        # backs direct embedders.
        self._field_indexes: Dict[Tuple[str, str], object] = {}
        # Per-table subject/uid bloom filters ("S:<subject>" and
        # "U:<uid>" keys): definite-absent answers for negative lookups
        # without touching membranes.  Rebuilt from the trees on
        # remount; persisted bits (flush_accelerators) are OR-unioned
        # in, so the filter over-approximates and never false-negatives.
        self._table_blooms: Dict[str, BloomFilter] = {}
        # Incremental-compaction resume point: the last uid the
        # record-rewrite plane finished (None = wave not in progress).
        # Volatile on purpose — a remount restarts the wave.
        self._compact_cursor: Optional[str] = None
        # Lineage index: copy-group id -> member uids.  Keeps the
        # built-in copy/consent-propagation path O(group) instead of a
        # full membrane scan; rebuilt from membranes on remount.
        self._lineage_index: Dict[str, set] = {}
        # Membrane JSON cache: avoids re-reading the membrane inode's
        # blocks on every decision.  Invariant: the cache always holds
        # exactly what the inode holds (put_membrane writes both).
        # LRU-bounded: eviction is safe because _load_membrane re-reads
        # the inode on a miss.
        self._membrane_json_cache = LRUCache(
            self.cache_config.membrane_cache_entries,
            name="membrane-json-cache",
        )
        # Decoded-record cache (uid -> merged public+sensitive dict).
        # Values are copied on both insert and return: callers mutate
        # the dict they get back (update() does), and a cache handing
        # out its own storage would let one caller corrupt another's
        # view.  Invalidated on delete, refreshed on update, cleared on
        # evolve_type/remount.
        self._record_cache = LRUCache(
            self.cache_config.record_cache_records, name="record-cache"
        )
        # Sorted per-table uid listing (type -> sorted uids), so
        # _select_scan/_candidate_uids stop re-sorting table.children
        # on every query.  Invalidated on store/delete of that type.
        self._listing_cache: Dict[str, List[str]] = {}
        # Decoded Membrane objects (uid -> Membrane), sharing one
        # object per uid instead of re-running Membrane.from_json per
        # decision.  Safe because every mutation site follows the
        # get -> mutate -> put_membrane discipline and put_membrane
        # refreshes this cache alongside the JSON cache.  Shares the
        # membrane_cache_entries bound with the JSON cache above.
        self._membrane_cache = LRUCache(
            self.cache_config.membrane_cache_entries,
            name="membrane-object-cache",
        )

    # ------------------------------------------------------------------
    # Access control
    # ------------------------------------------------------------------

    def _require_ded(self, credential: AccessCredential, operation: str) -> None:
        """Invariant 4: only the DED touches DBFS."""
        if not credential.is_ded:
            self.stats.denied_accesses += 1
            raise errors.PDLeakError(
                f"direct DBFS access ({operation}) by {credential.holder!r} "
                "blocked: only the Data Execution Domain may access DBFS"
            )

    # ------------------------------------------------------------------
    # Schema management (types must exist before use)
    # ------------------------------------------------------------------

    @_locked_writer
    def create_type(self, pd_type: PDType, credential: AccessCredential) -> None:
        """Declare a PD type (a table) — prerequisite to storing data."""
        self._require_ded(credential, "create_type")
        if pd_type.name in self._types:
            raise errors.DBFSError(f"type {pd_type.name!r} already declared")
        table = self.inodes.allocate(KIND_TABLE)
        self.inodes.write_payload(
            table.number, json.dumps(pd_type.describe(), sort_keys=True).encode()
        )
        self.inodes.link_child(self._schema_root.number, pd_type.name, table.number)
        # Format descriptor: how records of this type are encoded in the
        # subject subtrees — read once per live session (see _format_of).
        # The encoding is negotiated here: binary-v2 descriptors carry
        # the append-only field_order list every v2 row's offset table
        # is indexed against.
        format_inode = self.inodes.allocate(KIND_FORMAT)
        format_spec = {
            "type": pd_type.name,
            "encoding": (
                ENCODING_V2 if self._record_codec == "v2" else ENCODING_V1
            ),
            "public_fields": sorted(pd_type.field_names - pd_type.sensitive_fields),
            "sensitive_fields": sorted(pd_type.sensitive_fields),
            "membrane_encoding": "json",
        }
        if self._record_codec == "v2":
            format_spec["field_order"] = sorted(pd_type.field_names)
        self.inodes.write_payload(
            format_inode.number, json.dumps(format_spec, sort_keys=True).encode()
        )
        self.inodes.link_child(
            self._formats_root.number, pd_type.name, format_inode.number
        )
        self._types[pd_type.name] = pd_type
        if self.bloom_filters:
            self._table_blooms[pd_type.name] = BloomFilter.sized(4096)
        self._journal_op("create_type", pd_type.name)
        self._notify_mutation("create_type", {"pd_type": pd_type})

    @_locked_writer
    def evolve_type(
        self, new_type: PDType, credential: AccessCredential
    ) -> PDType:
        """Schema evolution: replace a type's declaration compatibly.

        Applications outlive their first schema.  Evolution is allowed
        when every already-stored record remains valid and no field's
        storage placement changes:

        * existing fields are immutable (name, type, required,
          sensitive) — changing them would reinterpret or relocate
          stored data;
        * new fields must be optional (old records lack them);
        * views, default consents, collection interfaces, TTL,
          sensitivity and origin may change freely (they only affect
          *future* membranes and projections).

        The schema inode and format descriptor are rewritten; the
        table's schema version is bumped.
        """
        self._require_ded(credential, "evolve_type")
        current = self.get_type(new_type.name)

        current_fields = {f.name: f for f in current.fields}
        new_fields = {f.name: f for f in new_type.fields}
        removed = set(current_fields) - set(new_fields)
        if removed:
            raise errors.SchemaViolationError(
                f"evolution of {new_type.name!r} removes fields "
                f"{sorted(removed)}; fields are append-only"
            )
        for name, old_field in current_fields.items():
            if new_fields[name] != old_field:
                raise errors.SchemaViolationError(
                    f"evolution of {new_type.name!r} modifies existing "
                    f"field {name!r}; existing fields are immutable"
                )
        for name in set(new_fields) - set(current_fields):
            if new_fields[name].required:
                raise errors.SchemaViolationError(
                    f"evolution of {new_type.name!r} adds required field "
                    f"{name!r}; new fields must be optional"
                )

        table = self.inodes.lookup(self._schema_root.number, new_type.name)
        self.inodes.rewrite_scrubbed(
            table.number,
            json.dumps(new_type.describe(), sort_keys=True).encode(),
        )
        table.attrs["schema_version"] = table.attrs.get("schema_version", 1) + 1

        format_inode = self.inodes.lookup(
            self._formats_root.number, new_type.name
        )
        # Evolution is the v1 -> v2 upgrade point: the rewritten
        # descriptor always declares binary-v2, with the field order
        # extended append-only (existing ordinals never move, so rows
        # written before the evolution keep decoding; rows already on
        # disk as v1 JSON remain readable via per-row auto-detection).
        old_spec = self._format_of(new_type.name)
        old_order = list(old_spec.get("field_order") or [])
        known = set(old_order)
        field_order = old_order + sorted(
            name for name in new_type.field_names if name not in known
        )
        format_spec = {
            "type": new_type.name,
            "encoding": ENCODING_V2,
            "public_fields": sorted(
                new_type.field_names - new_type.sensitive_fields
            ),
            "sensitive_fields": sorted(new_type.sensitive_fields),
            "membrane_encoding": "json",
            "field_order": field_order,
        }
        self.inodes.rewrite_scrubbed(
            format_inode.number,
            json.dumps(format_spec, sort_keys=True).encode(),
        )
        self._format_cache.pop(new_type.name, None)
        self._codec_cache.pop(new_type.name, None)
        # Cached decoded records embed the old schema's field split;
        # drop them all (evolutions are rare, the cache refills fast).
        self._record_cache.clear()
        self._types[new_type.name] = new_type
        self._journal_op("evolve_type", new_type.name)
        self._notify_mutation("evolve_type", {"pd_type": new_type})
        return new_type

    def schema_version(self, type_name: str) -> int:
        table = self.inodes.lookup(self._schema_root.number, type_name)
        return table.attrs.get("schema_version", 1)

    def get_type(self, name: str) -> PDType:
        pd_type = self._types.get(name)
        if pd_type is None:
            raise errors.UnknownTypeError(
                f"PD type {name!r} not declared in DBFS "
                "(types must be created prior to use)"
            )
        return pd_type

    def list_types(self) -> List[str]:
        return sorted(self._types)

    def _format_of(self, type_name: str) -> Dict[str, object]:
        """Format descriptor, loaded once per live session then cached."""
        cached = self._format_cache.get(type_name)
        if cached is not None:
            return cached
        inode = self.inodes.lookup(self._formats_root.number, type_name)
        spec = json.loads(self.inodes.read_payload(inode.number).decode())
        self._format_cache[type_name] = spec
        self.stats.format_reads += 1
        return spec

    def _codec_of(self, type_name: str) -> Optional[RecordCodec]:
        """Compiled v2 codec for the type, or None for v1 tables.

        Compiled once per live format descriptor; invalidated together
        with ``_format_cache`` (evolve_type, remount).
        """
        codec = self._codec_cache.get(type_name, MISSING)
        if codec is MISSING:
            codec = codec_for_format(self._format_of(type_name))
            self._codec_cache[type_name] = codec
        return codec  # type: ignore[return-value]

    def _encode_payload(
        self, type_name: str, record: Mapping[str, object]
    ) -> bytes:
        """Encode a row (or row half) with the type's negotiated codec."""
        codec = self._codec_of(type_name)
        if codec is None:
            return _encode_record(record)
        return codec.encode(dict(record))

    # ------------------------------------------------------------------
    # Secondary field indexes
    # ------------------------------------------------------------------

    #: Field types whose values order totally (indexable).
    _INDEXABLE_TYPES = frozenset({"int", "float", "string", "date"})

    @_locked_writer
    def create_index(
        self, type_name: str, field_name: str, credential: AccessCredential
    ) -> DurableFieldIndex:
        """Build a durable B-tree index over one field of one type.

        Sensitive fields are not indexable: their values must never
        leave the separate sensitive inode, and an index would scatter
        them through its page structure.  Existing records are
        backfilled into on-device index pages under the indexes root;
        the declaration lands in the table attrs only once the backfill
        completed, so a crash mid-build leaves an undeclared (and
        therefore swept) root rather than a half-populated index.
        """
        self._require_ded(credential, "create_index")
        pd_type = self.get_type(type_name)
        field_def = pd_type.field(field_name)
        if field_def.sensitive:
            raise errors.DBFSError(
                f"field {field_name!r} is sensitive and cannot be indexed"
            )
        if field_def.field_type not in self._INDEXABLE_TYPES:
            raise errors.DBFSError(
                f"field type {field_def.field_type!r} is not indexable"
            )
        key = (type_name, field_name)
        if key in self._field_indexes:
            raise errors.DBFSError(
                f"index on {type_name}.{field_name} already exists"
            )
        table = self.inodes.lookup(self._schema_root.number, type_name)
        index = self._backfill_index(type_name, field_name)
        declared = table.attrs.setdefault("indexes", [])
        if field_name not in declared:
            declared.append(field_name)
        self._journal_op("create_index", f"{type_name}.{field_name}")
        self._notify_mutation(
            "create_index", {"type_name": type_name, "field_name": field_name}
        )
        return index

    def _index_kwargs(self) -> Dict[str, object]:
        """Construction knobs shared by every durable index of this store."""
        return {
            "page_capacity": self._index_page_capacity,
            "page_reads": self._ctr_page_reads,
            "bloom_hits": self._ctr_bloom_hits,
            "bloom_skips": self._ctr_bloom_skips,
        }

    def _backfill_index(
        self, type_name: str, field_name: str
    ) -> DurableFieldIndex:
        """(Re)build one durable index from the live records.

        Any existing root for the pair is dropped first (a crash may
        have left an incomplete one).  The ``complete`` attr lands only
        after the last page write — it is the atomic metadata marker
        attach trusts.
        """
        self._drop_index_root(type_name, field_name)
        index = DurableFieldIndex.create(
            self.inodes, self._indexes_root.number, type_name, field_name,
            **self._index_kwargs(),
        )
        pairs = []
        for uid in self._table_listing(type_name):
            inode = self.inodes.get(self._record_index[uid])
            if "erased" in inode.attrs:
                if inode.attrs["erased"]:
                    continue
            elif self._load_membrane(uid).erased:  # pre-marker records
                continue
            try:
                record = self._load_record_raw(uid)
            except errors.ExpiredPDError:
                continue
            if field_name in record:
                pairs.append((record[field_name], uid))
        index.bulk_build(pairs)
        self.inodes.get(index.root_no).attrs["complete"] = True
        with self._index_lock:
            self._field_indexes[(type_name, field_name)] = index
        return index

    def _drop_index_root(self, type_name: str, field_name: str) -> None:
        """Unlink and scrub one durable index tree (pages hold PD values).

        Unlink-before-free ordering: once the root leaves the indexes
        root's children the whole tree is unreachable, so a crash
        mid-scrub leaves debris the recovery sweeps finish off.
        """
        name = f"{type_name}.{field_name}"
        root_no = self._indexes_root.children.get(name)
        if root_no is None:
            return
        root = self.inodes.get(root_no)
        self.inodes.unlink_child(self._indexes_root.number, name)
        for child_name in list(root.children):
            child_no = root.children[child_name]
            self.inodes.unlink_child(root_no, child_name)
            if self.inodes.exists(child_no):
                self.inodes.free(child_no, scrub=True)
        self.inodes.free(root_no, scrub=True)

    def has_index(self, type_name: str, field_name: str) -> bool:
        return (type_name, field_name) in self._field_indexes

    def indexed_fields(self) -> List[Tuple[str, str]]:
        """Sorted (type, field) pairs with a live index (schema sync)."""
        with self._index_lock:
            return sorted(self._field_indexes)

    def select_uids(
        self,
        type_name: str,
        predicate: Predicate,
        credential: AccessCredential,
        snapshot: Optional[Snapshot] = None,
    ) -> List[str]:
        """uids of live records matching one comparison predicate.

        Uses the field index when one exists (logarithmic + output
        size); falls back to a full record scan otherwise.  This is
        the pushdown entry the ABL-I benchmark compares.  With a
        ``snapshot``, records stored after the snapshot began are
        filtered out of either path.
        """
        self._require_ded(credential, "select_uids")
        self.get_type(type_name)
        with self._index_lock:
            index = self._field_indexes.get((type_name, predicate.field_name))
        indexed = index is not None and predicate.op in (
            OP_EQ, OP_NE, OP_LT, OP_LE, OP_GT, OP_GE
        )
        with self.telemetry.op(
            "dbfs.select", pd_type=type_name,
            field=predicate.field_name, indexed=indexed,
        ) as span:
            if indexed:
                uids = self._select_indexed(index, predicate)
            else:
                uids = self._select_scan(type_name, predicate)
            if snapshot is not None:
                uids = [
                    uid for uid in uids
                    if self.mvcc.visible(uid, snapshot.version)
                ]
            span.set_attr("matched", len(uids))
            return uids

    def _select_indexed(
        self, index: FieldIndex, predicate: Predicate
    ) -> List[str]:
        # The whole B-tree traversal runs under the index lock: a
        # writer splitting a node mid-range-walk would corrupt the
        # result.  Writers hold the same lock only for their (short)
        # add/remove, so this never waits out journal or device IO.
        value = predicate.value
        with self._index_lock:
            if predicate.op == OP_EQ:
                return sorted(index.exact(value))
            if predicate.op == OP_NE:
                # Full range minus exact matches.  The index holds exactly
                # the live records carrying the field, and a record lacking
                # the field never matches any predicate (SQL NULL rules),
                # so this equals the scan result without touching records.
                return sorted(set(index.range()) - set(index.exact(value)))
            if predicate.op == OP_LT:
                return sorted(index.range(high=value))
            if predicate.op == OP_GE:
                return sorted(index.range(low=value))
            if predicate.op == OP_LE:
                # [min, value] == range(high=value) + exact(value)
                return sorted(
                    set(index.range(high=value)) | set(index.exact(value))
                )
            # OP_GT: (value, max] == range(low=value) minus exact(value)
            return sorted(set(index.range(low=value)) - set(index.exact(value)))

    def _select_scan(
        self,
        type_name: str,
        predicate: Predicate,
        snapshot: Optional[Snapshot] = None,
    ) -> List[str]:
        if not self.scan_batch_rows:
            # Legacy row-at-a-time scan (kept as the batching
            # benchmark's baseline, selected with scan_batch_rows=0).
            matches = []
            for uid in self._table_listing(type_name):
                if snapshot is not None and not self.mvcc.visible(
                    uid, snapshot.version
                ):
                    continue
                membrane = self._load_membrane(uid)
                if membrane.erased:
                    continue
                try:
                    record = self._load_record_raw(uid)
                except errors.ExpiredPDError:
                    # Erased by a concurrent writer between the membrane
                    # check and the payload read — skip, same as erased.
                    continue
                if predicate.evaluate(record):
                    matches.append(uid)
            return matches
        evaluate = compile_residual((predicate,))
        matches = []
        for rows in self._iter_live_batches(
            type_name, self._table_listing(type_name),
            (predicate.field_name,), snapshot,
        ):
            matches.extend(uid for uid, record in rows if evaluate(record))
        return matches

    def _iter_live_batches(
        self,
        type_name: str,
        uids: Sequence[str],
        fields: Sequence[str],
        snapshot: Optional[Snapshot] = None,
    ) -> Iterator[List[Tuple[str, Dict[str, object]]]]:
        """Yield ``(uid, projected_record)`` rows in visibility-filtered
        chunks of ``scan_batch_rows``.

        This is the zero-copy batched read path: per chunk, MVCC
        visibility is answered in one lock acquisition
        (:meth:`MVCCState.visible_many`), then each live row is read as
        a :class:`memoryview` straight off its block
        (``read_payload_view``) and partially decoded to just
        ``fields`` through the v2 offset table.  Erasure is decided
        from the record inode's ``erased`` attr — no membrane loads on
        the scan path.  The sensitive sibling inode is only touched
        when a wanted field is sensitive; v1 straggler rows fall back
        to the cached full decode.
        """
        wanted = frozenset(fields)
        codec = self._codec_of(type_name)
        sensitive_wanted: FrozenSet[str] = frozenset()
        if codec is not None:
            fmt = self._format_of(type_name)
            sensitive_wanted = wanted.intersection(fmt["sensitive_fields"])
        batch_rows = max(1, self.scan_batch_rows)
        record_cache = self._record_cache
        record_index = self._record_index
        inodes = self.inodes
        for start in range(0, len(uids), batch_rows):
            chunk = uids[start:start + batch_rows]
            if snapshot is not None:
                chunk = self.mvcc.visible_many(chunk, snapshot.version)
            rows: List[Tuple[str, Dict[str, object]]] = []
            for uid in chunk:
                inode_no = record_index.get(uid)
                if inode_no is None:
                    continue
                inode = inodes.get(inode_no)
                if "erased" in inode.attrs:
                    if inode.attrs["erased"]:
                        continue
                elif self._load_membrane(uid).erased:  # pre-marker records
                    continue
                cached = record_cache.get(uid)
                if cached is not MISSING:
                    rows.append((
                        uid,
                        {k: v for k, v in cached.items() if k in wanted},  # type: ignore[union-attr]
                    ))
                    continue
                raw = inodes.read_payload_view(inode_no)
                if not len(raw):
                    continue  # erase's scrub half ran; mark in flight
                if codec is not None and is_v2_payload(raw):
                    record = codec.decode_fields(raw, wanted)
                    if sensitive_wanted:
                        sensitive_no = inode.attrs.get("sensitive_inode")
                        if sensitive_no is not None:
                            record.update(codec.decode_fields(
                                inodes.read_payload_view(sensitive_no),
                                sensitive_wanted,
                            ))
                    self.stats.partial_decodes += 1
                    self.stats.fields_decoded += len(record)
                else:
                    try:
                        full = self._load_record_raw(uid)
                    except errors.ExpiredPDError:
                        continue
                    record = {k: v for k, v in full.items() if k in wanted}
                rows.append((uid, record))
            yield rows

    # ------------------------------------------------------------------
    # Planned multi-predicate selection
    # ------------------------------------------------------------------

    def explain(
        self,
        type_name: str,
        predicates: Sequence[Predicate],
        credential: AccessCredential,
    ) -> QueryPlan:
        """The plan :meth:`select_uids_where` would run, without running it."""
        self._require_ded(credential, "explain")
        self.get_type(type_name)
        return self._plan(type_name, tuple(predicates))

    def select_uids_where(
        self,
        type_name: str,
        predicates: Sequence[Predicate],
        credential: AccessCredential,
        snapshot: Optional[Snapshot] = None,
    ) -> List[str]:
        """uids of live records satisfying *all* predicates (conjunction).

        The planner picks the most selective indexed predicate as the
        driving lookup (per-index cardinality stats), then evaluates
        the residual predicates on each candidate via partial decode of
        only the fields they touch.  With no indexable predicate the
        whole table is scanned, but still with partial decode, so a v2
        row never pays a full ``json.loads``-style materialisation just
        to be rejected.  An empty predicate list selects every live
        record of the type.
        """
        self._require_ded(credential, "select_uids_where")
        self.get_type(type_name)
        predicates = tuple(predicates)
        with self.telemetry.op(
            "dbfs.select_where", pd_type=type_name,
            predicates=len(predicates),
        ) as span:
            plan = self._plan(type_name, predicates)
            uids = self._execute_plan(plan, snapshot)
            span.set_attrs(
                strategy=plan.strategy,
                index_field=plan.index_field,
                estimated=plan.estimated_rows,
                matched=len(uids),
            )
            return uids

    def _plan(
        self, type_name: str, predicates: Tuple[Predicate, ...]
    ) -> QueryPlan:
        with self.telemetry.op(
            "dbfs.plan", pd_type=type_name, predicates=len(predicates)
        ) as span:
            with self._index_lock:
                indexes = {
                    field_name: index
                    for (indexed_type, field_name), index
                    in self._field_indexes.items()
                    if indexed_type == type_name
                }
            plan = plan_query(
                type_name, predicates, indexes,
                table_rows=len(self._table_listing(type_name)),
            )
            self.stats.plans += 1
            span.set_attrs(
                strategy=plan.strategy,
                index_field=plan.index_field,
                estimated_rows=plan.estimated_rows,
                residual=len(plan.residual),
            )
            return plan

    def _execute_plan(
        self, plan: QueryPlan, snapshot: Optional[Snapshot] = None
    ) -> List[str]:
        fields_needed = plan.fields_needed
        partial_before = self.stats.partial_decodes
        full_before = self.stats.full_decodes
        batched = bool(self.scan_batch_rows)
        evaluate = compile_residual(plan.residual)
        if plan.strategy == STRATEGY_INDEX:
            with self._index_lock:
                index = self._field_indexes[(plan.type_name, plan.index_field)]
            candidates = self._select_indexed(index, plan.index_predicate)
            if snapshot is not None:
                candidates = self.mvcc.visible_many(
                    candidates, snapshot.version
                )
            if not plan.residual:
                return candidates  # index holds live records only
            # Residual filtering: decode just the residual fields of
            # each candidate (the index already proved liveness and the
            # driving predicate), a batch at a time on the zero-copy
            # read path.
            with self.telemetry.span(
                "dbfs.decode", rows=len(candidates),
                fields=list(fields_needed),
            ) as span:
                matches = []
                if batched:
                    for rows in self._iter_live_batches(
                        plan.type_name, candidates, fields_needed
                    ):
                        matches.extend(
                            uid for uid, record in rows if evaluate(record)
                        )
                else:
                    for uid in candidates:
                        try:
                            record = self._load_record_fields(
                                uid, fields_needed
                            )
                        except errors.ExpiredPDError:
                            continue  # erased by a concurrent writer
                        if evaluate(record):
                            matches.append(uid)
                span.set_attrs(
                    partial_decodes=self.stats.partial_decodes - partial_before,
                    full_decodes=self.stats.full_decodes - full_before,
                )
            return matches
        # Scan strategy: every live row, partial-decoded to the union
        # of the predicate fields; the compiled residual rejects rows
        # batch by batch.
        matches = []
        listing = self._table_listing(plan.type_name)
        with self.telemetry.span(
            "dbfs.decode", rows=len(listing), fields=list(fields_needed),
        ) as span:
            if batched and not plan.residual:
                # No residual: liveness + visibility only, no payloads.
                batch_rows = max(1, self.scan_batch_rows)
                for start in range(0, len(listing), batch_rows):
                    chunk = listing[start:start + batch_rows]
                    if snapshot is not None:
                        chunk = self.mvcc.visible_many(
                            chunk, snapshot.version
                        )
                    for uid in chunk:
                        inode_no = self._record_index.get(uid)
                        if inode_no is None:
                            continue
                        attrs = self.inodes.get(inode_no).attrs
                        if "erased" in attrs:
                            if attrs["erased"]:
                                continue
                        elif self._load_membrane(uid).erased:
                            continue
                        matches.append(uid)
            elif batched:
                for rows in self._iter_live_batches(
                    plan.type_name, listing, fields_needed, snapshot
                ):
                    matches.extend(
                        uid for uid, record in rows if evaluate(record)
                    )
            else:
                for uid in listing:
                    if snapshot is not None and not self.mvcc.visible(
                        uid, snapshot.version
                    ):
                        continue
                    if self._load_membrane(uid).erased:
                        continue
                    if not plan.residual:
                        matches.append(uid)
                        continue
                    try:
                        record = self._load_record_fields(uid, fields_needed)
                    except errors.ExpiredPDError:
                        continue  # erased by a concurrent writer
                    if evaluate(record):
                        matches.append(uid)
            span.set_attrs(
                partial_decodes=self.stats.partial_decodes - partial_before,
                full_decodes=self.stats.full_decodes - full_before,
            )
        return matches

    def _table_listing(self, type_name: str) -> List[str]:
        """Sorted uids of one table, cached until a store/delete.

        Callers iterate the returned list and must not mutate it.
        """
        with self._index_lock:
            if not self.cache_config.listing_cache:
                table = self.inodes.lookup(self._schema_root.number, type_name)
                return sorted(table.children)
            cached = self._listing_cache.get(type_name)
            if cached is not None:
                self.stats.listing_cache_hits += 1
                return cached
            table = self.inodes.lookup(self._schema_root.number, type_name)
            listing = sorted(table.children)
            self._listing_cache[type_name] = listing
            self.stats.listing_cache_misses += 1
            return listing

    def _index_record(
        self, type_name: str, uid: str, record: Mapping[str, object]
    ) -> None:
        with self._index_lock:
            for (indexed_type, field_name), index in self._field_indexes.items():
                if indexed_type == type_name and field_name in record:
                    index.add(record[field_name], uid)

    def _unindex_record(
        self, type_name: str, uid: str, record: Mapping[str, object]
    ) -> None:
        with self._index_lock:
            for (indexed_type, field_name), index in self._field_indexes.items():
                if indexed_type == type_name and field_name in record:
                    index.remove(record[field_name], uid)

    def _unindex_uid(self, uid: str) -> int:
        """Drop every index entry for ``uid`` without knowing its values.

        Crash-repair path: a rolled-back store or an interrupted
        update/erase may have left entries whose values recovery cannot
        (or must not) decode, so each of the type's indexes sweeps its
        own pages for the uid — which also recomputes the entry
        checksums exactly, healing any crash drift.
        """
        parts = uid.split(":")
        type_name = parts[1] if len(parts) >= 3 else None
        dropped = 0
        with self._index_lock:
            for (indexed_type, _), index in self._field_indexes.items():
                if type_name is not None and indexed_type != type_name:
                    continue
                dropped += index.remove_uid(uid)
        return dropped

    # ------------------------------------------------------------------
    # Store
    # ------------------------------------------------------------------

    def store(self, request: StoreRequest, credential: AccessCredential) -> PDRef:
        """Persist one PD record with its membrane; returns the ref."""
        with self.telemetry.op("dbfs.store", pd_type=request.pd_type) as span:
            ref = self._store_impl(request, credential)
            span.set_attrs(uid=ref.uid, subject_id=ref.subject_id)
            return ref

    @_locked_writer
    def _store_impl(
        self, request: StoreRequest, credential: AccessCredential
    ) -> PDRef:
        self._require_ded(credential, "store")
        pd_type = self.get_type(request.pd_type)
        if not request.membrane_json:
            raise errors.MissingMembraneError(
                f"store of {request.pd_type!r} record without a membrane "
                "(every PD in DBFS must be wrapped)"
            )
        membrane = Membrane.from_json(request.membrane_json)
        if membrane.pd_type != pd_type.name:
            raise errors.MembraneError(
                f"membrane is for type {membrane.pd_type!r}, "
                f"record is {pd_type.name!r}"
            )
        pd_type.validate(request.record)

        # Replication replay passes the leader-minted uid so the same
        # PD carries the same name on every node; local stores mint one.
        uid = request.uid or f"pd:{pd_type.name}:{next(_uid_counter):08d}"
        if uid in self._record_index:
            raise errors.DBFSError(f"uid {uid!r} already exists")
        fmt = self._format_of(pd_type.name)
        public = {
            k: v for k, v in request.record.items() if k in fmt["public_fields"]
        }
        sensitive = {
            k: v for k, v in request.record.items() if k in fmt["sensitive_fields"]
        }

        # WAL, intent-before-apply: the "store:<uid>" intent lands in
        # the journal *before* any tree write, and the COMMIT (or the
        # surrounding batch's group commit) seals it only after the
        # trees hold the full record.  A crash mid-apply therefore
        # leaves an uncommitted intent, which remount_from_device uses
        # to roll the half-born record back.
        self.journal.begin()
        self.journal.log_delete(f"store:{uid}")
        try:
            subject_inode = self._subject_inode(membrane.subject_id, create=True)
            record_inode = self.inodes.allocate(KIND_RECORD)
            self.inodes.write_payload(
                record_inode.number, self._encode_payload(pd_type.name, public)
            )
            record_inode.attrs["uid"] = uid
            record_inode.attrs["pd_type"] = pd_type.name
            # Lineage + erasure markers ride the metadata plane so
            # remount and the batched scan path never load a membrane
            # just to answer "is this row live / in which copy group".
            record_inode.attrs["lineage"] = membrane.lineage
            record_inode.attrs["erased"] = False

            if sensitive:
                sensitive_inode = self.inodes.allocate(KIND_RECORD)
                self.inodes.write_payload(
                    sensitive_inode.number,
                    self._encode_payload(pd_type.name, sensitive),
                )
                sensitive_inode.attrs["sensitive"] = True
                record_inode.attrs["sensitive_inode"] = sensitive_inode.number

            membrane_inode = self.inodes.allocate(KIND_MEMBRANE)
            self.inodes.write_payload(
                membrane_inode.number, membrane.to_json().encode()
            )
            record_inode.attrs["membrane_inode"] = membrane_inode.number

            # Link into both major trees and publish the volatile
            # lookup structures in one short index-lock section, so a
            # concurrent scan sees either none or all of them.
            with self._index_lock:
                self.inodes.link_child(
                    subject_inode.number, uid, record_inode.number
                )
                table_inode = self.inodes.lookup(
                    self._schema_root.number, pd_type.name
                )
                self.inodes.link_child(table_inode.number, uid, record_inode.number)

                self._record_index[uid] = record_inode.number
                self._membrane_index[uid] = membrane_inode.number
                self._membrane_json_cache.put(uid, membrane.to_json())
                if self.cache_config.membrane_object_cache:
                    self._membrane_cache.put(uid, membrane)
                self._record_cache.put(uid, dict(request.record))
                self._listing_cache.pop(pd_type.name, None)
                self._index_record(pd_type.name, uid, request.record)
                bloom = self._table_blooms.get(pd_type.name)
                if bloom is not None:
                    bloom.add(bloom_key("S:" + membrane.subject_id))
                    bloom.add(bloom_key("U:" + uid))
                if membrane.lineage:
                    self._lineage_index.setdefault(membrane.lineage, set()).add(uid)
        except BaseException:
            # Inside a batch the enclosing Journal.batch() aborts the
            # whole group; a solo store drops its own transaction.
            if not self.journal.in_batch:
                self.journal.abort()
            raise
        self.stats.stores += 1
        self.journal.commit()
        # MVCC begin version lands after the commit: snapshots begun
        # before this point filter the uid out; later ones see it.
        self.mvcc.stamp_store(uid)
        # TTL observers (the expiry daemon's timer wheel) hear about
        # the new deadline only after the record is durably committed.
        self._notify_ttl(uid, membrane.subject_id, membrane.expiry_deadline())
        self._notify_mutation(
            "store",
            {
                "uid": uid,
                "pd_type": pd_type.name,
                "subject_id": membrane.subject_id,
                "record": dict(request.record),
                "membrane_json": request.membrane_json,
            },
        )
        return PDRef(uid=uid, pd_type=pd_type.name, subject_id=membrane.subject_id)

    @_locked_writer
    def store_many(
        self, requests: Sequence[StoreRequest], credential: AccessCredential
    ) -> List[PDRef]:
        """Bulk store under one journal group commit.

        Semantically identical to N :meth:`store` calls; the only
        difference is the journal cost — N op records share a single
        BEGIN/COMMIT pair and one flush (see
        :meth:`repro.storage.journal.Journal.batch`).  The GDPRBench
        load phase uses this path.
        """
        self._require_ded(credential, "store_many")
        refs: List[PDRef] = []
        with self.telemetry.op("dbfs.store_many", count=len(requests)):
            with self.journal.batch():
                for request in requests:
                    refs.append(self.store(request, credential))
        self.stats.bulk_stores += 1
        return refs

    @contextmanager
    def batch(self) -> Iterator[None]:
        """Group-commit context over this store's journal(s).

        On a single DBFS this is :meth:`Journal.batch` verbatim; the
        sharded store opens one batch per shard journal.  Callers that
        want journal coalescing should use this rather than reaching
        for ``dbfs.journal`` directly, so the same code works against
        both layouts.

        The write lock is held for the whole batch: a group commit is
        one writer's transaction, and another thread's ops must not
        interleave into its BEGIN/COMMIT window.
        """
        with self._write_lock:
            with self.journal.batch():
                yield

    # ------------------------------------------------------------------
    # Membrane phase (ded_load_membrane)
    # ------------------------------------------------------------------

    def query_membranes(
        self,
        query: MembraneQuery,
        credential: AccessCredential,
        snapshot: Optional[Snapshot] = None,
    ) -> List[Tuple[PDRef, Membrane]]:
        """Fetch membranes matching the query — never any record data.

        With a ``snapshot``, records stored after the snapshot began
        are invisible, and each membrane reflects the consent state as
        of the snapshot's begin version (so a concurrent revocation
        does not flip a decision mid-request; the *next* snapshot sees
        it).
        """
        self._require_ded(credential, "query_membranes")
        self.get_type(query.pd_type)  # unknown types fail loudly
        with self.telemetry.op(
            "dbfs.query_membranes", pd_type=query.pd_type,
            subject_id=query.subject_id,
        ) as span:
            hits_before = self.stats.membrane_cache_hits
            self.stats.membrane_queries += 1
            if query.subject_id and query.uids is None:
                # Per-table bloom gate: a definite-absent subject skips
                # the whole listing walk (and every membrane load with
                # it).  The filter only over-approximates — stores add
                # keys before committing and remount rebuilds it from
                # the trees — so a "no" is always correct, including
                # under any snapshot: a subject invisible to the bloom
                # never had records at any version.
                bloom = self._table_blooms.get(query.pd_type)
                if bloom is not None:
                    if not bloom.might_contain(
                        bloom_key("S:" + query.subject_id)
                    ):
                        self._ctr_bloom_skips.inc()
                        span.set_attrs(matched=0, cache_hits=0)
                        return []
                    self._ctr_bloom_hits.inc()
            results: List[Tuple[PDRef, Membrane]] = []
            for uid in self._candidate_uids(query):
                if snapshot is not None and not self.mvcc.visible(
                    uid, snapshot.version
                ):
                    continue
                membrane = self._load_membrane(uid, snapshot)
                if membrane.pd_type != query.pd_type:
                    continue
                if query.subject_id and membrane.subject_id != query.subject_id:
                    continue
                if membrane.erased and not query.include_erased:
                    continue
                ref = PDRef(
                    uid=uid, pd_type=membrane.pd_type, subject_id=membrane.subject_id
                )
                results.append((ref, membrane))
            results.sort(key=lambda pair: pair[0].uid)
            span.set_attrs(
                matched=len(results),
                cache_hits=self.stats.membrane_cache_hits - hits_before,
            )
            return results

    def get_membrane(
        self,
        uid: str,
        credential: AccessCredential,
        snapshot: Optional[Snapshot] = None,
    ) -> Membrane:
        self._require_ded(credential, "get_membrane")
        return self._load_membrane(uid, snapshot)

    def _candidate_uids(self, query: MembraneQuery) -> List[str]:
        if query.uids is not None:
            return [uid for uid in query.uids if uid in self._record_index]
        return self._table_listing(query.pd_type)

    def _load_membrane(
        self, uid: str, snapshot: Optional[Snapshot] = None
    ) -> Membrane:
        if snapshot is not None:
            # A chained membrane changed after the snapshot began —
            # decode the as-of JSON fresh (never the shared cached
            # object, which tracks the live state).  No chain means
            # the live state *is* the as-of state.
            as_of = self.mvcc.membrane_json_as_of(uid, snapshot.version)
            if as_of is not None:
                return Membrane.from_json(as_of)
        if self.cache_config.membrane_object_cache:
            decoded = self._membrane_cache.get(uid)
            if decoded is not MISSING:
                self.stats.membrane_cache_hits += 1
                return decoded  # type: ignore[return-value]
        cached = self._membrane_json_cache.get(uid)
        if cached is not MISSING:
            membrane = Membrane.from_json(cached)  # type: ignore[arg-type]
        else:
            inode_no = self._membrane_index.get(uid)
            if inode_no is None:
                raise errors.UnknownRecordError(f"no PD with uid {uid!r}")
            raw = self.inodes.read_payload(inode_no).decode()
            self._membrane_json_cache.put(uid, raw)
            membrane = Membrane.from_json(raw)
        if self.cache_config.membrane_object_cache:
            self.stats.membrane_cache_misses += 1
            self._membrane_cache.put(uid, membrane)
        return membrane

    @_locked_writer
    def put_membrane(
        self, uid: str, membrane: Membrane, credential: AccessCredential
    ) -> None:
        """Persist a membrane change (consent grant/revoke, erasure flag)."""
        self._require_ded(credential, "put_membrane")
        inode_no = self._membrane_index.get(uid)
        if inode_no is None:
            raise errors.UnknownRecordError(f"no PD with uid {uid!r}")
        encoded = membrane.to_json()
        # Capture the pre-mutation state for MVCC: a snapshot that
        # began before this commit keeps reading the old consent JSON
        # through the membrane chain.  The JSON cache is write-through
        # with the inode, so a cache hit is authoritative.
        old_json = self._membrane_json_cache.peek(uid)
        if old_json is MISSING:
            old_json = self.inodes.read_payload(inode_no).decode()
        # Pre-register the publish: from here until stamp_membrane
        # commits, the new JSON is (or is about to be) live in the
        # inode and caches, and any snapshot — already active or
        # beginning inside this window — must keep resolving the old
        # consent state through the chain, not the live structures.
        self.mvcc.prepare_membrane(uid, old_json)  # type: ignore[arg-type]
        self.inodes.rewrite_scrubbed(inode_no, encoded.encode())
        # Write-through invariant: both membrane caches are refreshed
        # (or dropped) in the same step that rewrites the inode, so a
        # bounded cache can evict freely without ever serving a stale
        # consent state.
        self._membrane_json_cache.put(uid, encoded)
        if self.cache_config.membrane_object_cache:
            self._membrane_cache.put(uid, membrane)
        else:
            self._membrane_cache.invalidate(uid)
        # Keep the record inode's metadata markers in step with the
        # membrane (put_membrane is the single membrane-persist path).
        record_no = self._record_index.get(uid)
        if record_no is not None:
            record_attrs = self.inodes.get(record_no).attrs
            record_attrs["lineage"] = membrane.lineage
            record_attrs["erased"] = membrane.erased
        if membrane.lineage:
            with self._index_lock:
                self._lineage_index.setdefault(membrane.lineage, set()).add(uid)
        self._journal_op("membrane_update", uid)
        # Chain entry lands after the journal commit: revocation and
        # RTBF become visible to every snapshot begun from here on.
        self.mvcc.stamp_membrane(uid, old_json, encoded)  # type: ignore[arg-type]
        # An erasure cancels the TTL timer (nothing left to expire);
        # any other membrane change re-indexes the (possibly evolved)
        # deadline.  put_membrane is the single membrane-persist path,
        # so every TTL-bearing mutation funnels through here.
        self._notify_ttl(
            uid,
            membrane.subject_id,
            None if membrane.erased else membrane.expiry_deadline(),
        )
        self._notify_mutation(
            "membrane_update",
            {
                "uid": uid,
                "subject_id": membrane.subject_id,
                "membrane_json": encoded,
            },
        )

    def add_ttl_observer(
        self, observer: Callable[[str, str, Optional[float]], None]
    ) -> None:
        """Subscribe to TTL deadline changes.

        ``observer(uid, subject_id, deadline)`` fires after every
        committed store or membrane update; ``deadline`` is the
        absolute expiry instant (:meth:`Membrane.expiry_deadline`) or
        ``None`` when the PD has no TTL any more (no TTL set, or the
        membrane was just erased — either way the timer should drop).
        The expiry daemon's timer wheel is the intended subscriber.
        """
        self.ttl_observers.append(observer)

    def _notify_ttl(
        self, uid: str, subject_id: str, deadline: Optional[float]
    ) -> None:
        for observer in self.ttl_observers:
            observer(uid, subject_id, deadline)

    def add_mutation_observer(
        self, observer: Callable[[str, Dict[str, object]], None]
    ) -> None:
        """Subscribe to committed mutations (the replication tap).

        ``observer(op, payload)`` fires after each mutating operation's
        journal transaction commits — ops: ``store``, ``update``,
        ``delete``, ``membrane_update``, ``create_type``,
        ``evolve_type``, ``create_index`` — with a payload sufficient
        to replay the operation verbatim on a follower node
        (``repro.cluster`` is the intended subscriber).  Payloads for
        ``store`` carry the plaintext record only in flight; the
        cluster's shipping log redacts them the moment an erasure for
        the same uid is captured.
        """
        self.mutation_observers.append(observer)

    def remove_mutation_observer(
        self, observer: Callable[[str, Dict[str, object]], None]
    ) -> None:
        """Unsubscribe (failover demotes a leader by dropping its tap)."""
        try:
            self.mutation_observers.remove(observer)
        except ValueError:
            pass

    def _notify_mutation(self, op: str, payload: Dict[str, object]) -> None:
        if self._suppress_mutation_notify:
            return
        for observer in self.mutation_observers:
            observer(op, payload)

    def lineage_members(self, lineage: str) -> List[str]:
        """Member uids of one copy-lineage group (indexed lookup)."""
        with self._index_lock:
            return sorted(self._lineage_index.get(lineage, set()))

    # ------------------------------------------------------------------
    # Data phase (ded_load_data)
    # ------------------------------------------------------------------

    def fetch_records(
        self,
        query: DataQuery,
        credential: AccessCredential,
        snapshot: Optional[Snapshot] = None,
    ) -> Dict[str, Dict[str, object]]:
        """Fetch records for filtered refs, projected to allowed fields.

        When a per-uid allowed-field set is present, v2-encoded rows
        are *partially* decoded: only the allowed ordinals are read via
        the row's offset table, and the separate sensitive inode is not
        even loaded unless a sensitive field is allowed.  Predicates
        evaluate against the projected record (so a predicate on a
        field consent does not allow never matches — unchanged
        semantics, cheaper decode).
        """
        self._require_ded(credential, "fetch_records")
        with self.telemetry.op(
            "dbfs.fetch_records", count=len(query.uids)
        ) as span:
            self.stats.data_queries += 1
            partial_before = self.stats.partial_decodes
            full_before = self.stats.full_decodes
            results: Dict[str, Dict[str, object]] = {}
            with self.telemetry.span("dbfs.decode", rows=len(query.uids)) as decode_span:
                for uid in query.uids:
                    if snapshot is not None and not self.mvcc.visible(
                        uid, snapshot.version
                    ):
                        continue
                    membrane = self._load_membrane(uid)
                    if membrane.erased:
                        if snapshot is not None:
                            # Erased after the snapshot's uids were
                            # computed: the payload is physically gone
                            # (erasure is stricter than MVCC) — skip
                            # rather than fail the whole read.
                            continue
                        raise errors.ExpiredPDError(
                            f"PD {uid!r} has been erased; its data is not retrievable"
                        )
                    allowed = query.allowed_fields_for(uid)
                    try:
                        if allowed is not None:
                            record = self._load_record_fields(uid, allowed)
                        else:
                            record = self._load_record_raw(uid)
                    except errors.ExpiredPDError:
                        if snapshot is not None:
                            continue  # erased by a concurrent writer
                        raise
                    if not query.matches(record):
                        continue
                    results[uid] = record
                decode_span.set_attrs(
                    partial_decodes=self.stats.partial_decodes - partial_before,
                    full_decodes=self.stats.full_decodes - full_before,
                )
            span.set_attr("matched", len(results))
            return results

    def _load_record_raw(self, uid: str) -> Dict[str, object]:
        """The full merged record (public + sensitive), cache-backed."""
        cached = self._record_cache.get(uid)
        if cached is not MISSING:
            return dict(cached)  # type: ignore[call-overload]
        inode_no = self._record_index.get(uid)
        if inode_no is None:
            raise errors.UnknownRecordError(f"no PD with uid {uid!r}")
        inode = self.inodes.get(inode_no)
        type_name = inode.attrs.get("pd_type")
        codec = self._codec_of(type_name) if type_name else None
        raw = self.inodes.read_payload_view(inode_no)
        if not len(raw):
            # A live record always has a non-empty payload; an empty
            # one means an erase's scrub half has run (its membrane
            # mark may still be in flight on another thread).
            raise errors.ExpiredPDError(
                f"PD {uid!r} has been erased; its data is not retrievable"
            )
        record = decode_any(raw, codec)
        sensitive_no = inode.attrs.get("sensitive_inode")
        if sensitive_no is not None:
            record.update(
                decode_any(self.inodes.read_payload_view(sensitive_no), codec)
            )
        self.stats.full_decodes += 1
        self._record_cache.put(uid, dict(record))
        return record

    def _load_record_fields(
        self, uid: str, fields: Iterable[str]
    ) -> Dict[str, object]:
        """Project a record to ``fields``, decoding only those for v2 rows.

        The record cache is consulted first (a cached record is already
        decoded, projection is free); a miss on a v2 row decodes just
        the wanted ordinals through the offset table and skips the
        sensitive inode entirely when no sensitive field is wanted.
        Partial results are never inserted into the record cache — it
        holds full merged records only.  v1 rows (and v1 stragglers in
        an upgraded table) take the full-decode path.
        """
        wanted = set(fields)
        cached = self._record_cache.get(uid)
        if cached is not MISSING:
            return {
                k: v for k, v in cached.items() if k in wanted  # type: ignore[union-attr]
            }
        inode_no = self._record_index.get(uid)
        if inode_no is None:
            raise errors.UnknownRecordError(f"no PD with uid {uid!r}")
        inode = self.inodes.get(inode_no)
        type_name = inode.attrs.get("pd_type")
        codec = self._codec_of(type_name) if type_name else None
        if codec is None:  # v1 table: no partial decode exists
            full = self._load_record_raw(uid)
            return {k: v for k, v in full.items() if k in wanted}
        raw = self.inodes.read_payload_view(inode_no)
        if not is_v2_payload(raw):  # pre-upgrade v1 straggler row
            full = self._load_record_raw(uid)
            return {k: v for k, v in full.items() if k in wanted}
        record = codec.decode_fields(raw, wanted)
        sensitive_no = inode.attrs.get("sensitive_inode")
        if sensitive_no is not None:
            fmt = self._format_of(type_name)
            if wanted.intersection(fmt["sensitive_fields"]):
                record.update(
                    codec.decode_fields(
                        self.inodes.read_payload_view(sensitive_no), wanted
                    )
                )
        self.stats.partial_decodes += 1
        self.stats.fields_decoded += len(record)
        return record

    # ------------------------------------------------------------------
    # Update / delete (built-in F_pd^w requests)
    # ------------------------------------------------------------------

    def update(self, request: UpdateRequest, credential: AccessCredential) -> None:
        """Rewrite changed fields; old values are scrubbed, not leaked."""
        with self.telemetry.op("dbfs.update", uid=request.uid):
            self._update_impl(request, credential)

    @_locked_writer
    def _update_impl(
        self, request: UpdateRequest, credential: AccessCredential
    ) -> None:
        self._require_ded(credential, "update")
        membrane = self._load_membrane(request.uid)
        if membrane.erased:
            raise errors.ErasureError(f"cannot update erased PD {request.uid!r}")
        pd_type = self.get_type(membrane.pd_type)
        old_record = self._load_record_raw(request.uid)
        record = dict(old_record)
        record.update(request.changes)
        # Validate before any mutation: a rejected update must leave
        # indexes and row extents exactly as they were.
        pd_type.validate(record)

        # WAL, intent-before-apply: index page writes and the row
        # rewrites below all mutate durable state, so the
        # "update:<uid>" intent lands first.  A crash mid-apply leaves
        # the intent uncommitted and recovery re-derives the uid's
        # index entries from whichever row state survived the cut.
        self.journal.begin()
        self.journal.log_op("update", request.uid)
        try:
            self._unindex_record(pd_type.name, request.uid, old_record)
            self._index_record(pd_type.name, request.uid, record)

            fmt = self._format_of(pd_type.name)
            inode_no = self._record_index[request.uid]
            inode = self.inodes.get(inode_no)
            public = {
                k: v for k, v in record.items() if k in fmt["public_fields"]
            }
            sensitive = {
                k: v for k, v in record.items() if k in fmt["sensitive_fields"]
            }
            # Re-encoding with the *current* negotiated codec also
            # migrates pre-upgrade v1 rows to binary-v2 on their next
            # update.
            self.inodes.rewrite_scrubbed(
                inode_no, self._encode_payload(pd_type.name, public)
            )
            sensitive_no = inode.attrs.get("sensitive_inode")
            if sensitive_no is not None:
                self.inodes.rewrite_scrubbed(
                    sensitive_no, self._encode_payload(pd_type.name, sensitive)
                )
            elif sensitive:
                sensitive_inode = self.inodes.allocate(KIND_RECORD)
                self.inodes.write_payload(
                    sensitive_inode.number,
                    self._encode_payload(pd_type.name, sensitive),
                )
                sensitive_inode.attrs["sensitive"] = True
                inode.attrs["sensitive_inode"] = sensitive_inode.number
            # Write-through: the cache holds the post-update record,
            # never the pre-update one.
            self._record_cache.put(request.uid, dict(record))
        except BaseException:
            if not self.journal.in_batch:
                self.journal.abort()
            raise
        self.stats.updates += 1
        self.journal.commit()
        self.mvcc.commit()
        self._notify_mutation(
            "update",
            {
                "uid": request.uid,
                "subject_id": membrane.subject_id,
                "changes": dict(request.changes),
            },
        )

    def delete(self, request: DeleteRequest, credential: AccessCredential) -> Membrane:
        """Erase one PD record (right to be forgotten).

        ``erase`` mode scrubs and removes everything.  ``escrow`` mode
        (the § 4 construction) encrypts the full record under the
        authority public key, stores the ciphertext in place of the
        data, scrubs the plaintext blocks, and marks the membrane
        erased.  Either way the operator can no longer read the PD.
        Returns the final membrane state.
        """
        with self.telemetry.op(
            "dbfs.delete", uid=request.uid, mode=request.mode
        ):
            return self._delete_impl(request, credential)

    @_locked_writer
    def _delete_impl(
        self, request: DeleteRequest, credential: AccessCredential
    ) -> Membrane:
        self._require_ded(credential, "delete")
        membrane = self._load_membrane(request.uid)
        if membrane.erased:
            raise errors.ErasureError(f"PD {request.uid!r} is already erased")
        record = self._load_record_raw(request.uid)
        inode = self.inodes.get(self._record_index[request.uid])

        op = "delete"
        if request.mode == "escrow":
            if self._operator_key is None:
                raise errors.ErasureError(
                    "escrow deletion requires an authority-issued operator key"
                )
            blob = self._operator_key.escrow_encrypt(_encode_record(record))
            # Stage the ciphertext on *fresh* blocks before the intent
            # commits.  Staging destroys nothing: a crash here leaves
            # the plaintext record fully intact and the uncommitted
            # intent simply discards the staging at remount.  The
            # envelope (wrapped key, nonce, MAC) rides along so the
            # blob survives the crash too.
            inode.attrs["escrow_staging"] = {
                "blocks": store_bytes(self.device, blob.ciphertext),
                "size": len(blob.ciphertext),
                "envelope": {
                    "wrapped_key": blob.wrapped_key,
                    "nonce": blob.nonce.hex(),
                    "tag": blob.tag.hex(),
                    "key_fingerprint": blob.key_fingerprint,
                },
            }
            op = "delete-escrow"

        # WAL, commit-before-apply: re-running a committed erase is
        # safe (the apply below is idempotent), whereas rolling back a
        # half-scrubbed one is impossible.  Checkpoints are held across
        # commit+scrub so the auto-checkpoint policy cannot truncate
        # the intent away while the destructive half is in flight; the
        # closing membrane_update record lands *after* the hold, so a
        # policy-triggered checkpoint never erases the last trace of
        # the erasure from the log.  (Recovery does not depend on the
        # intent surviving either way: a scrubbed-but-unmarked record
        # is detectable from tree state alone — see _crash_recover.)
        with self.journal.hold_checkpoints():
            self._journal_op(op, request.uid)
            # Index entries are PD values too; dropping them rewrites
            # durable pages (scrubbing the old extents).  This runs
            # *after* the intent so a crash mid-unindex rolls forward:
            # recovery redoes the whole erase, index sweep included —
            # entries are destroyed, never resurrected.
            self._unindex_record(membrane.pd_type, request.uid, record)
            self._scrub_record(request.uid, request.mode)
        self._suppress_mutation_notify = True
        try:
            membrane = self._finish_erase(request.uid, credential)
        finally:
            self._suppress_mutation_notify = False
        self.stats.deletes += 1
        self._notify_mutation(
            "delete",
            {
                "uid": request.uid,
                "subject_id": membrane.subject_id,
                "mode": request.mode,
            },
        )
        return membrane

    def _scrub_record(self, uid: str, mode: str) -> None:
        """Destructive half of an erase intent — idempotent by design.

        Runs after the intent commits (live path) and again from crash
        recovery (redo) when a committed or already-started erase did
        not finish.  Every sub-step checks before it mutates, so
        re-application converges on the same final state: ciphertext
        (or empty extent) in place, plaintext scrubbed, sensitive
        inode gone.
        """
        inode_no = self._record_index[uid]
        inode = self.inodes.get(inode_no)

        if mode == "escrow":
            staging = inode.attrs.pop("escrow_staging", None)
            if staging is not None:
                # Swap the staged ciphertext in, then scrub the
                # plaintext extent (shadow-write ordering: a crash
                # mid-swap leaves either plaintext or ciphertext
                # referenced, never a torn extent; unreferenced
                # leftovers are caught by the orphan-block sweep).
                old_blocks = inode.blocks
                inode.blocks = list(staging["blocks"])
                inode.size = staging["size"]
                inode.attrs["escrowed"] = True
                inode.attrs["escrow_envelope"] = staging["envelope"]
                for block_no in old_blocks:
                    self.device.scrub(block_no)
                    self.device.free(block_no)
            envelope = inode.attrs.get("escrow_envelope")
            if envelope is not None and uid not in self._escrow_blobs:
                self._escrow_blobs[uid] = EscrowBlob(
                    wrapped_key=envelope["wrapped_key"],
                    nonce=bytes.fromhex(envelope["nonce"]),
                    ciphertext=self.inodes.read_payload(inode_no),
                    tag=bytes.fromhex(envelope["tag"]),
                    key_fingerprint=envelope["key_fingerprint"],
                )
        elif inode.size:
            # A live record always has a non-empty payload (at minimum
            # "{}"), so size == 0 means the swap already happened.
            self.inodes.rewrite_scrubbed(inode_no, b"")

        sensitive_no = inode.attrs.pop("sensitive_inode", None)
        if sensitive_no is not None and self.inodes.exists(sensitive_no):
            self.inodes.free(sensitive_no, scrub=True)

        # Erasure must reach the caches too: a cached copy of the
        # record is exactly the § 1 lower-layer leak, one level up.
        self._record_cache.invalidate(uid)

    def _finish_erase(self, uid: str, credential: AccessCredential) -> Membrane:
        """Mark the membrane erased and persist it (idempotent)."""
        membrane = self._load_membrane(uid)
        with self._index_lock:
            self._listing_cache.pop(membrane.pd_type, None)
        if not membrane.erased:
            membrane.mark_erased(at=membrane.created_at)
            self.put_membrane(uid, membrane, credential)
        return membrane

    def _apply_erase(
        self, uid: str, mode: str, credential: AccessCredential
    ) -> Membrane:
        """Redo a whole erase (index sweep + scrub + membrane mark)
        during recovery.  The uid sweep replaces the live path's exact
        unindex — the record's values may already be scrubbed, so each
        durable index drops the uid from its own pages instead."""
        self._unindex_uid(uid)
        self._scrub_record(uid, mode)
        return self._finish_erase(uid, credential)

    def escrow_blob(self, uid: str) -> EscrowBlob:
        """The escrow ciphertext for an erased record (for authorities)."""
        blob = self._escrow_blobs.get(uid)
        if blob is None:
            raise errors.UnknownRecordError(
                f"no escrow blob for uid {uid!r} (not escrow-deleted?)"
            )
        return blob

    # ------------------------------------------------------------------
    # Subject-level operations (right of access / portability)
    # ------------------------------------------------------------------

    def list_subjects(self) -> List[str]:
        with self._index_lock:
            return sorted(self._subjects_root.children)

    def uids_of_subject(self, subject_id: str) -> List[str]:
        with self._index_lock:
            subject = self._subject_inode(subject_id, create=False)
            if subject is None:
                return []
            return sorted(subject.children)

    def export_subject(
        self,
        subject_id: str,
        credential: AccessCredential,
        snapshot: Optional[Snapshot] = None,
    ) -> Dict[str, object]:
        """Structured, machine-readable dump of one subject's PD.

        This is the § 4 right-of-access export: field names are the
        *meaningful* schema keys ("the keys make sense"), each record
        travels with its membrane, and the schema itself is included.
        With a ``snapshot`` the export is a consistent point-in-time
        view: records stored after the snapshot began are absent and
        membranes carry their as-of consent state (erasure excepted —
        data scrubbed mid-export stays gone).
        """
        with self.telemetry.op(
            "dbfs.export_subject", subject_id=subject_id
        ) as span:
            export = self._export_subject_impl(subject_id, credential, snapshot)
            span.set_attr("records", len(export["records"]))
            return export

    def _export_subject_impl(
        self,
        subject_id: str,
        credential: AccessCredential,
        snapshot: Optional[Snapshot] = None,
    ) -> Dict[str, object]:
        self._require_ded(credential, "export_subject")
        records = []
        for uid in self.uids_of_subject(subject_id):
            if snapshot is not None and not self.mvcc.visible(
                uid, snapshot.version
            ):
                continue
            membrane = self._load_membrane(uid, snapshot)
            live_erased = (
                membrane.erased if snapshot is None
                else self._load_membrane(uid).erased
            )
            entry: Dict[str, object] = {
                "uid": uid,
                "pd_type": membrane.pd_type,
                "membrane": membrane.to_dict(),
            }
            if live_erased:
                entry["data"] = None
                entry["erased"] = True
            else:
                try:
                    entry["data"] = self._load_record_raw(uid)
                except errors.ExpiredPDError:
                    if snapshot is None:
                        raise
                    entry["data"] = None
                    entry["erased"] = True
            records.append(entry)
        used_types = sorted({r["pd_type"] for r in records})
        return {
            "subject_id": subject_id,
            "schemas": {
                name: self.get_type(name).describe() for name in used_types
            },
            "records": records,
        }

    def _subject_inode(self, subject_id: str, create: bool) -> Optional[Inode]:
        child_no = self._subjects_root.children.get(subject_id)
        if child_no is not None:
            return self.inodes.get(child_no)
        if not create:
            return None
        subject = self.inodes.allocate(KIND_SUBJECT)
        subject.attrs["subject_id"] = subject_id
        self.inodes.link_child(
            self._subjects_root.number, subject_id, subject.number
        )
        return subject

    # ------------------------------------------------------------------
    # Maintenance & forensics
    # ------------------------------------------------------------------

    def all_uids(self) -> List[str]:
        with self._index_lock:
            return sorted(self._record_index)

    def iter_membranes(
        self,
        credential: AccessCredential,
        snapshot: Optional[Snapshot] = None,
    ) -> List[Tuple[str, Membrane]]:
        """Every (uid, membrane) pair — used by the TTL sweeper."""
        self._require_ded(credential, "iter_membranes")
        return [
            (uid, self._load_membrane(uid, snapshot))
            for uid in self.all_uids()
            if snapshot is None or self.mvcc.visible(uid, snapshot.version)
        ]

    def forensic_scan(self, needle: bytes) -> Dict[str, int]:
        """Residues of ``needle`` in the DBFS storage stack.

        Mirrors :meth:`repro.storage.extfs.FileBasedFS.forensic_scan`
        so the RTBF experiment compares like for like.
        """
        return {
            "device_blocks": len(self.device.scan(needle)),
            "journal_records": len(
                [r for r in self.journal.records() if needle in r.payload]
            ),
        }

    def record_inode(self, uid: str) -> Inode:
        """The record's primary inode (compliance/auditor accessor)."""
        inode_no = self._record_index.get(uid)
        if inode_no is None:
            raise errors.UnknownRecordError(f"no PD with uid {uid!r}")
        return self.inodes.get(inode_no)

    def record_size(self, uid: str) -> int:
        """On-disk payload size of the record's primary inode."""
        return self.record_inode(uid).size

    def live_record_blocks(self) -> set:
        """Block extents of every live (non-erased) record and its
        sensitive sibling — the legitimate homes for PD bytes, which a
        residue scan must not count as leaks."""
        blocks: set = set()
        for uid in self.all_uids():
            if self._load_membrane(uid).erased:
                continue
            inode = self.inodes.get(self._record_index[uid])
            blocks.update(inode.blocks)
            sensitive_no = inode.attrs.get("sensitive_inode")
            if sensitive_no is not None:
                blocks.update(self.inodes.get(sensitive_no).blocks)
        return blocks

    def residue_counts(
        self,
        needles: Sequence[bytes],
        subject_id: Optional[str] = None,
    ) -> Dict[str, int]:
        """Post-erasure residue of ``needles`` outside live records.

        Returns ``{"device_blocks": n, "journal_records": m}``.  Blocks
        belonging to live records are excluded — other subjects may
        legitimately store the same value (a shared city name, say).
        ``subject_id`` is the erased subject; a single DBFS ignores it,
        but the sharded store uses it to scan only the owning shard's
        device and journal (the subject's plaintext never existed
        anywhere else — that locality is the point of lineage-affine
        placement).
        """
        legit_blocks = self.live_record_blocks()
        device_blocks = 0
        journal_records = 0
        for needle in needles:
            device_blocks += sum(
                1
                for block_no in self.device.scan(needle)
                if block_no not in legit_blocks
            )
            journal_records += len(
                [r for r in self.journal.records() if needle in r.payload]
            )
        return {
            "device_blocks": device_blocks,
            "journal_records": journal_records,
        }

    def residue_sample(
        self,
        needles: Sequence[bytes],
        start_block: int,
        block_count: int,
    ) -> Dict[str, int]:
        """One incremental window of the residue scan.

        Scans device blocks ``[start_block, start_block + block_count)``
        for the needles, excluding blocks that belong to live records
        (identical semantics to :meth:`residue_counts`, so summing
        every window of one full sweep equals the one-shot scan).
        Returns ``{"scanned_blocks": n, "device_blocks": m}``; the
        window is clamped to the device, so a cursor past the end
        scans nothing.
        """
        stop = min(self.device.block_count, start_block + block_count)
        start = max(0, start_block)
        scanned = max(0, stop - start)
        if scanned == 0:
            return {"scanned_blocks": 0, "device_blocks": 0}
        legit_blocks = self.live_record_blocks()
        hits = 0
        for needle in needles:
            hits += sum(
                1
                for block_no in self.device.scan_range(needle, start, stop)
                if block_no not in legit_blocks
            )
        return {"scanned_blocks": scanned, "device_blocks": hits}

    # ------------------------------------------------------------------
    # Shard topology (trivial on a single DBFS)
    # ------------------------------------------------------------------
    #
    # A plain DatabaseFS presents itself as a one-shard store so code
    # written against ShardedDBFS (rights batching, benchmarks, CLI
    # reporting) runs unchanged against the seed layout.

    def begin_snapshot(self) -> Snapshot:
        """Open a consistent read point (MVCC snapshot).

        Readers pass the returned handle to ``query_membranes`` /
        ``select_uids*`` / ``fetch_records`` / ``export_subject``:
        they then see exactly the records and consent states committed
        when the snapshot began, without ever blocking writers.  Use
        as a context manager (or call :meth:`Snapshot.release`) so the
        MVCC bookkeeping can prune.
        """
        return Snapshot(self.mvcc, self.mvcc.begin_snapshot())

    def mvcc_stats(self) -> Dict[str, object]:
        """Observable MVCC state (commit version, snapshots, chains)."""
        return self.mvcc.as_dict()

    def write_lock(self, uid: str) -> "threading.RLock":
        """The single-writer lock covering ``uid``.

        Callers doing a read-modify-write (get a membrane, mutate it,
        put it back) hold this across the whole sequence so two
        concurrent mutators cannot interleave and lose an update.
        Reentrant: the mutators called under it take it again.
        """
        return self._write_lock

    @property
    def shard_count(self) -> int:
        return 1

    @property
    def shards(self) -> List["DatabaseFS"]:
        return [self]

    def shard_index_for_subject(self, subject_id: str) -> int:
        return 0

    def shard_for_subject(self, subject_id: str) -> "DatabaseFS":
        return self

    def shard_for_uid(self, uid: str) -> "DatabaseFS":
        return self

    def subjects_by_shard(
        self, subject_ids: Sequence[str]
    ) -> Dict[int, List[str]]:
        return {0: list(subject_ids)}

    def shard_stats(self) -> List[Dict[str, object]]:
        """Per-shard occupancy/journal summary (one entry here)."""
        journal = self.journal.stats
        return [
            {
                "shard": 0,
                "subjects": len(self._subjects_root.children),
                "records": len(self._record_index),
                "device_blocks_used": self.device.used_blocks,
                "journal_blocks_in_use": self.journal.blocks_in_use,
                "journal_records": len(self.journal),
                "journal_checkpoints": journal.checkpoints,
            }
        ]

    def _journal_op(self, op: str, target: str) -> None:
        """Metadata-only journaling: operation + uid, never payloads."""
        self.journal.begin()
        self.journal.log_delete(f"{op}:{target}")
        self.journal.commit()

    # ------------------------------------------------------------------
    # Cache observability
    # ------------------------------------------------------------------

    def cache_stats(self) -> Dict[str, Dict[str, object]]:
        """Size/hit-rate report for every fast-path cache in the stack.

        Documented in ``docs/API.md`` ("Performance & caching"); the
        FASTPATH benchmark records this alongside its timings.
        """
        listing_lookups = (
            self.stats.listing_cache_hits + self.stats.listing_cache_misses
        )
        membrane_lookups = (
            self.stats.membrane_cache_hits + self.stats.membrane_cache_misses
        )
        journal = self.journal.stats
        return {
            "page_cache": self.device.cache_stats(),
            "record_cache": self._record_cache.as_dict(),
            "listing_cache": {
                "name": "listing-cache",
                "enabled": self.cache_config.listing_cache,
                "size": len(self._listing_cache),
                "hits": self.stats.listing_cache_hits,
                "misses": self.stats.listing_cache_misses,
                "hit_rate": round(
                    self.stats.listing_cache_hits / listing_lookups, 4
                ) if listing_lookups else 0.0,
            },
            "membrane_cache": {
                "name": "membrane-cache",
                "enabled": self.cache_config.membrane_object_cache,
                "size": len(self._membrane_cache),
                "hits": self.stats.membrane_cache_hits,
                "misses": self.stats.membrane_cache_misses,
                "hit_rate": round(
                    self.stats.membrane_cache_hits / membrane_lookups, 4
                ) if membrane_lookups else 0.0,
                "capacity": self.cache_config.membrane_cache_entries,
                "json_entries": len(self._membrane_json_cache),
                "evictions": (
                    self._membrane_cache.stats.evictions
                    + self._membrane_json_cache.stats.evictions
                ),
            },
            "journal": {
                "name": "journal-group-commit",
                "appends": journal.appends,
                "commits": journal.commits,
                "flushes": journal.flushes,
                "group_commits": journal.group_commits,
                "batched_ops": journal.batched_ops,
            },
        }

    # ------------------------------------------------------------------
    # Crash recovery
    # ------------------------------------------------------------------

    def remount(self) -> Dict[str, int]:
        """Rebuild every in-memory structure from the durable trees.

        Simulates a reboot: the inode trees and their payloads are the
        only state that survives; the type registry, record/membrane
        indexes, lineage index, caches and escrow blobs are all derived
        from them.  Returns counts of what was recovered.  A live
        session that calls this must observe no behavioural change —
        the remount tests assert exactly that.

        This in-place variant reuses the live ``Journal`` object and
        assumes the last operation completed; after a simulated power
        cut use :meth:`remount_from_device`, which also reconciles
        half-applied operations against the journal.
        """
        start_ns = time.perf_counter_ns()
        self._init_volatile()

        # 0. Journal recovery: re-read the committed log from the
        # device (crash-recovery cost ∝ live log length — this is the
        # phase the auto-checkpoint policy bounds).  DBFS journals
        # metadata only, so the trees below stay authoritative; the
        # recovered records are accounted in ``journal.stats`` rather
        # than in the (idempotent) return dict.
        self.journal.recover()

        counts = self._rebuild_trees()
        counts["field_indexes"] = self._rebuild_field_indexes()
        self._journal_op("remount", f"records={counts['records']}")
        self._hist_remount.observe(time.perf_counter_ns() - start_ns)
        return counts

    @classmethod
    def remount_from_device(
        cls,
        device: BlockDevice,
        inodes: InodeTable,
        operator_key: Optional[OperatorKey] = None,
        cache_config: Optional[CacheConfig] = None,
        journal_config: Optional[JournalConfig] = None,
        telemetry: Optional[Telemetry] = None,
        record_codec: str = "v2",
        scan_batch_rows: int = 256,
        bloom_filters: bool = True,
        index_page_capacity: int = DEFAULT_PAGE_CAPACITY,
    ) -> "DatabaseFS":
        """True-crash remount: a fresh DBFS over surviving state only.

        Nothing from the pre-crash ``DatabaseFS`` object is consulted.
        The durable planes are the device bytes and the inode table
        (DBFS's metadata plane, modelled as synchronously durable —
        the analogue of uFS running its inode layer in the trusted
        server process).  In order:

        1. drop the page cache (a post-crash cache could serve bytes
           whose last write the power cut discarded);
        2. locate the three root trees by their ``role`` attrs and
           rebuild the journal from its reserved extent alone
           (:meth:`Journal.remount` — a fresh object, device bytes
           only);
        3. reconcile half-applied operations against the journal:
           uncommitted store intents roll *back* (the half-born record
           is unlinked), committed or already-started erase intents
           roll *forward* (erasing more, never resurrecting PD — the
           RTBF-safe direction), untouched uncommitted erases keep
           their record intact;
        4. rebuild the derived indexes, then scrub every unreachable
           inode and orphaned block so no PD residue survives in
           debris the trees no longer reference.

        The reconciliation report lands in :attr:`recovery_report`.
        """
        fs = cls.__new__(cls)
        fs.cache_config = (
            cache_config if cache_config is not None else DEFAULT_CACHE_CONFIG
        )
        fs.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        if record_codec not in ("v1", "v2"):
            raise errors.DBFSError(
                f"unknown record codec {record_codec!r} (valid: v1, v2)"
            )
        # Only governs types created *after* the remount; surviving
        # tables keep the encoding their format descriptor negotiated,
        # and rows are auto-detected per row either way.
        fs._record_codec = record_codec
        fs.scan_batch_rows = scan_batch_rows
        fs.bloom_filters = bloom_filters
        fs._index_page_capacity = index_page_capacity
        fs.device = device
        device.drop_page_cache()
        fs.inodes = inodes
        fs._operator_key = operator_key

        roots: Dict[str, Inode] = {}
        for number in inodes.numbers():
            role = inodes.get(number).attrs.get("role")
            if isinstance(role, str):
                roots[role] = inodes.get(number)
        missing = {"subjects-root", "schema-root", "formats-root"} - set(roots)
        if missing:
            raise errors.DBFSError(
                f"remount: no {sorted(missing)[0]} inode found — "
                "not a DBFS volume"
            )
        fs._subjects_root = roots["subjects-root"]
        fs._schema_root = roots["schema-root"]
        fs._formats_root = roots["formats-root"]
        indexes_root = roots.get("indexes-root")
        if indexes_root is None:
            # Volume predates durable indexes: create the fourth root
            # so the attach path and future flushes have a home.
            indexes_root = inodes.allocate(KIND_DIRECTORY)
            indexes_root.attrs["role"] = "indexes-root"
        fs._indexes_root = indexes_root

        extent = fs._subjects_root.attrs.get("journal_extent")
        if not extent:
            raise errors.DBFSError(
                "remount: volume records no journal extent"
            )
        fs.journal = Journal.remount(
            device, list(extent), config=journal_config, telemetry=fs.telemetry
        )

        fs._init_concurrency()
        fs._init_volatile()
        fs.stats = DBFSStats()
        fs._init_accel_counters()
        start_ns = time.perf_counter_ns()
        fs.recovery_report = fs._crash_recover()
        fs._hist_remount.observe(time.perf_counter_ns() - start_ns)
        return fs

    def _crash_recover(self) -> Dict[str, int]:
        """Reconcile half-applied operations against the journal.

        Called once by :meth:`remount_from_device`, after the journal
        itself has recovered (torn tail truncated, counters restored)
        and before the store serves any request.
        """
        # Intent records:
        # ("store" | "update" | "erase" | "escrow", uid, committed).
        all_records = list(self.journal.records())
        committed_txns = {
            r.txn_id for r in all_records if r.record_type == TXN_COMMIT
        }
        intents: List[Tuple[str, str, bool]] = []
        compact_repairs: List[Tuple[str, str]] = []
        for record in all_records:
            if record.record_type != TXN_DELETE:
                continue
            committed = record.txn_id in committed_txns
            target = record.target
            if target.startswith("store:"):
                intents.append(("store", target[len("store:"):], committed))
            elif target.startswith("update:"):
                intents.append(("update", target[len("update:"):], committed))
            elif target.startswith("delete-escrow:"):
                intents.append(
                    ("escrow", target[len("delete-escrow:"):], committed)
                )
            elif target.startswith("delete:"):
                intents.append(("erase", target[len("delete:"):], committed))
            elif target.startswith("compact-index:") and not committed:
                # A power cut mid-repack: the root still carries its
                # ``complete`` marker, but the pages underneath may be
                # half-rewritten.  The only safe answer is a rebuild.
                name = target[len("compact-index:"):]
                type_name, _, field_name = name.partition(".")
                if field_name:
                    compact_repairs.append((type_name, field_name))

        # 1. Roll back half-born records before touching the trees:
        # an uncommitted store may have linked a record that lacks its
        # membrane, which the rebuild below would (rightly) reject.
        rolled_back = 0
        for op, uid, committed in intents:
            if op == "store" and not committed:
                rolled_back += self._rollback_store(uid)

        # 1b. Bind the durable field indexes before the O(records)
        # tree rebuild — attach is pure inode metadata (O(#indexes),
        # no page reads, no dependence on tree state), which is what
        # keeps remount cost flat in table size; the erase redo below
        # needs them live so its uid sweep reaches the pages.
        # Backfills for missing/incomplete roots are deferred until
        # erasure reconciliation marked every erased membrane.
        attach_start = time.perf_counter_ns()
        attached, pending_backfills = self._attach_field_indexes()
        self._hist_index_attach.observe(
            time.perf_counter_ns() - attach_start
        )
        # An uncommitted compact-index intent demotes its (possibly
        # torn) attached root to a pending rebuild; an index the attach
        # already queued, or whose declaration is gone, needs nothing.
        for key in compact_repairs:
            if key in pending_backfills:
                continue
            with self._index_lock:
                present = self._field_indexes.pop(key, None)
            if present is not None:
                attached -= 1
                pending_backfills.append(key)

        counts = self._rebuild_trees()

        # 2. Erase reconciliation.  Two sources of truth compose:
        # *tree state* — a scrubbed-but-unmarked record is detectable
        # on its own (needed because a policy checkpoint may lawfully
        # truncate an erase intent once its scrub is done) — and the
        # *journal intents* — a committed erase whose destruction
        # never started looks fully live, and only the intent reveals
        # the promise.  Started erasures always roll forward, even
        # uncommitted ones (possible for group-committed bulk
        # erasures): completing an erasure is GDPR-safe, resurrecting
        # scrubbed PD never is.  Untouched uncommitted escrow intents
        # just discard their staged ciphertext.
        committed_erases: Dict[str, str] = {}
        for op, uid, committed in intents:
            if op in ("erase", "escrow") and committed:
                committed_erases[uid] = "escrow" if op == "escrow" else "erase"
        ded = AccessCredential(holder="crash-recovery", is_ded=True)
        redone = 0
        for uid in list(self._record_index):
            inode = self.inodes.get(self._record_index[uid])
            has_envelope = "escrow_envelope" in inode.attrs
            has_staging = "escrow_staging" in inode.attrs
            membrane = self._load_membrane(uid)
            if membrane.erased:
                # Fully erased already — just complete any lingering
                # half-scrubbed state (staging, sensitive inode).
                if has_staging or "sensitive_inode" in inode.attrs:
                    self._scrub_record(
                        uid,
                        "escrow" if (has_envelope or has_staging) else "erase",
                    )
                    redone += 1
                continue
            if has_envelope:
                self._apply_erase(uid, "escrow", ded)
                redone += 1
            elif inode.size == 0:
                self._apply_erase(uid, "erase", ded)
                redone += 1
            elif uid in committed_erases:
                self._apply_erase(uid, committed_erases[uid], ded)
                redone += 1
            elif has_staging:
                inode.attrs.pop("escrow_staging", None)

        # 3. Index reconciliation.  Uncommitted intents may have torn
        # durable page writes mid-flight: a rolled-back store leaves
        # its entries behind, an interrupted update or (group-batched)
        # erase leaves a live record partially unindexed.  Every such
        # uid gets a page sweep; live records are then re-indexed from
        # their surviving row state, so the durable index converges on
        # exactly the live trees.
        repaired = 0
        repair_uids = sorted({
            uid for op, uid, committed in intents if not committed
        })
        for uid in repair_uids:
            self._unindex_uid(uid)
            record_no = self._record_index.get(uid)
            if record_no is None:
                continue  # rolled back (or later erased): entries stay gone
            inode = self.inodes.get(record_no)
            if inode.attrs.get("erased") or inode.size == 0:
                continue
            try:
                record = self._load_record_raw(uid)
            except errors.ExpiredPDError:
                continue
            type_name = inode.attrs.get("pd_type")
            if isinstance(type_name, str):
                self._index_record(type_name, uid, record)
                repaired += 1

        # 4. Deferred backfills only now: erased membranes are all
        # marked, so a rebuild never decodes an escrow ciphertext.
        for type_name, field_name in pending_backfills:
            self._backfill_index(type_name, field_name)
        counts["field_indexes"] = attached + len(pending_backfills)

        # 5. Residue sweeps: rollbacks and interrupted shadow-writes
        # leave unreachable inodes / unreferenced blocks whose bytes
        # may be PD (index pages included).  Scrub them all.
        orphan_inodes = self._free_unreachable_inodes()
        orphan_blocks = self._scrub_orphan_blocks()

        self._journal_op("remount", f"records={counts['records']}")
        return {
            "records": counts["records"],
            "types": counts["types"],
            "field_indexes": counts["field_indexes"],
            "rolled_back_stores": rolled_back,
            "redone_erasures": redone,
            "index_repairs": repaired,
            "orphan_inodes": orphan_inodes,
            "orphan_blocks": orphan_blocks,
            "torn_records": self.journal.stats.torn_records,
        }

    def _rebuild_trees(self) -> Dict[str, int]:
        """Schema + subject trees → type registry and uid indexes."""
        # 1. Schema tree → type registry.
        for type_name, table_no in sorted(self._schema_root.children.items()):
            description = json.loads(
                self.inodes.read_payload(table_no).decode()
            )
            self._types[type_name] = PDType.from_description(description)

        # 2. Subject tree → record/membrane/lineage indexes + escrow +
        # per-table blooms.  One metadata pass: lineage and erasure
        # ride the record inode's attrs (maintained by store and
        # put_membrane), so no membrane payload is read here — that is
        # what keeps this walk cheap at 50k records.  Records written
        # before the markers existed self-heal: their membrane is read
        # once and the attrs are stamped for every later remount.
        recovered_records = 0
        bloom_keys: Dict[str, List[str]] = {}
        for subject_id, subject_no in sorted(
            self._subjects_root.children.items()
        ):
            subject = self.inodes.get(subject_no)
            for uid, record_no in sorted(subject.children.items()):
                record_inode = self.inodes.get(record_no)
                membrane_no = record_inode.attrs.get("membrane_inode")
                if membrane_no is None:
                    raise errors.MissingMembraneError(
                        f"remount found record {uid!r} without a membrane"
                    )
                self._record_index[uid] = record_no
                self._membrane_index[uid] = membrane_no
                if "lineage" in record_inode.attrs:
                    lineage = record_inode.attrs["lineage"]
                else:
                    membrane = self._load_membrane(uid)
                    lineage = membrane.lineage
                    record_inode.attrs["lineage"] = lineage
                    record_inode.attrs["erased"] = membrane.erased
                if lineage:
                    self._lineage_index.setdefault(lineage, set()).add(uid)
                envelope = record_inode.attrs.get("escrow_envelope")
                if envelope is not None:
                    self._escrow_blobs[uid] = EscrowBlob(
                        wrapped_key=envelope["wrapped_key"],
                        nonce=bytes.fromhex(envelope["nonce"]),
                        ciphertext=self.inodes.read_payload(record_no),
                        tag=bytes.fromhex(envelope["tag"]),
                        key_fingerprint=envelope["key_fingerprint"],
                    )
                if self.bloom_filters:
                    type_name = record_inode.attrs.get("pd_type")
                    if isinstance(type_name, str):
                        bloom_keys.setdefault(type_name, []).extend(
                            ("S:" + subject_id, "U:" + uid)
                        )
                recovered_records += 1

        if self.bloom_filters:
            self._rebuild_table_blooms(bloom_keys)

        return {
            "types": len(self._types),
            "records": recovered_records,
            "lineage_groups": len(self._lineage_index),
            "escrow_blobs": len(self._escrow_blobs),
        }

    def _rebuild_field_indexes(self) -> int:
        """Declared field indexes: attach durable roots, backfill strays.

        Attaching a complete durable root is O(pages-metadata), not
        O(records) — page payloads stay on the device until a lookup
        touches them, which is what keeps remount cost flat in table
        size.  A declared index whose root is missing or incomplete
        (crash mid-``create_index``) is rebuilt from the table.
        """
        attach_start = time.perf_counter_ns()
        attached, pending = self._attach_field_indexes()
        self._hist_index_attach.observe(time.perf_counter_ns() - attach_start)
        for type_name, field_name in pending:
            self._backfill_index(type_name, field_name)
        return attached + len(pending)

    def _attach_field_indexes(self) -> Tuple[int, List[Tuple[str, str]]]:
        """Attach every declared, complete durable index root.

        Returns ``(attached, pending)`` where ``pending`` lists declared
        indexes needing a backfill (root missing or its ``complete``
        marker never landed).  Undeclared roots — a crash after the
        root linked but before the declaration committed — are swept:
        the declaration is the source of truth, so an undeclared root
        must not serve lookups and its pages are scrub-freed.
        """
        attached = 0
        pending: List[Tuple[str, str]] = []
        declared_keys = set()
        for type_name, table_no in sorted(self._schema_root.children.items()):
            table = self.inodes.get(table_no)
            for field_name in table.attrs.get("indexes", []):
                key = (type_name, field_name)
                declared_keys.add(key)
                root_no = self._indexes_root.children.get(
                    f"{type_name}.{field_name}"
                )
                if root_no is not None and self.inodes.get(root_no).attrs.get(
                    "complete"
                ):
                    index = DurableFieldIndex.attach(
                        self.inodes, root_no, **self._index_kwargs()
                    )
                    with self._index_lock:
                        self._field_indexes[key] = index
                    attached += 1
                else:
                    pending.append(key)
        for child_name in sorted(self._indexes_root.children):
            child = self.inodes.get(self._indexes_root.children[child_name])
            if child.attrs.get("role") != "field-index":
                continue
            key = (child.attrs.get("type"), child.attrs.get("field"))
            if key not in declared_keys:
                self._drop_index_root(*key)
        return attached, pending

    def _rebuild_table_blooms(
        self, keys_by_type: Dict[str, List[str]]
    ) -> None:
        """Seed per-table blooms from the live tree walk, then union
        any persisted ``<type>.__bloom__`` snapshot whose geometry
        matches.  The tree walk is authoritative (a bloom rebuilt from
        live records alone can never produce a false negative); the
        persisted bits only *widen* the filter, so a stale or torn
        snapshot degrades precision, never correctness.  Snapshots for
        dropped types are scrub-freed.
        """
        for type_name in self._types:
            keys = keys_by_type.get(type_name, [])
            bloom = BloomFilter.sized(max(256, len(keys)))
            for key in keys:
                bloom.add(bloom_key(key))
            self._table_blooms[type_name] = bloom
        for child_name in sorted(self._indexes_root.children):
            child_no = self._indexes_root.children[child_name]
            child = self.inodes.get(child_no)
            if child.attrs.get("role") != "table-bloom":
                continue
            type_name = child.attrs.get("type")
            if type_name not in self._types:
                self.inodes.unlink_child(
                    self._indexes_root.number, child_name
                )
                self.inodes.free(child_no, scrub=True)
                continue
            try:
                persisted = BloomFilter.from_bytes(
                    int(child.attrs["m"]),
                    int(child.attrs["k"]),
                    self.inodes.read_payload(child_no),
                    stale=bool(child.attrs.get("stale", False)),
                )
            except (errors.StorageError, KeyError, ValueError, TypeError):
                continue
            live = self._table_blooms[type_name]
            if persisted.m_bits == live.m_bits and persisted.k == live.k:
                live.union(persisted)

    @_locked_writer
    def flush_accelerators(self) -> int:
        """Persist index pages and table-bloom snapshots to the device.

        Returns how many accelerators were flushed.  Durable index
        pages are already written at mutation time; ``flush`` here
        re-stamps bloom sidecars so a following ``remount_from_device``
        attaches without rebuilding them.
        """
        flushed = 0
        with self._index_lock:
            indexes = list(self._field_indexes.values())
        for index in indexes:
            flush = getattr(index, "flush", None)
            if flush is not None:
                flush()
                flushed += 1
        for type_name, bloom in sorted(self._table_blooms.items()):
            self._persist_table_bloom(type_name, bloom)
            flushed += 1
        return flushed

    def _persist_table_bloom(
        self, type_name: str, bloom: BloomFilter
    ) -> None:
        """Write one table bloom to its ``<type>.__bloom__`` sidecar.

        Bits land before the geometry attrs (attrs-over-approximate: a
        crash between the two leaves attrs describing the *old* bits,
        which ``from_bytes`` either reads consistently or rejects at
        the union geometry check — never a false negative).
        """
        child_name = f"{type_name}.__bloom__"
        child_no = self._indexes_root.children.get(child_name)
        if child_no is None:
            child = self.inodes.allocate(KIND_INDEX)
            child.attrs["role"] = "table-bloom"
            child.attrs["type"] = type_name
            self.inodes.link_child(
                self._indexes_root.number, child_name, child.number
            )
            child_no = child.number
        self.inodes.rewrite_scrubbed(child_no, bloom.to_bytes())
        child = self.inodes.get(child_no)
        child.attrs["m"] = bloom.m_bits
        child.attrs["k"] = bloom.k
        child.attrs["stale"] = bloom.stale

    def _is_live_record(self, uid: str) -> bool:
        record_no = self._record_index.get(uid)
        if record_no is None:
            return False
        return not self.inodes.get(record_no).attrs.get("erased")

    @_locked_writer
    def compact(
        self,
        rewrite_records: bool = True,
        max_records: Optional[int] = None,
    ) -> Dict[str, int]:
        """Reclaim every durable plane after a wave of erasures.

        Erasure scrubs the erased record's own bytes immediately, but
        four planes keep *growing* until something compacts them: live
        record payloads sit in blocks first written long ago (earlier
        in-place versions may linger in shadow-write debris), durable
        B-tree index pages keep their bulk-build layout plus tombstone
        slack, per-table bloom filters only ever *add* bits (``stale``
        marks them over-approximate but never clears), and the journal
        accumulates op history.  One compaction pass:

        1. **records** — every live record (and its sensitive sibling)
           is shadow-rewritten with scrub, so the only device blocks
           holding its bytes are the current ones (skippable via
           ``rewrite_records=False`` when only the accelerator planes
           need reclaiming);
        2. **indexes** — each durable field index repacks its pages to
           the bulk fill factor and rebuilds its value bloom fresh.
           The repack is intent-logged (``compact-index:<type>.<field>``
           committed only after the rewrite finishes), so a power cut
           mid-repack leaves an uncommitted intent that
           :meth:`_crash_recover` answers with a full rebuild;
        3. **blooms** — per-table blooms are rebuilt from the live
           trees alone (erased tombstones drop out, ``stale`` clears)
           and persisted;
        4. **sweeps** — unreachable inodes and orphaned blocks are
           scrub-freed, then the **journal** checkpoints, truncating
           the op history down to its marker.

        Returns a report of what each plane reclaimed.  Runs under the
        write lock: compaction is a writer like any other, so readers
        on MVCC snapshots never see a half-repacked index.

        **Incremental mode** (``max_records=N``): the record-rewrite
        plane processes at most N live records per call and remembers
        where it stopped in a resume cursor, so the retention daemon
        can run compaction as bounded background waves instead of one
        stop-the-world pass.  The accelerator planes (index repack,
        bloom rebuild, sweeps, journal checkpoint) only run on the call
        that *finishes* a cycle — a sequence of bounded calls adds up
        to exactly one full pass.  The report carries
        ``records_remaining`` (live records still ahead of the cursor)
        and ``cycle_complete`` (1 when this call closed the cycle).
        The cursor is volatile: a remount restarts the wave, which is
        safe because every wave is idempotent.
        """
        if max_records is not None and max_records < 1:
            raise errors.DBFSError(
                f"max_records must be >= 1, got {max_records}"
            )
        blocks_before = self.device.used_blocks
        journal_blocks_before = self.journal.blocks_in_use
        report: Dict[str, int] = {
            "records_rewritten": 0,
            "indexes_compacted": 0,
            "blooms_rebuilt": 0,
            "orphan_inodes": 0,
            "orphan_blocks": 0,
            "journal_records_discarded": 0,
            "records_remaining": 0,
            "cycle_complete": 1,
        }

        # 1. Live-record rewrite: new blocks, old ones scrubbed.  The
        # uid order is sorted so the resume cursor ("last uid done")
        # defines an unambiguous remainder; a full pass ignores and
        # resets the cursor.
        if rewrite_records:
            uids = sorted(self.all_uids())
            if max_records is not None and self._compact_cursor is not None:
                uids = [u for u in uids if u > self._compact_cursor]
            for position, uid in enumerate(uids):
                if (
                    max_records is not None
                    and report["records_rewritten"] >= max_records
                ):
                    self._compact_cursor = uids[position - 1]
                    report["records_remaining"] = sum(
                        1
                        for u in uids[position:]
                        if self._is_live_record(u)
                    )
                    report["cycle_complete"] = 0
                    break
                record_no = self._record_index.get(uid)
                if record_no is None:
                    continue
                inode = self.inodes.get(record_no)
                if inode.attrs.get("erased"):
                    continue
                numbers = [record_no]
                sensitive_no = inode.attrs.get("sensitive_inode")
                if sensitive_no is not None:
                    numbers.append(sensitive_no)
                for number in numbers:
                    payload = self.inodes.read_payload(number)
                    if payload:
                        self.inodes.rewrite_scrubbed(number, payload)
                report["records_rewritten"] += 1
            if report["cycle_complete"]:
                self._compact_cursor = None

        if not report["cycle_complete"]:
            # Mid-wave: the accelerator planes wait for cycle close.
            self.stats.compactions += 1
            self._journal_op(
                "compact", f"wave={report['records_rewritten']}"
            )
            return report

        # 2. Durable index repack, intent-logged per index.
        with self._index_lock:
            indexes = sorted(self._field_indexes.items())
        for (type_name, field_name), index in indexes:
            compact_pages = getattr(index, "compact", None)
            if compact_pages is None:
                continue  # in-memory FieldIndex: nothing durable to repack
            self.journal.begin()
            self.journal.log_delete(f"compact-index:{type_name}.{field_name}")
            compact_pages()
            self.journal.commit()
            report["indexes_compacted"] += 1
            self.stats.compacted_indexes += 1

        # 3. Authoritative table-bloom rebuild: live records only, so
        # erased keys drop out and the stale flag clears for good —
        # this is the only path that ever *shrinks* a bloom.
        if self.bloom_filters:
            bloom_keys: Dict[str, List[str]] = {}
            for subject_id, subject_no in sorted(
                self._subjects_root.children.items()
            ):
                subject = self.inodes.get(subject_no)
                for uid, record_no in sorted(subject.children.items()):
                    inode = self.inodes.get(record_no)
                    if inode.attrs.get("erased"):
                        continue
                    type_name = inode.attrs.get("pd_type")
                    if isinstance(type_name, str):
                        bloom_keys.setdefault(type_name, []).extend(
                            ("S:" + subject_id, "U:" + uid)
                        )
            for type_name in sorted(self._types):
                keys = bloom_keys.get(type_name, [])
                bloom = BloomFilter.sized(max(256, len(keys)))
                for key in keys:
                    bloom.add(bloom_key(key))
                self._table_blooms[type_name] = bloom
                self._persist_table_bloom(type_name, bloom)
                report["blooms_rebuilt"] += 1

        # 4. Debris sweeps, then journal history truncation.
        report["orphan_inodes"] = self._free_unreachable_inodes()
        report["orphan_blocks"] = self._scrub_orphan_blocks()
        report["journal_records_discarded"] = self.journal.checkpoint()

        reclaimed = max(0, blocks_before - self.device.used_blocks) + max(
            0, journal_blocks_before - self.journal.blocks_in_use
        )
        report["blocks_reclaimed"] = reclaimed
        self.stats.compactions += 1
        self.stats.compaction_blocks_reclaimed += reclaimed
        self._journal_op("compact", f"reclaimed={reclaimed}")
        return report

    def rollback_stores(self, uids: Sequence[str]) -> int:
        """Roll back committed-but-torn cross-shard stores after recovery.

        Used by ``ShardedDBFS.remount_from_devices`` when a fleet
        batch committed on this shard but not on every participant:
        the group as a whole never happened, so this shard's half is
        unwound — trees unlinked, volatile indexes rebuilt, orphaned
        inodes and blocks scrubbed.  Idempotent: uids already absent
        roll back to nothing.  Returns how many stores were unwound.
        """
        rolled = sum(self._rollback_store(uid) for uid in uids)
        if rolled:
            self._init_volatile()
            self._rebuild_trees()
            self._rebuild_field_indexes()
            for uid in uids:
                self._unindex_uid(uid)
            self._free_unreachable_inodes()
            self._scrub_orphan_blocks()
        return rolled

    def _rollback_store(self, uid: str) -> int:
        """Undo a half-applied, uncommitted store intent.

        Unlinks the record from the subject and schema trees (and
        removes a subject inode this very store created); the record /
        sensitive / membrane inodes left behind become unreachable and
        are scrubbed by the reachability sweep.  Returns 1 if anything
        was actually unlinked (a crash right after the intent landed
        leaves nothing to undo).
        """
        removed = 0
        for subject_id in list(self._subjects_root.children):
            subject_no = self._subjects_root.children[subject_id]
            subject = self.inodes.get(subject_no)
            if uid in subject.children:
                self.inodes.unlink_child(subject_no, uid)
                removed = 1
                if not subject.children:
                    self.inodes.unlink_child(
                        self._subjects_root.number, subject_id
                    )
                    self.inodes.free(subject_no)
                break
        parts = uid.split(":")
        type_name = parts[1] if len(parts) >= 3 else None
        table_no = (
            self._schema_root.children.get(type_name) if type_name else None
        )
        if table_no is not None:
            table = self.inodes.get(table_no)
            if uid in table.children:
                self.inodes.unlink_child(table_no, uid)
                removed = 1
        return removed

    def _free_unreachable_inodes(self) -> int:
        """Scrub-free every inode not reachable from the three roots.

        Rollbacks (and interrupted stores that never linked) leave
        record/sensitive/membrane inodes holding PD with no tree
        reference; freeing them *with scrub* is what keeps the RTBF
        residue at zero after a crash.
        """
        reachable = set()
        for root in (self._subjects_root, self._schema_root,
                     self._formats_root, self._indexes_root):
            for inode in self.inodes.walk(root.number):
                reachable.add(inode.number)
                for attr in ("sensitive_inode", "membrane_inode"):
                    linked = inode.attrs.get(attr)
                    if linked is not None:
                        reachable.add(linked)
        freed = 0
        for number in self.inodes.numbers():
            if number not in reachable:
                self.inodes.free(number, scrub=True)
                freed += 1
        return freed

    def _scrub_orphan_blocks(self) -> int:
        """Scrub-free allocated blocks no inode (or the journal) owns.

        Interrupted shadow-writes allocate a new extent before the old
        one is released; whichever side lost the race is unreferenced
        after the crash and may carry plaintext PD.
        """
        referenced = set(self.journal.extent)
        for number in self.inodes.numbers():
            inode = self.inodes.get(number)
            referenced.update(inode.blocks)
            staging = inode.attrs.get("escrow_staging")
            if staging:
                referenced.update(staging["blocks"])
        freed = 0
        for block_no in list(self.device.iter_allocated()):
            if block_no not in referenced:
                self.device.scrub(block_no)
                self.device.free(block_no)
                freed += 1
        return freed
