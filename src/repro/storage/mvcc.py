"""MVCC snapshot state for DBFS reads that never block writers.

The request engine (PR 6) runs right-of-access exports and type-level
scans concurrently with stores, consent mutations and erasures.  A
reader that iterated live structures under a writer would see torn
state: a record linked into the table before its membrane cache entry
lands, or a consent map mid-mutation.  Classic MVCC fixes this with
begin/end versions stamped from a global commit counter; this module
is the deliberately small variant DBFS needs:

* **One commit counter per DatabaseFS (per shard).**  Every mutation
  (store, update, delete, membrane change) bumps it under the MVCC
  lock; a snapshot is just the counter value at begin time.
* **Record visibility.**  A record is visible to snapshot ``S`` iff
  its begin version is ``<= S``.  Begin versions are only *recorded*
  while at least one snapshot is active — a store that no snapshot
  can possibly miss needs no bookkeeping, which keeps the serial path
  allocation-free.
* **Membrane version chains.**  A consent mutation while a snapshot
  is active appends ``(commit_version, membrane_json)`` to the uid's
  chain (lazily seeded with the pre-mutation state), so the snapshot
  reads the consent state *as of* its begin version.  JSON strings
  are immutable, so chain entries are safe to hand across threads.
  Revocation and RTBF go through the same path: they commit a new
  chain entry, which makes them immediately visible to the *next*
  snapshot — the GDPR-critical direction.
* **Erasure is stricter than MVCC.**  A scrubbed record's payload is
  physically gone; an old snapshot does NOT retain read access to
  erased PD (readers skip it).  Snapshot isolation here protects
  consistency of what may be read, never prolongs the life of what
  must not be.
* **Pruning.**  When the last active snapshot releases, every chain
  and begin version is dropped — steady-state memory is zero when no
  snapshot is open, and bounded by mutations-during-snapshots
  otherwise.

Payload reads are read-committed (an in-place ``update`` is visible
to concurrent snapshots); the enforcement-relevant state — which
records exist and what their membranes permit — is what snapshots
pin.  The equivalence and isolation stress tests exercise exactly
this contract.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence, Tuple


class MVCCState:
    """Commit counter, visibility map and membrane chains for one store."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._version = 0
        #: active snapshot version -> refcount (several snapshots may
        #: begin at the same version).
        self._active: Dict[int, int] = {}
        #: uid -> commit version of its store (recorded only while a
        #: snapshot is active; absent means "visible to everyone").
        self._begin: Dict[str, int] = {}
        #: uid -> [(from_version, membrane_json), ...] ascending.
        self._chains: Dict[str, List[Tuple[int, str]]] = {}
        #: uid -> pre-mutation JSON for an in-flight membrane publish
        #: (prepare_membrane() called, stamp_membrane() not yet).  A
        #: snapshot beginning inside that window seeds the chain from
        #: here so it never reads the half-published new state.
        self._pending: Dict[str, str] = {}
        self.snapshots_taken = 0
        self.chain_entries_recorded = 0

    # -- commits ---------------------------------------------------------

    @property
    def version(self) -> int:
        return self._version

    @property
    def snapshots_active(self) -> bool:
        return bool(self._active)

    def commit(self) -> int:
        """Bump the commit counter for a mutation needing no stamping."""
        with self._lock:
            self._version += 1
            return self._version

    def stamp_store(self, uid: str) -> int:
        """Commit a store; records the begin version if anyone may care."""
        with self._lock:
            self._version += 1
            if self._active:
                self._begin[uid] = self._version
            return self._version

    def prepare_membrane(self, uid: str, old_json: str) -> None:
        """Pre-register a membrane publish before it becomes visible.

        The writer calls this *before* rewriting the inode and the
        live caches with the new JSON.  It seeds the uid's chain with
        the pre-mutation state while any snapshot is active, and parks
        ``old_json`` in the pending map so a snapshot that *begins*
        during the publish window (new JSON live, commit not stamped)
        is seeded by :meth:`begin_snapshot` — without this, such a
        reader would find no chain entry and fall through to the
        half-published live state.  The matching :meth:`stamp_membrane`
        clears the pending entry.
        """
        with self._lock:
            self._pending[uid] = old_json
            if self._active and uid not in self._chains:
                self._chains[uid] = [(self._begin.get(uid, 0), old_json)]

    def stamp_membrane(self, uid: str, old_json: Optional[str],
                       new_json: str) -> int:
        """Commit a membrane mutation, chaining the old state if needed.

        ``old_json`` is the pre-mutation membrane JSON; it seeds the
        chain the first time a uid's membrane changes under an active
        snapshot, so that snapshot keeps reading the state it began
        with.  ``None`` is accepted when the caller knows no snapshot
        was active (the chain is then only appended if it already
        exists, which cannot happen once pruning ran).
        """
        with self._lock:
            self._version += 1
            self._pending.pop(uid, None)
            if self._active or uid in self._chains:
                chain = self._chains.get(uid)
                if chain is None:
                    seed_version = self._begin.get(uid, 0)
                    chain = self._chains[uid] = (
                        [(seed_version, old_json)] if old_json is not None
                        else []
                    )
                chain.append((self._version, new_json))
                self.chain_entries_recorded += 1
            return self._version

    # -- snapshots -------------------------------------------------------

    def begin_snapshot(self) -> int:
        with self._lock:
            self.snapshots_taken += 1
            version = self._version
            self._active[version] = self._active.get(version, 0) + 1
            # Membrane publishes may be in flight (prepare_membrane
            # ran, stamp_membrane has not): seed their chains so this
            # snapshot reads the pre-publish consent state instead of
            # the already-live new JSON.
            for uid, old_json in self._pending.items():
                if uid not in self._chains:
                    self._chains[uid] = [(self._begin.get(uid, 0), old_json)]
            return version

    def release_snapshot(self, version: int) -> None:
        with self._lock:
            count = self._active.get(version, 0)
            if count <= 1:
                self._active.pop(version, None)
            else:
                self._active[version] = count - 1
            if not self._active:
                # Nobody can ask for historical state any more: every
                # future snapshot begins at >= the current version and
                # therefore reads live structures directly.
                self._chains.clear()
                self._begin.clear()

    # -- reads -----------------------------------------------------------

    def visible(self, uid: str, snapshot_version: int) -> bool:
        """Was ``uid`` stored at or before ``snapshot_version``?

        Taken under the MVCC lock: writers mutate ``_begin`` under it,
        and relying on GIL dict atomicity would break on free-threaded
        builds.  The critical section is a single dict probe.
        """
        with self._lock:
            begin = self._begin.get(uid)
        return begin is None or begin <= snapshot_version

    def visible_many(self, uids: Sequence[str],
                     snapshot_version: int) -> List[str]:
        """Filter ``uids`` to those visible at ``snapshot_version``.

        The batched read path checks visibility a chunk at a time;
        doing it here amortizes the lock acquisition over the whole
        chunk instead of taking it once per row like :meth:`visible`.
        """
        with self._lock:
            begin = self._begin
            return [
                uid for uid in uids
                if (b := begin.get(uid)) is None or b <= snapshot_version
            ]

    def membrane_json_as_of(self, uid: str,
                            snapshot_version: int) -> Optional[str]:
        """Membrane JSON as of the snapshot, or None meaning "use live".

        Walks the uid's chain backwards for the last entry whose
        from_version is ``<= snapshot_version``; no chain means the
        membrane has not changed since before every active snapshot.
        The walk runs under the MVCC lock — stamp_membrane replaces
        and appends chains under it, and a reader iterating a chain
        mid-construction without the lock is only safe by the GIL.
        Chains are short (mutations during active snapshots), so the
        critical section stays tiny.
        """
        with self._lock:
            chain = self._chains.get(uid)
            if not chain:
                return None
            for from_version, membrane_json in reversed(chain):
                if from_version <= snapshot_version:
                    return membrane_json
            # Chain exists but every entry postdates the snapshot — the
            # record itself was stored after the snapshot began; callers
            # filter those out via visible() before asking for membranes.
            return chain[0][1]

    def as_dict(self) -> Dict[str, object]:
        with self._lock:
            return {
                "commit_version": self._version,
                "active_snapshots": sum(self._active.values()),
                "snapshots_taken": self.snapshots_taken,
                "tracked_begin_versions": len(self._begin),
                "membrane_chains": len(self._chains),
                "chain_entries_recorded": self.chain_entries_recorded,
            }


class Snapshot:
    """A released-once handle on one store's consistent read point.

    Also answers ``for_shard(i)`` with itself so code written against
    fleet snapshots runs unchanged on a single DBFS (mirroring the
    ``DatabaseFS.shards`` one-shard shim).
    """

    __slots__ = ("version", "_state", "_released")

    def __init__(self, state: MVCCState, version: int):
        self.version = version
        self._state = state
        self._released = False

    @property
    def released(self) -> bool:
        return self._released

    def for_shard(self, index: int) -> "Snapshot":
        return self

    def release(self) -> None:
        if not self._released:
            self._released = True
            self._state.release_snapshot(self.version)

    def __enter__(self) -> "Snapshot":
        return self

    def __exit__(self, *exc_info) -> bool:
        self.release()
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "released" if self._released else "active"
        return f"Snapshot(v{self.version}, {state})"


class FleetSnapshot:
    """Per-shard snapshots taken together for scatter-gather reads.

    Each shard has its own commit counter, so a fleet snapshot is a
    vector of per-shard versions; ``for_shard(i)`` hands each fanned-
    out sub-read its shard's component.  A degraded shard's slot is
    ``None`` — reads never reach it anyway.
    """

    __slots__ = ("_snapshots", "_released")

    def __init__(self, snapshots: Sequence[Optional[Snapshot]]):
        self._snapshots = list(snapshots)
        self._released = False

    @property
    def versions(self) -> Tuple[Optional[int], ...]:
        return tuple(
            s.version if s is not None else None for s in self._snapshots
        )

    @property
    def released(self) -> bool:
        return self._released

    def for_shard(self, index: int) -> Optional[Snapshot]:
        return self._snapshots[index]

    def release(self) -> None:
        if not self._released:
            self._released = True
            for snapshot in self._snapshots:
                if snapshot is not None:
                    snapshot.release()

    def __enter__(self) -> "FleetSnapshot":
        return self

    def __exit__(self, *exc_info) -> bool:
        self.release()
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FleetSnapshot(versions={self.versions})"
