"""Fast-path caching primitives shared across the storage and DED stack.

Shastri et al. ("Understanding and Benchmarking the Impact of GDPR on
Database Systems") measured 2-5x GDPR-compliance overheads exactly on
the paths this module accelerates: every query re-reading and
re-decoding records, every invocation re-parsing and re-evaluating
membranes, every write issuing its own journal commit.  rgpdOS closes
that gap with caching and batching rather than by weakening
enforcement, which makes *invalidation* the load-bearing part of the
design:

* a scrubbed or freed block must never be served from the page cache
  (the RTBF secure-erase guarantee extends to the cache);
* a withdrawn consent must take effect on the very next invocation
  (decision-cache entries are keyed on the membrane's monotonically
  bumped version, so no cached decision can outlive a revocation);
* an erased uid must never resurface through the record cache or a
  field index.

Three pieces live here:

* :class:`CacheStats` — uniform hit/miss/eviction accounting;
* :class:`LRUCache` — the bounded least-recently-used map every layer
  builds on (capacity 0 disables it, turning every lookup into a miss);
* :class:`CacheConfig` — the knobs, threaded from :class:`repro.RgpdOS`
  down to the block device, DBFS and the DED.  ``CacheConfig.disabled()``
  restores the un-cached seed behaviour, which the FASTPATH benchmark
  uses as its baseline.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Hashable, Optional

#: Sentinel distinguishing "not cached" from a cached ``None`` value
#: (the decision cache legitimately caches denials as ``None``).
MISSING = object()


@dataclass
class CacheStats:
    """Hit/miss/eviction accounting for one cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "hit_rate": round(self.hit_rate, 4),
        }


class LRUCache:
    """A bounded least-recently-used map with observable stats.

    ``capacity <= 0`` disables the cache entirely: ``get`` always
    misses and ``put`` is a no-op, so callers need no branching to
    support the caches-off configuration.

    Every method takes an internal lock: ``move_to_end`` + eviction is
    a multi-step mutation of one ``OrderedDict``, and the request
    engine drives these caches from many worker threads at once — an
    unlocked eviction racing a lookup corrupts the recency list or
    raises mid-iteration.
    """

    def __init__(self, capacity: int, name: str = "lru") -> None:
        self.capacity = capacity
        self.name = name
        self.stats = CacheStats()
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()
        self._lock = threading.RLock()

    @property
    def enabled(self) -> bool:
        return self.capacity > 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def get(self, key: Hashable) -> object:
        """Return the cached value or :data:`MISSING`."""
        with self._lock:
            if key in self._entries:
                self.stats.hits += 1
                self._entries.move_to_end(key)
                return self._entries[key]
            self.stats.misses += 1
            return MISSING

    def peek(self, key: Hashable) -> object:
        """Like :meth:`get` but without touching recency or stats."""
        with self._lock:
            return self._entries.get(key, MISSING)

    def put(self, key: Hashable, value: object) -> None:
        if not self.enabled:
            return
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def invalidate(self, key: Hashable) -> bool:
        """Drop one entry; True if it was present."""
        with self._lock:
            if key in self._entries:
                del self._entries[key]
                self.stats.invalidations += 1
                return True
            return False

    def clear(self) -> int:
        """Drop every entry (remount/reset); returns how many."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self.stats.invalidations += dropped
            return dropped

    def as_dict(self) -> Dict[str, object]:
        report = {"name": self.name, "capacity": self.capacity, "size": len(self)}
        report.update(self.stats.as_dict())
        return report

    def __repr__(self) -> str:
        return (
            f"LRUCache({self.name}, {len(self)}/{self.capacity}, "
            f"hit_rate={self.stats.hit_rate:.2f})"
        )


@dataclass(frozen=True)
class CacheConfig:
    """Fast-path knobs, threaded from :class:`repro.RgpdOS` downward.

    ============================  ========================================
    ``page_cache_blocks``         block-device LRU page cache capacity
                                  (blocks); 0 disables
    ``record_cache_records``      DBFS decoded-record cache capacity
                                  (records); 0 disables
    ``listing_cache``             cache the sorted per-table uid listing
    ``membrane_object_cache``     cache decoded :class:`Membrane` objects
                                  (the JSON text cache predates this and
                                  is always on)
    ``membrane_cache_entries``    LRU bound shared by the membrane JSON
                                  and decoded-object caches (entries per
                                  cache); both write through on
                                  ``put_membrane`` so eviction only ever
                                  costs a re-read, never staleness
    ``decision_cache_entries``    DED membrane-decision cache capacity
                                  ((uid, purpose, version) entries);
                                  0 disables
    ============================  ========================================

    Every cache is write-through and invalidated on the mutation paths
    documented in ``docs/API.md`` ("Performance & caching"); disabling
    them changes performance only, never results.
    """

    page_cache_blocks: int = 1024
    record_cache_records: int = 4096
    listing_cache: bool = True
    membrane_object_cache: bool = True
    membrane_cache_entries: int = 8192
    decision_cache_entries: int = 8192

    @classmethod
    def disabled(cls) -> "CacheConfig":
        """The caches-off configuration (seed behaviour, FASTPATH baseline).

        ``membrane_cache_entries`` keeps its default: the membrane JSON
        cache is part of seed behaviour ("always on"), so the baseline
        bounds it rather than switching it off; the decoded-object
        cache stays gated by ``membrane_object_cache=False``.
        """
        return cls(
            page_cache_blocks=0,
            record_cache_records=0,
            listing_cache=False,
            membrane_object_cache=False,
            decision_cache_entries=0,
        )


#: The default configuration used when callers pass no explicit config.
DEFAULT_CACHE_CONFIG = CacheConfig()
