"""uFS-style inode layer.

Section 3(1) of the paper: *"We are rearchitecting uFS in order to
implement a database-oriented filesystem. ... The only part of uFS
that we keep is the implementation of the inode concept."*

This module is that kept part: a classic inode abstraction over the
simulated block device.  Both filesystems in the reproduction are
built on it —

* the ext4-like **file-based** filesystem (``repro.storage.extfs``)
  uses inodes of kind FILE / DIRECTORY, and
* **DBFS** (``repro.storage.dbfs``) uses the same inodes to build the
  paper's two "major inode trees": the per-subject PD tree and the
  database-structure (schema) tree, plus the format-descriptor inodes.

An inode owns a block list, a byte size, a small typed ``kind`` tag,
an attribute dict (where DBFS hangs table/membrane linkage), and a
children map (making trees natural to express).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from .. import errors
from .block import BlockDevice, load_bytes, store_bytes

# Inode kinds. Plain strings keep serialization trivial.
KIND_FILE = "file"
KIND_DIRECTORY = "directory"
KIND_TABLE = "table"          # DBFS: database-structure tree node (one per PD type)
KIND_SUBJECT = "subject"      # DBFS: root of one subject's PD subtree
KIND_RECORD = "record"        # DBFS: one piece of PD
KIND_MEMBRANE = "membrane"    # DBFS: the membrane wrapped around a record
KIND_FORMAT = "format"        # DBFS: format descriptor, read once per live session
KIND_INDEX = "index"          # DBFS: durable field-index root (holds page children)
KIND_INDEX_PAGE = "index-page"  # DBFS: one sorted run of (value, uid) index entries

_VALID_KINDS = frozenset(
    {KIND_FILE, KIND_DIRECTORY, KIND_TABLE, KIND_SUBJECT, KIND_RECORD,
     KIND_MEMBRANE, KIND_FORMAT, KIND_INDEX, KIND_INDEX_PAGE}
)


@dataclass
class Inode:
    """One inode: identity, kind, data extent, attributes, children."""

    number: int
    kind: str
    size: int = 0
    blocks: List[int] = field(default_factory=list)
    attrs: Dict[str, object] = field(default_factory=dict)
    children: Dict[str, int] = field(default_factory=dict)
    nlink: int = 1

    def __post_init__(self) -> None:
        if self.kind not in _VALID_KINDS:
            raise errors.InodeError(f"unknown inode kind {self.kind!r}")

    def is_tree_node(self) -> bool:
        """Directory-like inodes that may hold children."""
        return self.kind in (KIND_DIRECTORY, KIND_TABLE, KIND_SUBJECT,
                             KIND_INDEX)


class InodeTable:
    """Allocates inodes and moves their payloads to/from the device.

    The table is intentionally small and explicit: ``allocate``,
    ``get``, ``free``, plus ``write_payload``/``read_payload`` which
    manage the inode's block extent.  Freeing an inode releases its
    blocks back to the device **without scrubbing** (matching real
    filesystems); callers wanting crypto-erasure must scrub first —
    DBFS does, extfs does not.
    """

    def __init__(self, device: BlockDevice, max_inodes: int = 65536) -> None:
        if max_inodes <= 0:
            raise errors.InodeError(f"invalid inode table size {max_inodes}")
        self.device = device
        self.max_inodes = max_inodes
        self._inodes: Dict[int, Inode] = {}
        self._next_number = 1  # inode 0 is reserved, as tradition demands

    # -- lifecycle ----------------------------------------------------------

    def allocate(self, kind: str) -> Inode:
        """Create a fresh inode of ``kind``."""
        if len(self._inodes) >= self.max_inodes:
            raise errors.OutOfSpaceError(
                f"inode table full ({self.max_inodes} inodes)"
            )
        inode = Inode(number=self._next_number, kind=kind)
        self._inodes[self._next_number] = inode
        self._next_number += 1
        return inode

    def get(self, number: int) -> Inode:
        """Look up a live inode; raises :class:`InodeError` if absent."""
        inode = self._inodes.get(number)
        if inode is None:
            raise errors.InodeError(f"inode {number} does not exist")
        return inode

    def exists(self, number: int) -> bool:
        return number in self._inodes

    def free(self, number: int, scrub: bool = False) -> None:
        """Release an inode and its blocks.

        With ``scrub=True`` the data blocks are zeroed before release;
        otherwise the bytes linger on the device, recoverable by
        forensic scan.
        """
        inode = self.get(number)
        for block_no in inode.blocks:
            if scrub:
                self.device.scrub(block_no)
            self.device.free(block_no)
        del self._inodes[number]

    # -- payload IO ---------------------------------------------------------

    def write_payload(self, number: int, payload: bytes) -> None:
        """Replace an inode's data extent with ``payload``.

        Shadow-write ordering: the new extent is allocated and written
        *first*, then swapped in, then the old blocks released — a
        crash mid-rewrite leaves the inode pointing at its old, intact
        payload, never at a torn or empty extent.  Old blocks are
        freed (not scrubbed — callers choosing secure semantics use
        :meth:`rewrite_scrubbed`).
        """
        inode = self.get(number)
        old_blocks = inode.blocks
        inode.blocks = store_bytes(self.device, payload)
        inode.size = len(payload)
        for block_no in old_blocks:
            self.device.free(block_no)

    def rewrite_scrubbed(self, number: int, payload: bytes) -> None:
        """Like :meth:`write_payload` but zeroes the old extent.

        Same shadow-write ordering (write new, swap, then scrub+free
        old) so secure rewrites are also crash-atomic.
        """
        inode = self.get(number)
        old_blocks = inode.blocks
        inode.blocks = store_bytes(self.device, payload)
        inode.size = len(payload)
        for block_no in old_blocks:
            self.device.scrub(block_no)
            self.device.free(block_no)

    def read_payload(self, number: int) -> bytes:
        inode = self.get(number)
        return load_bytes(self.device, inode.blocks, inode.size)

    def read_payload_view(self, number: int) -> memoryview:
        """Read an inode's payload without copying when it fits one block.

        Single-extent payloads (the common case for DBFS records and
        index pages sized to the device geometry) come back as a slice
        of the block's own immutable bytes — no intermediate ``bytes``
        is materialized between the device and the codec.  Multi-block
        payloads still join (one copy), wrapped in a view so callers
        handle one type.
        """
        inode = self.get(number)
        if not inode.blocks:
            return memoryview(b"")
        if len(inode.blocks) == 1:
            return self.device.read_view(inode.blocks[0])[: inode.size]
        return memoryview(load_bytes(self.device, inode.blocks, inode.size))

    # -- tree operations ----------------------------------------------------

    def link_child(self, parent_no: int, name: str, child_no: int) -> None:
        """Attach ``child_no`` under ``parent_no`` as entry ``name``."""
        parent = self.get(parent_no)
        if not parent.is_tree_node():
            raise errors.InodeError(
                f"inode {parent_no} ({parent.kind}) cannot hold children"
            )
        if name in parent.children:
            raise errors.InodeError(
                f"inode {parent_no} already has a child named {name!r}"
            )
        child = self.get(child_no)
        parent.children[name] = child_no
        child.nlink += 1

    def unlink_child(self, parent_no: int, name: str) -> int:
        """Detach entry ``name``; returns the orphaned child's number."""
        parent = self.get(parent_no)
        child_no = parent.children.pop(name, None)
        if child_no is None:
            raise errors.InodeError(
                f"inode {parent_no} has no child named {name!r}"
            )
        if self.exists(child_no):
            self.get(child_no).nlink -= 1
        return child_no

    def lookup(self, parent_no: int, name: str) -> Inode:
        parent = self.get(parent_no)
        child_no = parent.children.get(name)
        if child_no is None:
            raise errors.InodeError(
                f"inode {parent_no} has no child named {name!r}"
            )
        return self.get(child_no)

    def walk(self, root_no: int) -> Iterator[Inode]:
        """Depth-first traversal of the tree rooted at ``root_no``."""
        stack = [root_no]
        seen = set()
        while stack:
            number = stack.pop()
            if number in seen or not self.exists(number):
                continue
            seen.add(number)
            inode = self.get(number)
            yield inode
            stack.extend(reversed(list(inode.children.values())))

    # -- introspection ------------------------------------------------------

    @property
    def live_inodes(self) -> int:
        return len(self._inodes)

    def numbers(self) -> List[int]:
        """All live inode numbers (crash recovery's reachability sweep)."""
        return list(self._inodes)

    def find_by_kind(self, kind: str) -> List[Inode]:
        return [inode for inode in self._inodes.values() if inode.kind == kind]

    def __repr__(self) -> str:
        return f"InodeTable({self.live_inodes} live inodes)"


def resolve_path(table: InodeTable, root_no: int, path: str) -> Optional[Inode]:
    """Resolve a ``/``-separated path from ``root_no``; None if absent."""
    current = table.get(root_no)
    for part in (p for p in path.split("/") if p):
        child_no = current.children.get(part)
        if child_no is None or not table.exists(child_no):
            return None
        current = table.get(child_no)
    return current
