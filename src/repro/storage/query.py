"""Request objects exchanged between the DED and DBFS.

The DED's first pipeline stage, ``ded_type2req``, "translates the
processing's input parameter type to requests at the destination of
DBFS".  These classes are those requests.  The two-phase protocol the
paper describes is explicit in the type structure:

1. a :class:`MembraneQuery` fetches membranes only
   (``ded_load_membrane``), so consent filtering happens *before* any
   PD leaves storage;
2. a :class:`DataQuery` then fetches actual data for the refs that
   passed the filter (``ded_load_data``), already projected to the
   fields the consent scope allows.

Write-side requests (:class:`StoreRequest`, :class:`UpdateRequest`,
:class:`DeleteRequest`) are issued only by the built-in F_pd^w
functions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Mapping, Optional, Sequence, Tuple

from .. import errors

# Predicate operators for record selection.
OP_EQ = "eq"
OP_NE = "ne"
OP_LT = "lt"
OP_LE = "le"
OP_GT = "gt"
OP_GE = "ge"
OP_CONTAINS = "contains"

_OPS: Dict[str, Callable[[object, object], bool]] = {
    OP_EQ: lambda a, b: a == b,
    OP_NE: lambda a, b: a != b,
    OP_LT: lambda a, b: a < b,        # type: ignore[operator]
    OP_LE: lambda a, b: a <= b,       # type: ignore[operator]
    OP_GT: lambda a, b: a > b,        # type: ignore[operator]
    OP_GE: lambda a, b: a >= b,       # type: ignore[operator]
    OP_CONTAINS: lambda a, b: b in a,  # type: ignore[operator]
}


@dataclass(frozen=True)
class Predicate:
    """One field condition, e.g. ``Predicate("year_of_birthdate", "lt", 1990)``."""

    field_name: str
    op: str
    value: object

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise errors.DBFSError(
                f"unknown predicate operator {self.op!r} (valid: {sorted(_OPS)})"
            )

    def evaluate(self, record: Mapping[str, object]) -> bool:
        """True if the record satisfies the condition.

        A record lacking the field never matches (three-valued logic
        collapsed to False, like SQL ``NULL`` comparisons).
        """
        if self.field_name not in record:
            return False
        try:
            return _OPS[self.op](record[self.field_name], self.value)
        except TypeError:
            return False

    def describe(self) -> str:
        return f"{self.field_name} {self.op} {self.value!r}"


# Surface syntax accepted by parse_predicate, longest operators first so
# ">=" is not tokenized as ">" + "=".
_SURFACE_OPS: Tuple[Tuple[str, str], ...] = (
    (">=", OP_GE),
    ("<=", OP_LE),
    ("!=", OP_NE),
    ("==", OP_EQ),
    ("~", OP_CONTAINS),
    (">", OP_GT),
    ("<", OP_LT),
    ("=", OP_EQ),
)


def parse_predicate(text: str) -> Predicate:
    """Parse ``"field<op>value"`` surface syntax into a :class:`Predicate`.

    Accepted operators: ``== = != < <= > >= ~`` (``~`` is *contains*).
    Values parse as int, then float, then bare string (surrounding
    single/double quotes are stripped) — e.g. ``city==Lyon``,
    ``year_of_birthdate>=1990``, ``name~'da'``.
    """
    for token, op in _SURFACE_OPS:
        index = text.find(token)
        if index > 0:
            field_name = text[:index].strip()
            raw_value = text[index + len(token):].strip()
            if not field_name.isidentifier():
                break  # e.g. ">= 1990" matching "=" with field ">"
            return Predicate(field_name, op, _parse_value(raw_value))
    raise errors.DBFSError(
        f"cannot parse predicate {text!r}; expected "
        "field<op>value with op one of == != < <= > >= ~"
    )


def _parse_value(raw: str) -> object:
    if len(raw) >= 2 and raw[0] == raw[-1] and raw[0] in ("'", '"'):
        return raw[1:-1]
    try:
        return int(raw)
    except ValueError:
        pass
    try:
        return float(raw)
    except ValueError:
        pass
    if raw in ("true", "True"):
        return True
    if raw in ("false", "False"):
        return False
    return raw


@dataclass(frozen=True)
class MembraneQuery:
    """Phase-1 request: fetch membranes of candidate PD.

    Selection is by type, optionally narrowed to one subject or an
    explicit ref list.  No data fields are readable at this phase.
    """

    pd_type: str
    subject_id: Optional[str] = None
    uids: Optional[Tuple[str, ...]] = None
    include_erased: bool = False


@dataclass(frozen=True)
class DataQuery:
    """Phase-2 request: fetch records for refs that passed the filter.

    ``fields`` carries the per-uid allowed field set the membranes
    granted — DBFS returns only those fields, so minimisation is
    enforced at the storage boundary, not just in the DED.
    """

    uids: Tuple[str, ...]
    fields: Mapping[str, FrozenSet[str]] = field(default_factory=dict)
    predicates: Tuple[Predicate, ...] = ()

    def allowed_fields_for(self, uid: str) -> Optional[FrozenSet[str]]:
        return self.fields.get(uid)

    def matches(self, record: Mapping[str, object]) -> bool:
        return all(p.evaluate(record) for p in self.predicates)


@dataclass(frozen=True)
class StoreRequest:
    """Create one PD record (built-in ``acquisition``/``copy``/derive).

    ``uid`` is normally minted by DBFS; the replication apply path
    (``repro.cluster``) passes the leader's uid so every node addresses
    the same PD by the same name.
    """

    pd_type: str
    record: Mapping[str, object]
    membrane_json: str  # serialized membrane — storage never sees it absent
    uid: Optional[str] = None


@dataclass(frozen=True)
class UpdateRequest:
    """Rewrite fields of one record (built-in ``update``)."""

    uid: str
    changes: Mapping[str, object]


@dataclass(frozen=True)
class DeleteRequest:
    """Erase one record (built-in ``delete``).

    ``mode`` selects between full scrubbing (``erase``) and the § 4
    authority-escrow construction (``escrow``).
    """

    uid: str
    mode: str = "escrow"

    def __post_init__(self) -> None:
        if self.mode not in ("erase", "escrow"):
            raise errors.DBFSError(
                f"unknown delete mode {self.mode!r} (valid: erase, escrow)"
            )
