"""B-tree secondary indexes for DBFS.

The paper's Idea 3 replaces "files as bytes" with typed records so the
OS can reason about PD at field granularity; once fields exist, a
database-oriented filesystem naturally wants field indexes ("DB
engines have seen significant improvement over the last years", § 2,
citing DBOS).  This module provides the index structure: a classic
B-tree (CLRS-style, minimum degree ``t``) over composite
``(field_value, uid)`` keys, so duplicate field values coexist and
every entry resolves to a record.

Operations: insert, delete, exact lookup, and half-open range scans —
everything the query layer's comparison predicates need.  The DBFS
wrapper (:class:`repro.storage.dbfs.DatabaseFS`) keeps indexes
consistent across store/update/delete; the ABL-I benchmark measures
what they buy over a full scan.
"""

from __future__ import annotations

import json
import zlib
from bisect import bisect_left, insort
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from .. import errors
from .codec import _json_default, _json_object_hook
from .inode import KIND_INDEX, KIND_INDEX_PAGE, InodeTable

Key = Tuple[object, str]  # (field value, uid)


class _Node:
    __slots__ = ("keys", "children", "leaf")

    def __init__(self, leaf: bool) -> None:
        self.keys: List[Key] = []
        self.children: List["_Node"] = []
        self.leaf = leaf


class BTree:
    """A B-tree of minimum degree ``t`` (each node holds t-1..2t-1 keys)."""

    def __init__(self, t: int = 16) -> None:
        if t < 2:
            raise errors.StorageError(f"B-tree minimum degree must be >= 2, got {t}")
        self.t = t
        self.root = _Node(leaf=True)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    # ------------------------------------------------------------------
    # Insert
    # ------------------------------------------------------------------

    def insert(self, key: Key) -> None:
        root = self.root
        if len(root.keys) == 2 * self.t - 1:
            new_root = _Node(leaf=False)
            new_root.children.append(root)
            self._split_child(new_root, 0)
            self.root = new_root
        self._insert_nonfull(self.root, key)
        self._size += 1

    def _split_child(self, parent: _Node, index: int) -> None:
        t = self.t
        child = parent.children[index]
        sibling = _Node(leaf=child.leaf)
        parent.keys.insert(index, child.keys[t - 1])
        parent.children.insert(index + 1, sibling)
        sibling.keys = child.keys[t:]
        child.keys = child.keys[: t - 1]
        if not child.leaf:
            sibling.children = child.children[t:]
            child.children = child.children[:t]

    def _insert_nonfull(self, node: _Node, key: Key) -> None:
        while not node.leaf:
            index = self._bisect(node.keys, key)
            child = node.children[index]
            if len(child.keys) == 2 * self.t - 1:
                self._split_child(node, index)
                if key > node.keys[index]:
                    index += 1
                child = node.children[index]
            node = child
        index = self._bisect(node.keys, key)
        node.keys.insert(index, key)

    @staticmethod
    def _bisect(keys: List[Key], key: Key) -> int:
        lo, hi = 0, len(keys)
        while lo < hi:
            mid = (lo + hi) // 2
            if keys[mid] < key:
                lo = mid + 1
            else:
                hi = mid
        return lo

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------

    def contains(self, key: Key) -> bool:
        node = self.root
        while True:
            index = self._bisect(node.keys, key)
            if index < len(node.keys) and node.keys[index] == key:
                return True
            if node.leaf:
                return False
            node = node.children[index]

    def scan(
        self, low: Optional[Key] = None, high: Optional[Key] = None
    ) -> Iterator[Key]:
        """Yield keys in ``[low, high)`` in sorted order."""
        yield from self._scan_node(self.root, low, high)

    def _scan_node(
        self, node: _Node, low: Optional[Key], high: Optional[Key]
    ) -> Iterator[Key]:
        start = 0 if low is None else self._bisect(node.keys, low)
        for index in range(start, len(node.keys) + 1):
            if not node.leaf:
                # Prune subtrees entirely above `high`.
                if index == 0 or high is None or node.keys[index - 1] < high:
                    yield from self._scan_node(node.children[index], low, high)
            if index < len(node.keys):
                key = node.keys[index]
                if high is not None and key >= high:
                    return
                if low is None or key >= low:
                    yield key

    # ------------------------------------------------------------------
    # Delete (rebalancing deletion, CLRS scheme)
    # ------------------------------------------------------------------

    def delete(self, key: Key) -> bool:
        """Remove ``key``; returns False if absent."""
        if not self.contains(key):
            return False
        self._delete(self.root, key)
        if not self.root.leaf and not self.root.keys:
            self.root = self.root.children[0]
        self._size -= 1
        return True

    def _delete(self, node: _Node, key: Key) -> None:
        t = self.t
        index = self._bisect(node.keys, key)
        if index < len(node.keys) and node.keys[index] == key:
            if node.leaf:
                node.keys.pop(index)
                return
            left, right = node.children[index], node.children[index + 1]
            if len(left.keys) >= t:
                predecessor = self._max_key(left)
                node.keys[index] = predecessor
                self._delete(left, predecessor)
            elif len(right.keys) >= t:
                successor = self._min_key(right)
                node.keys[index] = successor
                self._delete(right, successor)
            else:
                self._merge(node, index)
                self._delete(left, key)
            return
        if node.leaf:
            return  # not present (contains() should prevent this)
        child = node.children[index]
        if len(child.keys) == t - 1:
            index = self._fill(node, index)
            child = node.children[index]
        self._delete(child, key)

    def _max_key(self, node: _Node) -> Key:
        while not node.leaf:
            node = node.children[-1]
        return node.keys[-1]

    def _min_key(self, node: _Node) -> Key:
        while not node.leaf:
            node = node.children[0]
        return node.keys[0]

    def _merge(self, parent: _Node, index: int) -> None:
        """Merge children index and index+1 around parent key index."""
        left = parent.children[index]
        right = parent.children.pop(index + 1)
        left.keys.append(parent.keys.pop(index))
        left.keys.extend(right.keys)
        left.children.extend(right.children)

    def _fill(self, parent: _Node, index: int) -> int:
        """Ensure child ``index`` has >= t keys; returns (possibly
        shifted) child index to descend into."""
        t = self.t
        child = parent.children[index]
        if index > 0 and len(parent.children[index - 1].keys) >= t:
            donor = parent.children[index - 1]
            child.keys.insert(0, parent.keys[index - 1])
            parent.keys[index - 1] = donor.keys.pop()
            if not donor.leaf:
                child.children.insert(0, donor.children.pop())
            return index
        if (
            index < len(parent.keys)
            and len(parent.children[index + 1].keys) >= t
        ):
            donor = parent.children[index + 1]
            child.keys.append(parent.keys[index])
            parent.keys[index] = donor.keys.pop(0)
            if not donor.leaf:
                child.children.append(donor.children.pop(0))
            return index
        if index < len(parent.keys):
            self._merge(parent, index)
            return index
        self._merge(parent, index - 1)
        return index - 1

    # ------------------------------------------------------------------
    # Invariants (used by the property tests)
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Raise if any B-tree structural invariant is violated."""
        keys = list(self.scan())
        if keys != sorted(keys):
            raise errors.StorageError("B-tree keys out of order")
        if len(keys) != self._size:
            raise errors.StorageError(
                f"size mismatch: counted {len(keys)}, recorded {self._size}"
            )
        self._check_node(self.root, is_root=True)

    def _check_node(self, node: _Node, is_root: bool = False) -> int:
        t = self.t
        if not is_root and len(node.keys) < t - 1:
            raise errors.StorageError("underfull B-tree node")
        if len(node.keys) > 2 * t - 1:
            raise errors.StorageError("overfull B-tree node")
        if node.leaf:
            return 1
        if len(node.children) != len(node.keys) + 1:
            raise errors.StorageError("child/key count mismatch")
        depths = {self._check_node(child) for child in node.children}
        if len(depths) != 1:
            raise errors.StorageError("unbalanced B-tree")
        return depths.pop() + 1


@dataclass
class FieldIndex:
    """One secondary index: B-tree over (field value, uid).

    Besides lookups, the index maintains cardinality statistics — a
    per-value entry count plus the tracked min/max — cheap enough to
    keep exact on every add/remove.  The query planner consumes them
    through :meth:`estimate` to pick the most selective index for a
    multi-predicate query.
    """

    type_name: str
    field_name: str
    tree: BTree = field(default_factory=BTree)
    value_counts: Dict[object, int] = field(default_factory=dict)

    def add(self, value: object, uid: str) -> None:
        self.tree.insert((value, uid))
        self.value_counts[value] = self.value_counts.get(value, 0) + 1

    def remove(self, value: object, uid: str) -> bool:
        removed = self.tree.delete((value, uid))
        if removed:
            remaining = self.value_counts.get(value, 0) - 1
            if remaining > 0:
                self.value_counts[value] = remaining
            else:
                self.value_counts.pop(value, None)
        return removed

    def remove_uid(self, uid: str) -> int:
        """Drop every entry belonging to ``uid``.

        Crash-repair hook shared with :class:`DurableFieldIndex`: the
        rollback paths call it without knowing which values a half-born
        record carried.  Returns the number of entries dropped.
        """
        victims = [
            (value, entry_uid) for value, entry_uid in self.tree.scan()
            if entry_uid == uid
        ]
        for value, entry_uid in victims:
            self.remove(value, entry_uid)
        return len(victims)

    def exact(self, value: object) -> List[str]:
        """uids whose field equals ``value``."""
        return [
            uid for _, uid in self.tree.scan((value, ""), (value, "￿"))
        ]

    def range(
        self, low: Optional[object] = None, high: Optional[object] = None
    ) -> List[str]:
        """uids whose field is in ``[low, high)``."""
        low_key = None if low is None else (low, "")
        high_key = None if high is None else (high, "")
        return [uid for _, uid in self.tree.scan(low_key, high_key)]

    def __len__(self) -> int:
        return len(self.tree)

    # -- cardinality statistics (consumed by the query planner) ----------

    @property
    def distinct_values(self) -> int:
        return len(self.value_counts)

    def min_value(self) -> Optional[object]:
        if not len(self.tree):
            return None
        return self.tree._min_key(self.tree.root)[0]

    def max_value(self) -> Optional[object]:
        if not len(self.tree):
            return None
        return self.tree._max_key(self.tree.root)[0]

    def stats(self) -> Dict[str, object]:
        return {
            "entries": len(self.tree),
            "distinct": self.distinct_values,
            "min": self.min_value(),
            "max": self.max_value(),
        }

    def estimate(self, op: str, value: object) -> int:
        """Estimated number of matching entries for ``field <op> value``.

        Equality and inequality are exact (the per-value counts are
        maintained precisely); range operators interpolate under a
        uniform-distribution assumption when the tracked min/max and
        the probe value are all numeric, and fall back to half the
        entries otherwise.  Estimates never exceed the entry count and
        records *missing* the field are not represented at all, which
        matches the SQL-NULL evaluation rule.
        """
        entries = len(self.tree)
        if entries == 0:
            return 0
        try:
            if op == "eq":
                return self.value_counts.get(value, 0)
            if op == "ne":
                return entries - self.value_counts.get(value, 0)
        except TypeError:  # unhashable probe value
            return entries
        if op not in ("lt", "le", "gt", "ge"):
            return entries
        lo, hi = self.min_value(), self.max_value()
        numeric = all(
            isinstance(v, (int, float)) and not isinstance(v, bool)
            for v in (lo, hi, value)
        )
        if not numeric:
            return max(1, entries // 2)
        if hi == lo:
            below = entries if value > lo else 0  # type: ignore[operator]
        else:
            fraction = (value - lo) / (hi - lo)  # type: ignore[operator]
            fraction = min(1.0, max(0.0, fraction))
            below = int(entries * fraction)
        if op in ("lt", "le"):
            estimate = below
        else:
            estimate = entries - below
        return min(entries, max(0, estimate))


# --------------------------------------------------------------------------
# Bloom filters: the negative-lookup accelerator for durable indexes and
# per-table subject/uid membership (paper § 3(1) metadata fast path).
# --------------------------------------------------------------------------

_BLOOM_SEED = 0x9E3779B9
_SUM_MOD = 1 << 61


def bloom_key(value: object) -> bytes:
    """Canonical byte key for ``value`` under Python ``==`` semantics.

    Values that compare equal MUST map to the same key or the filter
    would return false negatives: ``True == 1 == 1.0`` in Python, so
    bools and integral floats collapse onto the int form.  Everything
    else gets a type-tag prefix so ``1`` and ``"1"`` stay distinct.
    """
    if value is None:
        return b"n:"
    if isinstance(value, bool):
        return b"i:%d" % int(value)
    if isinstance(value, int):
        return b"i:%d" % value
    if isinstance(value, float):
        if value.is_integer():
            return b"i:%d" % int(value)
        return b"f:" + repr(value).encode("ascii")
    if isinstance(value, str):
        return b"s:" + value.encode("utf-8")
    if isinstance(value, bytes):
        return b"b:" + value
    return b"j:" + json.dumps(
        value, sort_keys=True, default=_json_default
    ).encode("utf-8")


def entry_hash(value: object, uid: str) -> int:
    """Order-independent hash of one index entry (checksum building block)."""
    return zlib.crc32(bloom_key(value) + b"|" + uid.encode("utf-8"))


class BloomFilter:
    """Double-hashed bloom filter over canonical byte keys.

    The contract that matters for GDPR enforcement is the one-sided
    error: :meth:`might_contain` may say yes for an absent key, never
    no for a present one.  Removals therefore do not clear bits — they
    set :attr:`stale`, marking the filter an over-approximation of the
    live key set until the next rebuild (compaction).  A stale filter
    is still safe to consult; it just skips fewer lookups.
    """

    __slots__ = ("m_bits", "k", "bits", "stale")

    def __init__(self, m_bits: int = 65536, k: int = 4,
                 bits: Optional[bytearray] = None, stale: bool = False):
        if m_bits <= 0 or k <= 0:
            raise errors.StorageError(
                f"invalid bloom geometry: {m_bits} bits, {k} hashes"
            )
        self.m_bits = m_bits
        self.k = k
        self.bits = bits if bits is not None else bytearray((m_bits + 7) // 8)
        self.stale = stale

    @classmethod
    def sized(cls, expected_entries: int, bits_per_entry: int = 16,
              k: int = 4) -> "BloomFilter":
        """A filter sized for ``expected_entries`` (~0.2% false positives)."""
        m_bits = max(8192, expected_entries * bits_per_entry)
        m_bits = (m_bits + 7) // 8 * 8
        return cls(m_bits=m_bits, k=k)

    def _positions(self, key: bytes) -> Iterator[int]:
        h1 = zlib.crc32(key)
        h2 = zlib.crc32(key, _BLOOM_SEED) | 1  # odd => full-period stride
        m = self.m_bits
        for i in range(self.k):
            yield (h1 + i * h2) % m

    def add(self, key: bytes) -> None:
        bits = self.bits
        for pos in self._positions(key):
            bits[pos >> 3] |= 1 << (pos & 7)

    def might_contain(self, key: bytes) -> bool:
        bits = self.bits
        for pos in self._positions(key):
            if not bits[pos >> 3] & (1 << (pos & 7)):
                return False
        return True

    def union(self, other: "BloomFilter") -> None:
        """Fold ``other``'s bits in (both sides' keys then might_contain)."""
        if other.m_bits != self.m_bits or other.k != self.k:
            raise errors.StorageError(
                "bloom union requires identical filter geometry"
            )
        bits = self.bits
        for i, byte in enumerate(other.bits):
            bits[i] |= byte
        self.stale = self.stale or other.stale

    def to_bytes(self) -> bytes:
        return bytes(self.bits)

    @classmethod
    def from_bytes(cls, m_bits: int, k: int, data: bytes,
                   stale: bool = False) -> "BloomFilter":
        bits = bytearray(data)
        if len(bits) != (m_bits + 7) // 8:
            raise errors.StorageError(
                f"bloom payload is {len(bits)} bytes, geometry "
                f"{m_bits} bits needs {(m_bits + 7) // 8}"
            )
        return cls(m_bits=m_bits, k=k, bits=bits, stale=stale)

    def fill_ratio(self) -> float:
        set_bits = sum(bin(byte).count("1") for byte in self.bits)
        return set_bits / self.m_bits


# --------------------------------------------------------------------------
# Durable paged field index
# --------------------------------------------------------------------------

DEFAULT_PAGE_CAPACITY = 128
_MAX_STR = "￿"


@dataclass
class _PageRef:
    """In-memory summary of one on-device index page (from inode attrs)."""

    name: str
    inode_no: int
    min_key: Key
    max_key: Key
    count: int


class DurableFieldIndex:
    """A :class:`FieldIndex`-compatible secondary index persisted as
    fixed-capacity sorted pages on the block device.

    Layout: one ``KIND_INDEX`` root inode (child of the DBFS indexes
    root, named ``<type>.<field>``) whose children are
    ``KIND_INDEX_PAGE`` inodes.  Each page holds one sorted run of
    ``(value, uid)`` entries as a JSON payload; its inode attrs carry
    a summary (``min_key``/``max_key``/``count``) so lookups bisect
    summaries in memory and load only overlapping pages.  The root
    attrs carry the entry count plus two order-independent checksums
    (xor and sum of per-entry hashes) that validate the persisted
    value bloom at attach time; the root *payload* is the bloom bits,
    written by :meth:`flush`.

    Attach cost is O(pages-metadata), not O(entries): nothing decodes
    a record and no page payload is read until the first lookup — the
    property that makes remount cost flat in table size.

    Crash model (power cuts happen only at device writes; the inode
    metadata plane is synchronously durable): page rewrites are
    shadow-writes, so a torn write leaves the old payload intact and
    pages are never torn.  Summary/root attrs follow an
    **over-approximation rule** — expanding updates (count up, range
    widening, checksum fold-in) land *before* the page's device write,
    shrinking updates after.  A crash can therefore make a summary
    claim more than its page holds, never less: lookups never miss
    entries, and a checksum that drifted simply invalidates the
    persisted bloom (no skips until rebuilt) instead of enabling a
    false negative.  A crash mid-split leaves two pages with
    overlapping ranges; :meth:`_ensure_summaries` detects that from
    the summaries alone and repairs by merge + re-split.  Entry
    values are PD, so page rewrites scrub the old extent and dropped
    pages are scrubbed before their blocks are freed.
    """

    def __init__(self, inodes: InodeTable, root_no: int, type_name: str,
                 field_name: str,
                 page_capacity: int = DEFAULT_PAGE_CAPACITY,
                 page_reads=None, bloom_hits=None, bloom_skips=None):
        if page_capacity < 4:
            raise errors.StorageError(
                f"index page capacity must be >= 4, got {page_capacity}"
            )
        self.inodes = inodes
        self.root_no = root_no
        self.type_name = type_name
        self.field_name = field_name
        self.page_capacity = page_capacity
        #: value-membership bloom; None means "not trustworthy, consult
        #: pages" (never wrong, just slower) until the next rebuild.
        self.bloom: Optional[BloomFilter] = None
        #: attach defers the persisted-bloom payload read (O(entries)
        #: bits) until the filter is first consulted or mutated, so
        #: the attach phase itself stays O(1) in table size.
        self._bloom_pending = False
        self._summaries: Optional[List[_PageRef]] = None
        #: write-through entry cache keyed by page inode number: pages
        #: written or loaded this session are answered from memory, so
        #: live-session lookups cost zero device reads (the in-memory
        #: FieldIndex contract).  Attach starts cold — pages fault in
        #: lazily, which is what keeps remount flat in table size.
        self._page_cache: Dict[int, List[Key]] = {}
        self._page_reads = page_reads
        self._bloom_hits = bloom_hits
        self._bloom_skips = bloom_skips

    # -- creation / attach ------------------------------------------------

    @classmethod
    def create(cls, inodes: InodeTable, parent_no: int, type_name: str,
               field_name: str, **kwargs) -> "DurableFieldIndex":
        """Allocate and link a fresh (empty) durable index."""
        root = inodes.allocate(KIND_INDEX)
        root.attrs.update({
            "role": "field-index",
            "type": type_name,
            "field": field_name,
            "entries": 0,
            "entry_xor": 0,
            "entry_sum": 0,
            "next_page": 0,
        })
        inodes.link_child(parent_no, f"{type_name}.{field_name}", root.number)
        index = cls(inodes, root.number, type_name, field_name, **kwargs)
        index._summaries = []
        index.bloom = BloomFilter.sized(1024)
        return index

    @classmethod
    def attach(cls, inodes: InodeTable, root_no: int,
               **kwargs) -> "DurableFieldIndex":
        """Bind to an existing on-device index without reading any page."""
        root = inodes.get(root_no)
        index = cls(inodes, root_no, str(root.attrs["type"]),
                    str(root.attrs["field"]), **kwargs)
        index._bloom_pending = True
        return index

    def _bloom_filter(self) -> Optional[BloomFilter]:
        """The value bloom, resolving a deferred attach-time load.

        Mutators call this *before* touching the entry checksums:
        the persisted bits are only trusted while the stamped
        checksums still match the live attrs, so the load must happen
        ahead of the mutation or the filter would be discarded.
        """
        if self._bloom_pending:
            self._bloom_pending = False
            self._load_persisted_bloom()
        return self.bloom

    def _load_persisted_bloom(self) -> None:
        root = self.inodes.get(self.root_no)
        meta = root.attrs.get("bloom")
        if not isinstance(meta, dict):
            return
        # The persisted bits are only trusted when the entry checksums
        # they were stamped with still match the live ones — any
        # mutation (or crash mid-mutation) since the flush leaves a
        # mismatch, and a mismatched filter could false-negative.
        if (meta.get("entry_xor") != root.attrs.get("entry_xor", 0)
                or meta.get("entry_sum") != root.attrs.get("entry_sum", 0)):
            return
        try:
            payload = self.inodes.read_payload(self.root_no)
            self.bloom = BloomFilter.from_bytes(
                int(meta["m"]), int(meta["k"]), payload,
                stale=bool(meta.get("stale", False)),
            )
        except (errors.StorageError, KeyError, ValueError, TypeError):
            self.bloom = None

    # -- summaries / page IO ----------------------------------------------

    def _root_attrs(self) -> Dict[str, object]:
        return self.inodes.get(self.root_no).attrs

    def _ensure_summaries(self) -> List[_PageRef]:
        if self._summaries is None:
            root = self.inodes.get(self.root_no)
            refs: List[_PageRef] = []
            for name, child_no in root.children.items():
                page = self.inodes.get(child_no)
                refs.append(_PageRef(
                    name=name,
                    inode_no=child_no,
                    min_key=tuple(page.attrs["min_key"]),
                    max_key=tuple(page.attrs["max_key"]),
                    count=int(page.attrs["count"]),
                ))
            refs.sort(key=lambda ref: (ref.min_key, ref.name))
            self._summaries = refs
            self._repair_overlaps()
        return self._summaries

    def _repair_overlaps(self) -> None:
        """Merge away page-range overlaps left by a crash mid-split.

        Detection uses only the (over-approximating) summaries; repair
        loads just the overlapping pages, dedupes the union, and
        re-splits to capacity.
        """
        refs = self._summaries
        assert refs is not None
        i = 0
        while i + 1 < len(refs):
            left, right = refs[i], refs[i + 1]
            if left.max_key < right.min_key:
                i += 1
                continue
            merged = sorted(
                set(self._load_page(left)) | set(self._load_page(right))
            )
            # Drop the right page first (its content is now owned by
            # the rewritten left page), then rewrite left.
            self.inodes.unlink_child(self.root_no, right.name)
            refs.pop(i + 1)
            self._page_cache.pop(right.inode_no, None)
            self.inodes.free(right.inode_no, scrub=True)
            if merged:
                self._write_page(left, merged)
                left.count = len(merged)
                left.min_key, left.max_key = merged[0], merged[-1]
                self._sync_page_attrs(left)
                if len(merged) > self.page_capacity:
                    self._split(i, merged)
            else:
                self.inodes.unlink_child(self.root_no, left.name)
                refs.pop(i)
                self._page_cache.pop(left.inode_no, None)
                self.inodes.free(left.inode_no, scrub=True)

    def _load_page(self, ref: _PageRef) -> List[Key]:
        cached = self._page_cache.get(ref.inode_no)
        if cached is not None:
            return list(cached)
        if self._page_reads is not None:
            self._page_reads.inc()
        raw = self.inodes.read_payload_view(ref.inode_no)
        if not len(raw):
            return []
        rows = json.loads(str(raw, "utf-8"), object_hook=_json_object_hook)
        entries = [(row[0], row[1]) for row in rows]
        self._page_cache[ref.inode_no] = entries
        return list(entries)

    def _write_page(self, ref: _PageRef, entries: List[Key]) -> None:
        payload = json.dumps(
            [[value, uid] for value, uid in entries], default=_json_default
        ).encode("utf-8")
        # Entry values are PD: the replaced extent is scrubbed, not
        # merely freed, so dropped index bytes leave no residue.
        self.inodes.rewrite_scrubbed(ref.inode_no, payload)
        self._page_cache[ref.inode_no] = list(entries)

    def _sync_page_attrs(self, ref: _PageRef) -> None:
        attrs = self.inodes.get(ref.inode_no).attrs
        attrs["min_key"] = ref.min_key
        attrs["max_key"] = ref.max_key
        attrs["count"] = ref.count

    def _new_page(self, entries: List[Key]) -> _PageRef:
        root = self.inodes.get(self.root_no)
        seq = int(root.attrs.get("next_page", 0))
        root.attrs["next_page"] = seq + 1
        name = f"page:{seq}"
        page = self.inodes.allocate(KIND_INDEX_PAGE)
        ref = _PageRef(name=name, inode_no=page.number,
                       min_key=entries[0], max_key=entries[-1],
                       count=len(entries))
        # Summary before payload (expanding, from nonexistence): a cut
        # during the write leaves an empty page whose summary merely
        # over-claims.
        self._sync_page_attrs(ref)
        self.inodes.link_child(self.root_no, name, page.number)
        self._write_page(ref, entries)
        return ref

    # -- mutation ----------------------------------------------------------

    def add(self, value: object, uid: str) -> None:
        bloom = self._bloom_filter()
        refs = self._ensure_summaries()
        key: Key = (value, uid)
        digest = entry_hash(value, uid)
        attrs = self._root_attrs()
        # Expanding metadata first (crash rule in the class docstring).
        attrs["entries"] = int(attrs.get("entries", 0)) + 1
        attrs["entry_xor"] = int(attrs.get("entry_xor", 0)) ^ digest
        attrs["entry_sum"] = (int(attrs.get("entry_sum", 0)) + digest) % _SUM_MOD
        if bloom is not None:
            bloom.add(bloom_key(value))
        if not refs:
            refs.append(self._new_page([key]))
            return
        index = self._target_page(refs, key)
        ref = refs[index]
        entries = self._load_page(ref)
        insort(entries, key)
        ref.count = len(entries)
        if key < ref.min_key:
            ref.min_key = key
        if key > ref.max_key:
            ref.max_key = key
        self._sync_page_attrs(ref)
        if len(entries) > self.page_capacity:
            self._split(index, entries)
        else:
            self._write_page(ref, entries)

    @staticmethod
    def _target_page(refs: List[_PageRef], key: Key) -> int:
        lo, hi = 0, len(refs)
        while lo < hi:
            mid = (lo + hi) // 2
            if refs[mid].min_key <= key:
                lo = mid + 1
            else:
                hi = mid
        return max(0, lo - 1)

    def _split(self, index: int, entries: List[Key]) -> None:
        refs = self._summaries
        assert refs is not None
        ref = refs[index]
        mid = len(entries) // 2
        left, right = entries[:mid], entries[mid:]
        # Right half first into a fresh page: a cut between the two
        # writes leaves the old left page (still holding everything)
        # overlapping the new right page — repaired at next attach by
        # _repair_overlaps, with no entry ever unreachable.
        right_ref = self._new_page(right)
        refs.insert(index + 1, right_ref)
        self._write_page(ref, left)
        # Shrinking summary after the write.
        ref.count = len(left)
        ref.max_key = left[-1]
        self._sync_page_attrs(ref)

    def remove(self, value: object, uid: str) -> bool:
        self._bloom_filter()
        refs = self._ensure_summaries()
        key: Key = (value, uid)
        for index in self._overlapping(refs, key, key, inclusive_high=True):
            ref = refs[index]
            entries = self._load_page(ref)
            pos = bisect_left(entries, key)
            if pos < len(entries) and entries[pos] == key:
                entries.pop(pos)
                self._shrink_page(index, entries)
                digest = entry_hash(value, uid)
                attrs = self._root_attrs()
                attrs["entries"] = int(attrs.get("entries", 0)) - 1
                attrs["entry_xor"] = int(attrs.get("entry_xor", 0)) ^ digest
                attrs["entry_sum"] = (
                    int(attrs.get("entry_sum", 0)) - digest
                ) % _SUM_MOD
                if self.bloom is not None:
                    # Bits are never cleared (another entry may share
                    # them); the filter becomes an over-approximation.
                    self.bloom.stale = True
                return True
        return False

    def _shrink_page(self, index: int, entries: List[Key]) -> None:
        refs = self._summaries
        assert refs is not None
        ref = refs[index]
        if not entries:
            # Unlink first (metadata, atomic): if power dies mid-scrub
            # the page is merely orphaned and the recovery sweeps
            # finish scrubbing and freeing it.
            self.inodes.unlink_child(self.root_no, ref.name)
            refs.pop(index)
            self._page_cache.pop(ref.inode_no, None)
            self.inodes.free(ref.inode_no, scrub=True)
            return
        self._write_page(ref, entries)
        ref.count = len(entries)
        ref.min_key, ref.max_key = entries[0], entries[-1]
        self._sync_page_attrs(ref)

    def remove_uid(self, uid: str) -> int:
        """Crash repair: drop every entry for ``uid``, wherever it is.

        Used when a journal rollback or erasure reconciliation cannot
        know which field values a rolled-back record had indexed.  It
        loads every page anyway, so it also recomputes the entry count
        and checksums exactly, healing any over-approximation drift a
        crash left behind.
        """
        self._bloom_filter()
        refs = self._ensure_summaries()
        removed = 0
        total = 0
        xor = 0
        checksum = 0
        for index in reversed(range(len(refs))):
            ref = refs[index]
            entries = self._load_page(ref)
            kept = [(v, u) for v, u in entries if u != uid]
            if len(kept) != len(entries):
                removed += len(entries) - len(kept)
                self._shrink_page(index, kept)
            elif (ref.count != len(entries)
                    or (entries and (ref.min_key != entries[0]
                                     or ref.max_key != entries[-1]))):
                if entries:
                    ref.count = len(entries)
                    ref.min_key, ref.max_key = entries[0], entries[-1]
                    self._sync_page_attrs(ref)
                else:
                    self._shrink_page(index, entries)
            for value, entry_uid in kept:
                digest = entry_hash(value, entry_uid)
                xor ^= digest
                checksum = (checksum + digest) % _SUM_MOD
                total += 1
        attrs = self._root_attrs()
        attrs["entries"] = total
        attrs["entry_xor"] = xor
        attrs["entry_sum"] = checksum
        if removed and self.bloom is not None:
            self.bloom.stale = True
        return removed

    def bulk_build(self, pairs: Iterable[Key]) -> None:
        """Sorted one-pass build for an empty index (create-time backfill).

        Writes each page exactly once at 3/4 fill (headroom for later
        inserts) instead of rewriting a page per entry, and sizes the
        value bloom to the real entry count.
        """
        refs = self._ensure_summaries()
        if refs or len(self):
            raise errors.StorageError(
                "bulk_build requires an empty durable index"
            )
        entries = sorted(pairs)
        if not entries:
            return
        self.bloom = BloomFilter.sized(len(entries))
        self._bloom_pending = False
        fill = max(1, (self.page_capacity * 3) // 4)
        attrs = self._root_attrs()
        for start in range(0, len(entries), fill):
            chunk = entries[start:start + fill]
            for value, uid in chunk:
                digest = entry_hash(value, uid)
                attrs["entries"] = int(attrs.get("entries", 0)) + 1
                attrs["entry_xor"] = int(attrs.get("entry_xor", 0)) ^ digest
                attrs["entry_sum"] = (
                    int(attrs.get("entry_sum", 0)) + digest
                ) % _SUM_MOD
                self.bloom.add(bloom_key(value))
            refs.append(self._new_page(chunk))

    # -- lookups -----------------------------------------------------------

    def _overlapping(self, refs: List[_PageRef], low_key: Optional[Key],
                     high_key: Optional[Key],
                     inclusive_high: bool = False) -> List[int]:
        out = []
        for index, ref in enumerate(refs):
            if low_key is not None and ref.max_key < low_key:
                continue
            if high_key is not None:
                if inclusive_high:
                    if ref.min_key > high_key:
                        break
                elif ref.min_key >= high_key:
                    break
            out.append(index)
        return out

    def exact(self, value: object) -> List[str]:
        """uids whose field equals ``value`` (bloom-gated page loads)."""
        bloom = self._bloom_filter()
        if bloom is not None:
            if not bloom.might_contain(bloom_key(value)):
                if self._bloom_skips is not None:
                    self._bloom_skips.inc()
                return []
            if self._bloom_hits is not None:
                self._bloom_hits.inc()
        refs = self._ensure_summaries()
        low, high = (value, ""), (value, _MAX_STR)
        out: List[str] = []
        for index in self._overlapping(refs, low, high):
            entries = self._load_page(refs[index])
            lo = bisect_left(entries, low)
            hi = bisect_left(entries, high)
            out.extend(uid for _, uid in entries[lo:hi])
        return out

    def range(self, low: Optional[object] = None,
              high: Optional[object] = None) -> List[str]:
        """uids whose field is in ``[low, high)``."""
        refs = self._ensure_summaries()
        low_key = None if low is None else (low, "")
        high_key = None if high is None else (high, "")
        out: List[str] = []
        for index in self._overlapping(refs, low_key, high_key):
            entries = self._load_page(refs[index])
            lo = 0 if low_key is None else bisect_left(entries, low_key)
            hi = (len(entries) if high_key is None
                  else bisect_left(entries, high_key))
            out.extend(uid for _, uid in entries[lo:hi])
        return out

    def __len__(self) -> int:
        return int(self._root_attrs().get("entries", 0))

    # -- planner statistics ------------------------------------------------

    def min_value(self) -> Optional[object]:
        refs = self._ensure_summaries()
        return refs[0].min_key[0] if refs else None

    def max_value(self) -> Optional[object]:
        refs = self._ensure_summaries()
        return refs[-1].max_key[0] if refs else None

    def _count_exact(self, value: object) -> int:
        """Exact match count for eq/ne estimates (loads only the
        value's overlapping pages; negative probes cost zero loads via
        the bloom).  Raises TypeError on incomparable probes, which
        the caller maps to the same fallback FieldIndex uses."""
        bloom = self._bloom_filter()
        if bloom is not None:
            if not bloom.might_contain(bloom_key(value)):
                if self._bloom_skips is not None:
                    self._bloom_skips.inc()
                return 0
            if self._bloom_hits is not None:
                self._bloom_hits.inc()
        refs = self._ensure_summaries()
        low, high = (value, ""), (value, _MAX_STR)
        count = 0
        for index in self._overlapping(refs, low, high):
            entries = self._load_page(refs[index])
            count += bisect_left(entries, high) - bisect_left(entries, low)
        return count

    def estimate(self, op: str, value: object) -> int:
        """Estimated matches for ``field <op> value``.

        Same contract as :meth:`FieldIndex.estimate`: eq/ne exact,
        ranges interpolated from the summary min/max under a uniform
        assumption (no page loads), estimates never exceed the entry
        count.
        """
        entries = len(self)
        if entries == 0:
            return 0
        if op in ("eq", "ne"):
            try:
                matches = self._count_exact(value)
            except TypeError:  # incomparable probe value
                return entries
            return matches if op == "eq" else entries - matches
        if op not in ("lt", "le", "gt", "ge"):
            return entries
        lo, hi = self.min_value(), self.max_value()
        numeric = all(
            isinstance(v, (int, float)) and not isinstance(v, bool)
            for v in (lo, hi, value)
        )
        if not numeric:
            return max(1, entries // 2)
        if hi == lo:
            below = entries if value > lo else 0  # type: ignore[operator]
        else:
            fraction = (value - lo) / (hi - lo)  # type: ignore[operator]
            fraction = min(1.0, max(0.0, fraction))
            below = int(entries * fraction)
        if op in ("lt", "le"):
            estimate = below
        else:
            estimate = entries - below
        return min(entries, max(0, estimate))

    def stats(self) -> Dict[str, object]:
        refs = self._ensure_summaries()
        bloom = self._bloom_filter()
        return {
            "entries": len(self),
            "pages": len(refs),
            "min": self.min_value(),
            "max": self.max_value(),
            "bloom": None if bloom is None else {
                "m_bits": bloom.m_bits,
                "k": bloom.k,
                "stale": bloom.stale,
                "fill_ratio": round(bloom.fill_ratio(), 4),
            },
        }

    # -- maintenance -------------------------------------------------------

    def items(self) -> Iterator[Key]:
        """Every entry in sorted order (equivalence tests, compaction)."""
        for ref in self._ensure_summaries():
            yield from self._load_page(ref)

    def rebuild_bloom(self) -> None:
        """Rebuild the value bloom from the pages (fresh, not stale)."""
        bloom = BloomFilter.sized(max(1024, len(self)))
        for value, _ in self.items():
            bloom.add(bloom_key(value))
        self.bloom = bloom
        self._bloom_pending = False

    def flush(self) -> None:
        """Persist the value bloom into the root inode (clean unmount).

        Bits land before the attrs stamp: a cut during the payload
        write leaves the old bits with the old stamp, which simply
        fails validation at attach.  The stamp records the entry
        checksums the bits were built against, so a filter that
        predates unflushed mutations is never trusted.
        """
        if self._bloom_filter() is None:
            self.rebuild_bloom()
        attrs = self._root_attrs()
        self.inodes.rewrite_scrubbed(self.root_no, self.bloom.to_bytes())
        attrs["bloom"] = {
            "m": self.bloom.m_bits,
            "k": self.bloom.k,
            "stale": self.bloom.stale,
            "entry_xor": attrs.get("entry_xor", 0),
            "entry_sum": attrs.get("entry_sum", 0),
        }

    def compact(self) -> None:
        """Repack pages to the bulk fill factor and rebuild the bloom."""
        refs = self._ensure_summaries()
        entries = sorted(set(self.items()))
        for ref in refs:
            self.inodes.unlink_child(self.root_no, ref.name)
            self._page_cache.pop(ref.inode_no, None)
            self.inodes.free(ref.inode_no, scrub=True)
        refs.clear()
        attrs = self._root_attrs()
        attrs["entries"] = 0
        attrs["entry_xor"] = 0
        attrs["entry_sum"] = 0
        self.bloom = BloomFilter.sized(max(1024, len(entries)))
        self._bloom_pending = False
        fill = max(1, (self.page_capacity * 3) // 4)
        for start in range(0, len(entries), fill):
            chunk = entries[start:start + fill]
            for value, uid in chunk:
                digest = entry_hash(value, uid)
                attrs["entries"] = int(attrs["entries"]) + 1
                attrs["entry_xor"] = int(attrs["entry_xor"]) ^ digest
                attrs["entry_sum"] = (
                    int(attrs["entry_sum"]) + digest
                ) % _SUM_MOD
                self.bloom.add(bloom_key(value))
            refs.append(self._new_page(chunk))
        self.flush()

    def check_invariants(self) -> None:
        """Raise if pages are unsorted, overlapping, or miscounted."""
        refs = self._ensure_summaries()
        previous_max: Optional[Key] = None
        total = 0
        xor = 0
        checksum = 0
        for ref in refs:
            entries = self._load_page(ref)
            if entries != sorted(entries):
                raise errors.StorageError(f"index page {ref.name} unsorted")
            if entries:
                if (entries[0] < ref.min_key or entries[-1] > ref.max_key):
                    raise errors.StorageError(
                        f"index page {ref.name} outside its summary range"
                    )
                if previous_max is not None and entries[0] <= previous_max:
                    raise errors.StorageError("index pages overlap")
                previous_max = entries[-1]
            if len(entries) > ref.count:
                raise errors.StorageError(
                    f"index page {ref.name} holds more than its summary"
                )
            for value, uid in entries:
                digest = entry_hash(value, uid)
                xor ^= digest
                checksum = (checksum + digest) % _SUM_MOD
                total += 1
        attrs = self._root_attrs()
        if total > int(attrs.get("entries", 0)):
            raise errors.StorageError(
                "index holds more entries than the root summary claims"
            )
        if total == int(attrs.get("entries", 0)):
            if (xor != int(attrs.get("entry_xor", 0))
                    or checksum != int(attrs.get("entry_sum", 0))):
                raise errors.StorageError("index entry checksums drifted")
