"""B-tree secondary indexes for DBFS.

The paper's Idea 3 replaces "files as bytes" with typed records so the
OS can reason about PD at field granularity; once fields exist, a
database-oriented filesystem naturally wants field indexes ("DB
engines have seen significant improvement over the last years", § 2,
citing DBOS).  This module provides the index structure: a classic
B-tree (CLRS-style, minimum degree ``t``) over composite
``(field_value, uid)`` keys, so duplicate field values coexist and
every entry resolves to a record.

Operations: insert, delete, exact lookup, and half-open range scans —
everything the query layer's comparison predicates need.  The DBFS
wrapper (:class:`repro.storage.dbfs.DatabaseFS`) keeps indexes
consistent across store/update/delete; the ABL-I benchmark measures
what they buy over a full scan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from .. import errors

Key = Tuple[object, str]  # (field value, uid)


class _Node:
    __slots__ = ("keys", "children", "leaf")

    def __init__(self, leaf: bool) -> None:
        self.keys: List[Key] = []
        self.children: List["_Node"] = []
        self.leaf = leaf


class BTree:
    """A B-tree of minimum degree ``t`` (each node holds t-1..2t-1 keys)."""

    def __init__(self, t: int = 16) -> None:
        if t < 2:
            raise errors.StorageError(f"B-tree minimum degree must be >= 2, got {t}")
        self.t = t
        self.root = _Node(leaf=True)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    # ------------------------------------------------------------------
    # Insert
    # ------------------------------------------------------------------

    def insert(self, key: Key) -> None:
        root = self.root
        if len(root.keys) == 2 * self.t - 1:
            new_root = _Node(leaf=False)
            new_root.children.append(root)
            self._split_child(new_root, 0)
            self.root = new_root
        self._insert_nonfull(self.root, key)
        self._size += 1

    def _split_child(self, parent: _Node, index: int) -> None:
        t = self.t
        child = parent.children[index]
        sibling = _Node(leaf=child.leaf)
        parent.keys.insert(index, child.keys[t - 1])
        parent.children.insert(index + 1, sibling)
        sibling.keys = child.keys[t:]
        child.keys = child.keys[: t - 1]
        if not child.leaf:
            sibling.children = child.children[t:]
            child.children = child.children[:t]

    def _insert_nonfull(self, node: _Node, key: Key) -> None:
        while not node.leaf:
            index = self._bisect(node.keys, key)
            child = node.children[index]
            if len(child.keys) == 2 * self.t - 1:
                self._split_child(node, index)
                if key > node.keys[index]:
                    index += 1
                child = node.children[index]
            node = child
        index = self._bisect(node.keys, key)
        node.keys.insert(index, key)

    @staticmethod
    def _bisect(keys: List[Key], key: Key) -> int:
        lo, hi = 0, len(keys)
        while lo < hi:
            mid = (lo + hi) // 2
            if keys[mid] < key:
                lo = mid + 1
            else:
                hi = mid
        return lo

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------

    def contains(self, key: Key) -> bool:
        node = self.root
        while True:
            index = self._bisect(node.keys, key)
            if index < len(node.keys) and node.keys[index] == key:
                return True
            if node.leaf:
                return False
            node = node.children[index]

    def scan(
        self, low: Optional[Key] = None, high: Optional[Key] = None
    ) -> Iterator[Key]:
        """Yield keys in ``[low, high)`` in sorted order."""
        yield from self._scan_node(self.root, low, high)

    def _scan_node(
        self, node: _Node, low: Optional[Key], high: Optional[Key]
    ) -> Iterator[Key]:
        start = 0 if low is None else self._bisect(node.keys, low)
        for index in range(start, len(node.keys) + 1):
            if not node.leaf:
                # Prune subtrees entirely above `high`.
                if index == 0 or high is None or node.keys[index - 1] < high:
                    yield from self._scan_node(node.children[index], low, high)
            if index < len(node.keys):
                key = node.keys[index]
                if high is not None and key >= high:
                    return
                if low is None or key >= low:
                    yield key

    # ------------------------------------------------------------------
    # Delete (rebalancing deletion, CLRS scheme)
    # ------------------------------------------------------------------

    def delete(self, key: Key) -> bool:
        """Remove ``key``; returns False if absent."""
        if not self.contains(key):
            return False
        self._delete(self.root, key)
        if not self.root.leaf and not self.root.keys:
            self.root = self.root.children[0]
        self._size -= 1
        return True

    def _delete(self, node: _Node, key: Key) -> None:
        t = self.t
        index = self._bisect(node.keys, key)
        if index < len(node.keys) and node.keys[index] == key:
            if node.leaf:
                node.keys.pop(index)
                return
            left, right = node.children[index], node.children[index + 1]
            if len(left.keys) >= t:
                predecessor = self._max_key(left)
                node.keys[index] = predecessor
                self._delete(left, predecessor)
            elif len(right.keys) >= t:
                successor = self._min_key(right)
                node.keys[index] = successor
                self._delete(right, successor)
            else:
                self._merge(node, index)
                self._delete(left, key)
            return
        if node.leaf:
            return  # not present (contains() should prevent this)
        child = node.children[index]
        if len(child.keys) == t - 1:
            index = self._fill(node, index)
            child = node.children[index]
        self._delete(child, key)

    def _max_key(self, node: _Node) -> Key:
        while not node.leaf:
            node = node.children[-1]
        return node.keys[-1]

    def _min_key(self, node: _Node) -> Key:
        while not node.leaf:
            node = node.children[0]
        return node.keys[0]

    def _merge(self, parent: _Node, index: int) -> None:
        """Merge children index and index+1 around parent key index."""
        left = parent.children[index]
        right = parent.children.pop(index + 1)
        left.keys.append(parent.keys.pop(index))
        left.keys.extend(right.keys)
        left.children.extend(right.children)

    def _fill(self, parent: _Node, index: int) -> int:
        """Ensure child ``index`` has >= t keys; returns (possibly
        shifted) child index to descend into."""
        t = self.t
        child = parent.children[index]
        if index > 0 and len(parent.children[index - 1].keys) >= t:
            donor = parent.children[index - 1]
            child.keys.insert(0, parent.keys[index - 1])
            parent.keys[index - 1] = donor.keys.pop()
            if not donor.leaf:
                child.children.insert(0, donor.children.pop())
            return index
        if (
            index < len(parent.keys)
            and len(parent.children[index + 1].keys) >= t
        ):
            donor = parent.children[index + 1]
            child.keys.append(parent.keys[index])
            parent.keys[index] = donor.keys.pop(0)
            if not donor.leaf:
                child.children.append(donor.children.pop(0))
            return index
        if index < len(parent.keys):
            self._merge(parent, index)
            return index
        self._merge(parent, index - 1)
        return index - 1

    # ------------------------------------------------------------------
    # Invariants (used by the property tests)
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Raise if any B-tree structural invariant is violated."""
        keys = list(self.scan())
        if keys != sorted(keys):
            raise errors.StorageError("B-tree keys out of order")
        if len(keys) != self._size:
            raise errors.StorageError(
                f"size mismatch: counted {len(keys)}, recorded {self._size}"
            )
        self._check_node(self.root, is_root=True)

    def _check_node(self, node: _Node, is_root: bool = False) -> int:
        t = self.t
        if not is_root and len(node.keys) < t - 1:
            raise errors.StorageError("underfull B-tree node")
        if len(node.keys) > 2 * t - 1:
            raise errors.StorageError("overfull B-tree node")
        if node.leaf:
            return 1
        if len(node.children) != len(node.keys) + 1:
            raise errors.StorageError("child/key count mismatch")
        depths = {self._check_node(child) for child in node.children}
        if len(depths) != 1:
            raise errors.StorageError("unbalanced B-tree")
        return depths.pop() + 1


@dataclass
class FieldIndex:
    """One secondary index: B-tree over (field value, uid).

    Besides lookups, the index maintains cardinality statistics — a
    per-value entry count plus the tracked min/max — cheap enough to
    keep exact on every add/remove.  The query planner consumes them
    through :meth:`estimate` to pick the most selective index for a
    multi-predicate query.
    """

    type_name: str
    field_name: str
    tree: BTree = field(default_factory=BTree)
    value_counts: Dict[object, int] = field(default_factory=dict)

    def add(self, value: object, uid: str) -> None:
        self.tree.insert((value, uid))
        self.value_counts[value] = self.value_counts.get(value, 0) + 1

    def remove(self, value: object, uid: str) -> bool:
        removed = self.tree.delete((value, uid))
        if removed:
            remaining = self.value_counts.get(value, 0) - 1
            if remaining > 0:
                self.value_counts[value] = remaining
            else:
                self.value_counts.pop(value, None)
        return removed

    def exact(self, value: object) -> List[str]:
        """uids whose field equals ``value``."""
        return [
            uid for _, uid in self.tree.scan((value, ""), (value, "￿"))
        ]

    def range(
        self, low: Optional[object] = None, high: Optional[object] = None
    ) -> List[str]:
        """uids whose field is in ``[low, high)``."""
        low_key = None if low is None else (low, "")
        high_key = None if high is None else (high, "")
        return [uid for _, uid in self.tree.scan(low_key, high_key)]

    def __len__(self) -> int:
        return len(self.tree)

    # -- cardinality statistics (consumed by the query planner) ----------

    @property
    def distinct_values(self) -> int:
        return len(self.value_counts)

    def min_value(self) -> Optional[object]:
        if not len(self.tree):
            return None
        return self.tree._min_key(self.tree.root)[0]

    def max_value(self) -> Optional[object]:
        if not len(self.tree):
            return None
        return self.tree._max_key(self.tree.root)[0]

    def stats(self) -> Dict[str, object]:
        return {
            "entries": len(self.tree),
            "distinct": self.distinct_values,
            "min": self.min_value(),
            "max": self.max_value(),
        }

    def estimate(self, op: str, value: object) -> int:
        """Estimated number of matching entries for ``field <op> value``.

        Equality and inequality are exact (the per-value counts are
        maintained precisely); range operators interpolate under a
        uniform-distribution assumption when the tracked min/max and
        the probe value are all numeric, and fall back to half the
        entries otherwise.  Estimates never exceed the entry count and
        records *missing* the field are not represented at all, which
        matches the SQL-NULL evaluation rule.
        """
        entries = len(self.tree)
        if entries == 0:
            return 0
        try:
            if op == "eq":
                return self.value_counts.get(value, 0)
            if op == "ne":
                return entries - self.value_counts.get(value, 0)
        except TypeError:  # unhashable probe value
            return entries
        if op not in ("lt", "le", "gt", "ge"):
            return entries
        lo, hi = self.min_value(), self.max_value()
        numeric = all(
            isinstance(v, (int, float)) and not isinstance(v, bool)
            for v in (lo, hi, value)
        )
        if not numeric:
            return max(1, entries // 2)
        if hi == lo:
            below = entries if value > lo else 0  # type: ignore[operator]
        else:
            fraction = (value - lo) / (hi - lo)  # type: ignore[operator]
            fraction = min(1.0, max(0.0, fraction))
            below = int(entries * fraction)
        if op in ("lt", "le"):
            estimate = below
        else:
            estimate = entries - below
        return min(entries, max(0, estimate))
