"""CrashSim — crash-consistency harness for DBFS and the sharded fleet.

The harness answers one question exhaustively: *is there any single
point in time at which losing power corrupts the store or leaks
erased PD?*  It runs a fixed GDPRBench-style reference workload
(stores, one group-commit batch, one RTBF erasure, a post-erasure
store) over :class:`~repro.storage.faults.FaultyBlockDevice`, cuts
power at **every** write index in turn, and after each cut performs a
true remount: a *fresh* :class:`~repro.storage.journal.Journal` and
:class:`~repro.storage.dbfs.DatabaseFS` are reconstructed from the
surviving device bytes and inode table alone —
no in-memory journal index, page cache, or DBFS cache crosses the
crash (``DatabaseFS.remount_from_device`` /
``ShardedDBFS.remount_from_devices`` drop all of it).

Three invariants are checked after every recovery:

1. **Committed data is durable** — every store whose call returned
   before the cut is present and byte-for-byte readable afterwards.
2. **Uncommitted groups vanish atomically** — a torn group-commit
   batch leaves either all of its stores or none of them; a torn solo
   store leaves either a fully readable record or nothing.
3. **Zero PD residue after erasure** — once an erasure has started,
   recovery rolls it *forward* (completing an erasure is GDPR-safe;
   resurrecting scrubbed PD never is), and the erased subject's
   needles appear nowhere: not on the medium outside live records,
   not in the journal extent, not in the page cache.

With ``shard_count > 1`` all shards share one
:class:`~repro.storage.faults.FaultInjector` — a single power rail
and a global write index — so the cut lands mid-flight across the
fleet and each shard must recover independently
(degraded-shard isolation is a failure here: the reference workload
must recover every shard).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .. import errors
from ..core.active_data import AccessCredential
from ..core.crypto import Authority
from ..core.datatypes import FieldDef, PDType
from ..core.membrane import membrane_for_type
from .dbfs import DatabaseFS
from .faults import FaultInjector, FaultPlan, FaultyBlockDevice
from .journal import JournalConfig
from .query import (
    DataQuery,
    DeleteRequest,
    MembraneQuery,
    Predicate,
    StoreRequest,
    UpdateRequest,
)
from .shard import ShardedDBFS

DED = AccessCredential(holder="crashsim", is_ded=True)

#: Reference workload geometry — small blocks keep the write count
#: (and hence the sweep size) manageable while still forcing
#: multi-block payloads and journal records.
BLOCK_COUNT = 2048
BLOCK_SIZE = 256
JOURNAL_BLOCKS = 64
PAGE_CACHE_BLOCKS = 128

SUBJECTS = 5
ERASED_SUBJECT = 0
ALL_FIELDS = frozenset({"name", "ssn", "year"})


def reference_type() -> PDType:
    return PDType(
        name="crash_user",
        fields=(
            FieldDef("name", "string"),
            FieldDef("ssn", "string", sensitive=True),
            FieldDef("year", "int"),
        ),
    )


def name_needle(i: int) -> str:
    return f"Crash Victim {i}"


def ssn_needle(i: int) -> str:
    return f"SSN-CRASH-{i:04d}"


@dataclass
class CrashTrial:
    """Outcome of one cut-remount-check cycle."""

    cut_after: int
    crashed: bool
    completed_steps: List[str]
    failures: List[str]
    recovery_report: Dict[str, object] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.failures


@dataclass
class CrashSweepReport:
    """Aggregate of a full sweep: one trial per write index."""

    shard_count: int
    format_writes: int
    workload_writes: int
    trials: List[CrashTrial]

    @property
    def passed(self) -> bool:
        return all(t.ok for t in self.trials)

    def failing_trials(self) -> List[CrashTrial]:
        return [t for t in self.trials if not t.ok]

    def summary(self) -> Dict[str, object]:
        return {
            "shard_count": self.shard_count,
            "format_writes": self.format_writes,
            "workload_writes": self.workload_writes,
            "trials": len(self.trials),
            "failed": len(self.failing_trials()),
            "passed": self.passed,
        }


class CrashSim:
    """Build fleets over faulty devices, crash them, and audit recovery."""

    def __init__(
        self,
        shard_count: int = 1,
        seed: int = 0,
        journal_config: Optional[JournalConfig] = None,
        record_codec: str = "v2",
        compaction: bool = False,
    ) -> None:
        if shard_count < 1:
            raise errors.DBFSError(f"invalid shard count {shard_count}")
        self.shard_count = shard_count
        self.seed = seed
        self.journal_config = journal_config
        self.record_codec = record_codec
        #: With ``compaction=True`` the reference workload ends with a
        #: full :meth:`DatabaseFS.compact` pass (record rewrite, index
        #: repack, bloom rebuild, sweeps, journal checkpoint), so the
        #: sweep cuts power inside every compaction write too.
        self.compaction = compaction
        self._authority = Authority(bits=512, seed=seed + 7)
        self._operator_key = self._authority.issue_operator_key("crashsim-op")

    # -- fleet construction -------------------------------------------------

    def _build(
        self, plan: FaultPlan
    ) -> Tuple[FaultInjector, List[FaultyBlockDevice], object]:
        """Format a fresh fleet over faulty devices sharing one rail."""
        injector = FaultInjector(plan)
        devices = [
            FaultyBlockDevice(
                block_count=BLOCK_COUNT,
                block_size=BLOCK_SIZE,
                page_cache_blocks=PAGE_CACHE_BLOCKS,
                injector=injector,
            )
            for _ in range(self.shard_count)
        ]
        if self.shard_count == 1:
            fs: object = DatabaseFS(
                device=devices[0],
                operator_key=self._operator_key,
                journal_blocks=JOURNAL_BLOCKS,
                journal_config=self.journal_config,
                record_codec=self.record_codec,
            )
        else:
            fs = ShardedDBFS(
                devices=devices,
                operator_key=self._operator_key,
                journal_blocks=JOURNAL_BLOCKS,
                journal_config=self.journal_config,
                record_codec=self.record_codec,
            )
        return injector, devices, fs

    def _inode_tables(self, fs: object) -> List[object]:
        if isinstance(fs, DatabaseFS):
            return [fs.inodes]
        return [shard.inodes for shard in fs._shards]  # type: ignore[union-attr]

    def _remount(self, fs: object, devices: Sequence[FaultyBlockDevice]) -> object:
        tables = self._inode_tables(fs)
        if self.shard_count == 1:
            return DatabaseFS.remount_from_device(
                devices[0],
                tables[0],
                operator_key=self._operator_key,
                journal_config=self.journal_config,
                record_codec=self.record_codec,
            )
        return ShardedDBFS.remount_from_devices(
            list(devices),
            tables,
            operator_key=self._operator_key,
            journal_config=self.journal_config,
            record_codec=self.record_codec,
        )

    # -- reference workload -------------------------------------------------

    def _store(self, fs: object, i: int) -> str:
        membrane = membrane_for_type(
            reference_type(), f"crash-subject-{i}", created_at=0.0
        )
        ref = fs.store(  # type: ignore[union-attr]
            StoreRequest(
                pd_type="crash_user",
                record={
                    "name": name_needle(i),
                    "ssn": ssn_needle(i),
                    "year": 1900 + i,
                },
                membrane_json=membrane.to_json(),
            ),
            DED,
        )
        return ref.uid

    def run_workload(self, fs: object, progress: List[str], uids: Dict[int, str]) -> None:
        """The reference workload. ``progress`` / ``uids`` are appended
        step by step so a mid-workload crash leaves an exact account of
        what had already returned."""
        fs.create_type(reference_type(), DED)  # type: ignore[union-attr]
        progress.append("create_type")
        # Durable field indexes declared up front: every subsequent
        # store/update/erase rewrites index pages on the device, so the
        # sweep cuts power inside every index-page write too.
        fs.create_index("crash_user", "name", DED)  # type: ignore[union-attr]
        progress.append("index:name")
        fs.create_index("crash_user", "year", DED)  # type: ignore[union-attr]
        progress.append("index:year")
        uids[0] = self._store(fs, 0)
        progress.append("store:0")
        uids[1] = self._store(fs, 1)
        progress.append("store:1")
        batch_ctx = (
            fs.batch() if isinstance(fs, ShardedDBFS) else fs.journal.batch()
        )
        with batch_ctx:
            uids[2] = self._store(fs, 2)
            uids[3] = self._store(fs, 3)
        progress.append("batch:2,3")
        fs.update(  # type: ignore[union-attr]
            UpdateRequest(uid=uids[1], changes={"year": 2001}), DED
        )
        progress.append("update:1")
        fs.delete(DeleteRequest(uids[0], mode="erase"), DED)  # type: ignore[union-attr]
        progress.append("erase:0")
        uids[4] = self._store(fs, 4)
        progress.append("store:4")
        if self.compaction:
            # The retention path's durable-plane reclaim, post-erasure:
            # every write it performs (shadow record rewrites, index
            # page repacks under their compact-index intents, bloom
            # sidecars, orphan scrubs, the checkpoint marker) becomes a
            # cut point of the sweep.
            fs.compact()  # type: ignore[union-attr]
            progress.append("compact")

    # -- invariants ---------------------------------------------------------

    def _readable(self, fs: object, uid: str, i: int) -> Optional[str]:
        """Fully read record ``uid``; returns a failure string or None."""
        try:
            records = fs.fetch_records(  # type: ignore[union-attr]
                DataQuery(uids=(uid,), fields={uid: ALL_FIELDS}), DED
            )
        except errors.RgpdOSError as exc:
            return f"record {uid} unreadable after recovery: {exc}"
        record = records.get(uid)
        if record is None:
            return f"record {uid} missing from fetch after recovery"
        if record.get("name") != name_needle(i) or record.get("ssn") != ssn_needle(i):
            return f"record {uid} corrupted after recovery: {record!r}"
        return None

    def check_invariants(
        self,
        recovered: object,
        devices: Sequence[FaultyBlockDevice],
        completed: Sequence[str],
        uids: Dict[int, str],
    ) -> List[str]:
        failures: List[str] = []
        if isinstance(recovered, ShardedDBFS) and recovered.degraded_shards:
            failures.append(
                f"shards degraded after recovery: {recovered.degraded_shards}"
            )
            return failures
        live = set(recovered.all_uids())  # type: ignore[union-attr]

        def durable(i: int, label: str) -> None:
            uid = uids.get(i)
            if uid is None or uid not in live:
                failures.append(f"committed {label} lost after recovery")
                return
            problem = self._readable(recovered, uid, i)
            if problem:
                failures.append(problem)

        # 1. committed data is durable
        for i in (1, 4):
            if f"store:{i}" in completed:
                durable(i, f"store:{i}")
        if "batch:2,3" in completed:
            durable(2, "batch store:2")
            durable(3, "batch store:3")
        else:
            # 2. a torn batch vanishes atomically
            present = [i for i in (2, 3) if uids.get(i) in live]
            if len(present) == 1:
                failures.append(
                    f"torn batch recovered non-atomically: only subject "
                    f"{present[0]} survived"
                )
            for i in present:
                problem = self._readable(recovered, uids[i], i)
                if problem:
                    failures.append(f"half-applied batch member: {problem}")
        # a torn solo store may survive only fully-formed
        for i in (0, 1, 4):
            if f"store:{i}" in completed:
                continue
            uid = uids.get(i)
            if uid is not None and uid in live:
                if i == ERASED_SUBJECT and "erase:0" in completed:
                    continue
                membrane_ok = True
                try:
                    erased = recovered.get_membrane(uid, DED).erased  # type: ignore[union-attr]
                except errors.RgpdOSError:
                    membrane_ok = False
                    erased = False
                if not membrane_ok:
                    failures.append(f"torn store {uid} has no membrane")
                elif not erased:
                    problem = self._readable(recovered, uid, i)
                    if problem:
                        failures.append(f"half-applied store: {problem}")

        # 3. zero PD residue once an erasure is (or must be) complete
        uid0 = uids.get(ERASED_SUBJECT)
        erase_completed = "erase:0" in completed
        erased_now = False
        if uid0 is not None and uid0 in live:
            try:
                erased_now = recovered.get_membrane(uid0, DED).erased  # type: ignore[union-attr]
            except errors.RgpdOSError as exc:
                failures.append(f"membrane of subject 0 unreadable: {exc}")
        if erase_completed and uid0 is not None:
            if uid0 not in live:
                failures.append("erased subject's membrane lost after recovery")
            elif not erased_now:
                failures.append(
                    "completed erasure rolled back: subject 0 no longer "
                    "marked erased after recovery"
                )
        if erased_now or erase_completed:
            needles = [
                name_needle(ERASED_SUBJECT).encode("utf-8"),
                ssn_needle(ERASED_SUBJECT).encode("utf-8"),
            ]
            residue = recovered.residue_counts(  # type: ignore[union-attr]
                needles, subject_id=f"crash-subject-{ERASED_SUBJECT}"
            )
            for plane, count in residue.items():
                if count:
                    failures.append(
                        f"PD residue after erasure: {count} {plane} still "
                        f"hold the erased subject's data"
                    )
            for device in devices:
                for needle in needles:
                    hits = device.scan_cache(needle)
                    if hits:
                        failures.append(
                            f"PD residue in page cache after erasure: "
                            f"blocks {hits}"
                        )
        elif uid0 is not None and uid0 in live and "store:0" in completed:
            # erasure never started (or was lawfully rolled back with
            # nothing scrubbed) — the record must then be intact.
            problem = self._readable(recovered, uid0, ERASED_SUBJECT)
            if problem:
                failures.append(f"subject 0 half-erased: {problem}")

        # 4. durable indexes recovered consistent: lookups agree with
        # the surviving records and never surface erased or rolled-back
        # uids (phantoms), and the table bloom never drops a live
        # subject or invents an unknown one.
        if "create_type" in completed:
            failures.extend(
                self._check_index_consistency(recovered, uids, live)
            )
        return failures

    def _check_index_consistency(
        self, recovered: object, uids: Dict[int, str], live: set
    ) -> List[str]:
        failures: List[str] = []
        for i in range(SUBJECTS):
            uid = uids.get(i)
            expect_live = uid is not None and uid in live
            erased = False
            if expect_live:
                try:
                    erased = recovered.get_membrane(uid, DED).erased  # type: ignore[union-attr]
                except errors.RgpdOSError:
                    erased = False
            try:
                matches = recovered.select_uids(  # type: ignore[union-attr]
                    "crash_user", Predicate("name", "eq", name_needle(i)), DED
                )
            except errors.RgpdOSError as exc:
                failures.append(f"index lookup failed after recovery: {exc}")
                continue
            if expect_live and not erased:
                if matches != [uid]:
                    failures.append(
                        f"index lookup for subject {i} returned "
                        f"{matches!r}, expected [{uid!r}]"
                    )
                # The record's *current* field values must be indexed
                # (an update torn either way lands on exactly one side).
                try:
                    record = recovered.fetch_records(  # type: ignore[union-attr]
                        DataQuery(uids=(uid,), fields={uid: ALL_FIELDS}), DED
                    )[uid]
                except (errors.RgpdOSError, KeyError):
                    continue  # unreadable records are reported by check 1/2
                year_matches = recovered.select_uids(  # type: ignore[union-attr]
                    "crash_user", Predicate("year", "eq", record["year"]), DED
                )
                if uid not in year_matches:
                    failures.append(
                        f"subject {i}'s live year {record['year']!r} is "
                        f"missing from the year index after recovery"
                    )
            elif uid is not None and uid in matches:
                kind = "erased" if erased else "rolled-back"
                failures.append(
                    f"phantom uid {uid} for {kind} subject {i} survives "
                    f"in the index after recovery"
                )
            # Bloom correctness: a live subject's membranes stay
            # findable (no false negative) ...
            if expect_live:
                found = recovered.query_membranes(  # type: ignore[union-attr]
                    MembraneQuery(
                        pd_type="crash_user",
                        subject_id=f"crash-subject-{i}",
                        include_erased=True,
                    ),
                    DED,
                )
                if not any(ref.uid == uid for ref, _ in found):
                    failures.append(
                        f"table bloom dropped live subject {i} after "
                        f"recovery (false negative)"
                    )
        # ... and a never-stored subject resolves to nothing.
        ghosts = recovered.query_membranes(  # type: ignore[union-attr]
            MembraneQuery(
                pd_type="crash_user", subject_id="crash-subject-unseen"
            ),
            DED,
        )
        if ghosts:
            failures.append(
                f"negative subject lookup returned {len(ghosts)} membranes"
            )
        return failures

    # -- trials -------------------------------------------------------------

    def measure(self) -> Tuple[int, int]:
        """Fault-free run: returns (format_writes, total_writes)."""
        injector, devices, fs = self._build(FaultPlan(seed=self.seed))
        format_writes = injector.write_index
        progress: List[str] = []
        uids: Dict[int, str] = {}
        self.run_workload(fs, progress, uids)
        return format_writes, injector.write_index

    def run_trial(self, cut_after: int) -> CrashTrial:
        """Cut power after ``cut_after`` writes, remount, audit."""
        plan = FaultPlan(seed=self.seed, power_cut_after_writes=cut_after)
        injector, devices, fs = self._build(plan)
        progress: List[str] = []
        uids: Dict[int, str] = {}
        crashed = False
        try:
            self.run_workload(fs, progress, uids)
        except errors.PowerLossError:
            crashed = True
        injector.power_on()
        trial = CrashTrial(
            cut_after=cut_after,
            crashed=crashed,
            completed_steps=list(progress),
            failures=[],
        )
        try:
            recovered = self._remount(fs, devices)
        except errors.RgpdOSError as exc:
            trial.failures.append(
                f"remount failed after cut at write {cut_after}: "
                f"{type(exc).__name__}: {exc}"
            )
            return trial
        trial.recovery_report = dict(
            getattr(recovered, "recovery_report", {}) or {}
        )
        trial.failures = self.check_invariants(
            recovered, devices, progress, uids
        )
        return trial

    def sweep(self, stride: int = 1, limit: Optional[int] = None) -> CrashSweepReport:
        """One trial per write index of the workload.

        ``stride`` subsamples the cut points (CI smoke uses a stride;
        the exhaustive tier-1 test uses 1).  ``limit`` caps the number
        of trials from the front, mostly for debugging.
        """
        if stride < 1:
            raise errors.DBFSError(f"invalid sweep stride {stride}")
        format_writes, total_writes = self.measure()
        cuts = list(range(format_writes, total_writes, stride))
        if limit is not None:
            cuts = cuts[:limit]
        trials = [self.run_trial(cut) for cut in cuts]
        return CrashSweepReport(
            shard_count=self.shard_count,
            format_writes=format_writes,
            workload_writes=total_writes - format_writes,
            trials=trials,
        )
