"""Storage substrates: block device, inode layer, journal, filesystems.

Two filesystems share the uFS-style inode layer: ``extfs`` (the
traditional file-granularity FS the paper criticises and keeps for
NPD) and ``dbfs`` (the database-oriented filesystem of Idea 3, with
typed records, membranes, secondary B-tree indexes and crash
recovery).  ``shard`` scales DBFS out: N independent shards behind
the same interface, subjects placed by stable hash (lineage-affine),
type-level queries scatter-gathered.  ``query`` defines the request
objects the DED exchanges with DBFS.
"""

from .shard import ShardedDBFS, shard_index  # noqa: F401
