"""rgpdOS reproduction — GDPR enforcement by the operating system.

A faithful, simulation-based reproduction of *"rgpdOS: GDPR
Enforcement By The Operating System"* (Tchana et al., DSN 2023):
a purpose-kernel machine model, a database-oriented filesystem (DBFS)
storing *active data* (PD wrapped in consent-carrying membranes), a
Processing Store as the single entry point, per-invocation Data
Execution Domains, built-in update/delete/copy/acquisition functions,
and the subject-rights layer (right of access, right to be forgotten
with authority escrow, and the rest of GDPR Chapter III).

Quick start::

    from repro import RgpdOS, processing

    os_ = RgpdOS(operator_name="acme")
    os_.install(TYPE_AND_PURPOSE_DECLARATIONS)
    ref = os_.collect("user", {...}, subject_id="alice", method="web_form")

    @processing(purpose="stats")
    def average_age(user):
        return 2026 - user.year_of_birthdate

    os_.register(average_age)
    result = os_.invoke("average_age", target="user")
"""

from . import errors
from .core.active_data import AccessCredential, ActiveData, PDRef, PDView
from .core.builtins import BuiltinFunctions, EraseReport
from .core.clock import Clock, format_duration, parse_duration
from .core.compliance import ComplianceAuditor, ComplianceReport, Finding
from .core.crypto import Authority, OperatorKey, generate_keypair
from .core.datatypes import FieldDef, PDType
from .core.ded import (
    DataExecutionDomain,
    DEDCostModel,
    InvocationResult,
    StageTrace,
    produce,
)
from .core.membrane import ConsentDecision, Membrane, membrane_for_type
from .core.processing_log import LogEntry, PDAccess, ProcessingLog
from .core.processing_store import Processing, ProcessingStore
from .core.purposes import (
    MatchReport,
    Purpose,
    PurposeMatcher,
    extract_purpose_name,
    processing,
)
from .core.breach import BreachIndicator, BreachMonitor, BreachReport
from .core.rights import AccessReport, ErasureOutcome, SubjectRights
from .core.semantic import SemanticMatcher, SemanticReport
from .core.transfer import TransferOutcome, export_package, import_package
from .core.system import RgpdOS
from .core.views import SCOPE_ALL, SCOPE_NONE, View
from .dsl.loader import load_source
from .kernel.pim import DEDPlacer, PlacementDecision
from .obs import (
    LatencyHistogram,
    MetricsRegistry,
    Telemetry,
    Tracer,
    parse_prometheus,
)
from .kernel.tee import Enclave, TEEPlatform, measure_code
from .dsl.parser import parse

__version__ = "1.0.0"

__all__ = [
    "AccessCredential",
    "AccessReport",
    "BreachIndicator",
    "BreachMonitor",
    "BreachReport",
    "DEDPlacer",
    "Enclave",
    "PlacementDecision",
    "SemanticMatcher",
    "SemanticReport",
    "TEEPlatform",
    "TransferOutcome",
    "export_package",
    "import_package",
    "measure_code",
    "ActiveData",
    "Authority",
    "BuiltinFunctions",
    "Clock",
    "ComplianceAuditor",
    "ComplianceReport",
    "ConsentDecision",
    "DEDCostModel",
    "DataExecutionDomain",
    "EraseReport",
    "ErasureOutcome",
    "FieldDef",
    "Finding",
    "InvocationResult",
    "LatencyHistogram",
    "LogEntry",
    "MatchReport",
    "Membrane",
    "MetricsRegistry",
    "OperatorKey",
    "PDAccess",
    "PDRef",
    "PDType",
    "PDView",
    "Processing",
    "ProcessingLog",
    "ProcessingStore",
    "Purpose",
    "PurposeMatcher",
    "RgpdOS",
    "SCOPE_ALL",
    "SCOPE_NONE",
    "StageTrace",
    "SubjectRights",
    "Telemetry",
    "Tracer",
    "View",
    "errors",
    "extract_purpose_name",
    "format_duration",
    "generate_keypair",
    "load_source",
    "membrane_for_type",
    "parse",
    "parse_duration",
    "parse_prometheus",
    "processing",
    "produce",
]
