"""Hierarchical timer wheel: membrane TTL deadlines, indexed by time.

ROADMAP item 2 ("retention enforcement at scale") needs the OS to know
*when* each of millions of PDs expires without rescanning every
membrane per tick.  The classic kernel answer is the hierarchical
timing wheel (Varghese & Lauck): an array of slot rings of increasing
granularity, where inserting, cancelling and advancing by one tick are
all O(1) amortized, and a jump of any size costs at most
``slots x levels`` bucket drains plus one cascade per timer actually
crossed.

Design points, matched to this repo's deterministic simulation:

* Time comes from the shared :class:`repro.core.clock.Clock` — the
  wheel never reads the wall clock.  ``advance(now)`` is called with
  the clock's current time; simulations jump days at a time, so the
  drain loop is written for arbitrary forward jumps, not unit ticks.
* The wheel is an *index*, not the source of truth.  Buckets only
  guarantee a timer is drained **at or after** its deadline; on drain
  the authoritative ``deadline <= now`` comparison decides between
  firing and cascading to a finer level.  The expiry daemon re-checks
  the membrane itself before erasing, so a stale wheel entry can cost
  work but never correctness.
* Deadlines follow the canonical expiry boundary
  (:meth:`repro.core.membrane.Membrane.is_expired`): a timer whose
  deadline equals ``now`` **fires** — expired *at* the deadline.

The default geometry (64 slots x 7 levels at 1 s resolution) spans
~139k simulated years, comfortably past any GDPR retention horizon.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

SLOT_BITS = 6
SLOTS = 1 << SLOT_BITS  # 64 slots per level
LEVELS = 7              # 64**7 ticks =~ 4.4e12 s at the default 1 s tick


class TimerWheel:
    """Hierarchical timing wheel keyed by opaque string keys (PD uids).

    >>> wheel = TimerWheel()
    >>> wheel.schedule("uid-1", 10.0)
    >>> wheel.advance(9.0)
    []
    >>> wheel.advance(10.0)   # expired AT the deadline (>= boundary)
    ['uid-1']
    """

    def __init__(
        self,
        tick_seconds: float = 1.0,
        start: float = 0.0,
        levels: int = LEVELS,
    ) -> None:
        if tick_seconds <= 0:
            raise ValueError("tick_seconds must be positive")
        if not 1 <= levels <= 16:
            raise ValueError("levels must be in [1, 16]")
        self.tick_seconds = float(tick_seconds)
        self.levels = levels
        self._now = float(start)
        self._now_tick = self._tick_of(start)
        # _wheel[level][slot] -> {key: deadline}
        self._wheel: List[List[Dict[str, float]]] = [
            [dict() for _ in range(SLOTS)] for _ in range(levels)
        ]
        #: key -> (deadline, level, slot); the cancellation index and
        #: the authoritative pending set.
        self._where: Dict[str, Tuple[float, int, int]] = {}
        #: timers scheduled already-due (deadline <= now at schedule
        #: time) fire on the next advance without touching a bucket.
        self._ripe: Dict[str, float] = {}
        self.scheduled = 0
        self.cancelled = 0
        self.fired = 0
        self.cascades = 0
        self.slot_drains = 0

    # -- geometry --------------------------------------------------------

    def _tick_of(self, instant: float) -> int:
        return int(instant // self.tick_seconds)

    def _insert(self, key: str, deadline: float) -> None:
        """Bucket a not-yet-due timer.

        The bucket's guarantee: it is drained *at or after* the
        deadline (never before it can fire) and at most one slot of
        its level's granularity late — the drain-time
        ``deadline <= now`` check does the rest.  A deadline that
        falls inside the current tick goes to the *next* slot: the
        current slot has already been passed and would otherwise only
        drain again after a full wrap.
        """
        place_tick = max(self._tick_of(deadline), self._now_tick + 1)
        delta = place_tick - self._now_tick
        level = 0
        while level < self.levels - 1 and delta >> (SLOT_BITS * (level + 1)):
            level += 1
        slot = (place_tick >> (SLOT_BITS * level)) & (SLOTS - 1)
        self._wheel[level][slot][key] = deadline
        self._where[key] = (deadline, level, slot)

    # -- scheduling ------------------------------------------------------

    def schedule(self, key: str, deadline: float) -> None:
        """Index ``key`` to fire once ``advance(now)`` sees
        ``now >= deadline``.  Re-scheduling an existing key replaces
        its deadline (membrane evolution can move a TTL)."""
        self.cancel(key)
        self.scheduled += 1
        if deadline <= self._now:
            self._ripe[key] = deadline
            return
        self._insert(key, deadline)

    def cancel(self, key: str) -> bool:
        """Drop a pending timer (erased / evolved away); False if absent."""
        if key in self._ripe:
            del self._ripe[key]
            self.cancelled += 1
            return True
        entry = self._where.pop(key, None)
        if entry is None:
            return False
        _, level, slot = entry
        self._wheel[level][slot].pop(key, None)
        self.cancelled += 1
        return True

    def deadline_of(self, key: str) -> Optional[float]:
        if key in self._ripe:
            return self._ripe[key]
        entry = self._where.get(key)
        return entry[0] if entry is not None else None

    def __len__(self) -> int:
        return len(self._where) + len(self._ripe)

    def __contains__(self, key: str) -> bool:
        return key in self._where or key in self._ripe

    def next_deadline(self) -> Optional[float]:
        """Earliest pending deadline (O(n); for reporting, not ticking)."""
        candidates = list(self._ripe.values())
        candidates.extend(d for d, _, _ in self._where.values())
        return min(candidates) if candidates else None

    # -- advancing -------------------------------------------------------

    def advance(self, now: float) -> List[str]:
        """Move the wheel to ``now``; return every key whose deadline
        has arrived (``deadline <= now``), earliest first.

        Cost: at most ``SLOTS`` bucket drains per level regardless of
        how far ``now`` jumped, plus one cascade per timer whose coarse
        slot was crossed but whose deadline has not arrived yet.
        """
        if now < self._now:
            raise ValueError(
                f"wheel cannot run backwards ({now} < {self._now})"
            )
        due: List[Tuple[float, str]] = [
            (deadline, key) for key, deadline in self._ripe.items()
        ]
        self._ripe.clear()
        new_tick = self._tick_of(now)
        old_tick = self._now_tick
        self._now = now
        self._now_tick = new_tick
        if new_tick != old_tick:
            cascade: List[Tuple[str, float]] = []
            for level in range(self.levels):
                shift = SLOT_BITS * level
                old_abs = old_tick >> shift
                new_abs = new_tick >> shift
                if new_abs == old_abs:
                    break  # coarser levels have not moved either
                first = old_abs + 1 if new_abs - old_abs < SLOTS \
                    else new_abs - SLOTS + 1
                for abs_slot in range(first, new_abs + 1):
                    bucket = self._wheel[level][abs_slot & (SLOTS - 1)]
                    if not bucket:
                        continue
                    self.slot_drains += 1
                    for key, deadline in list(bucket.items()):
                        del bucket[key]
                        del self._where[key]
                        if deadline <= now:
                            due.append((deadline, key))
                        else:
                            cascade.append((key, deadline))
            for key, deadline in cascade:
                # Crossed its coarse slot but not yet due: re-place
                # relative to the new current tick (a finer level).
                self.cascades += 1
                self._insert(key, deadline)
        due.sort()
        self.fired += len(due)
        return [key for _, key in due]

    # -- reporting -------------------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        return {
            "pending": len(self),
            "tick_seconds": self.tick_seconds,
            "levels": self.levels,
            "slots_per_level": SLOTS,
            "scheduled": self.scheduled,
            "cancelled": self.cancelled,
            "fired": self.fired,
            "cascades": self.cascades,
            "slot_drains": self.slot_drains,
            "next_deadline": self.next_deadline(),
        }
