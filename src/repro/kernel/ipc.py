"""Cross-kernel IPC channels.

Sub-kernels cooperate over explicit message channels (there is no
shared mutable state between kernels in the purpose-kernel model —
that is the point of the model).  Channels are bounded FIFOs.

One GDPR-relevant rule is enforced right here at the transport: **raw
PD never crosses a kernel boundary**.  Messages are scanned with
:func:`repro.core.active_data.contains_raw_pd`; anything carrying an
unwrapped record or view is rejected with :class:`PDLeakError`.
Applications exchange :class:`~repro.core.active_data.PDRef` values
instead, matching the paper's "rgpdOS instead returns a reference or
ID".
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from .. import errors
from ..core.active_data import contains_raw_pd

_msg_counter = itertools.count(1)


@dataclass(frozen=True)
class Message:
    """One IPC message between kernels."""

    sender: str
    recipient: str
    topic: str
    payload: object = None
    msg_id: int = field(default_factory=lambda: next(_msg_counter))


class Channel:
    """A bounded FIFO between exactly two kernels."""

    def __init__(self, a: str, b: str, capacity: int = 256) -> None:
        if capacity <= 0:
            raise errors.IPCError(f"invalid channel capacity {capacity}")
        if a == b:
            raise errors.IPCError("a channel must connect two distinct kernels")
        self.endpoints = frozenset({a, b})
        self.capacity = capacity
        self._queues: Dict[str, Deque[Message]] = {a: deque(), b: deque()}
        self.sent_count = 0
        self.rejected_count = 0

    def _peer(self, endpoint: str) -> str:
        if endpoint not in self.endpoints:
            raise errors.IPCError(
                f"{endpoint!r} is not an endpoint of this channel"
            )
        (other,) = self.endpoints - {endpoint}
        return other

    def send(self, sender: str, topic: str, payload: object = None) -> Message:
        """Queue a message toward the peer; rejects raw PD payloads."""
        recipient = self._peer(sender)
        if contains_raw_pd(payload):
            self.rejected_count += 1
            raise errors.PDLeakError(
                f"raw PD may not cross the {sender!r}->{recipient!r} kernel "
                "boundary; send a PDRef instead"
            )
        queue = self._queues[recipient]
        if len(queue) >= self.capacity:
            raise errors.IPCError(
                f"channel to {recipient!r} is full ({self.capacity} messages)"
            )
        message = Message(sender=sender, recipient=recipient, topic=topic, payload=payload)
        queue.append(message)
        self.sent_count += 1
        return message

    def recv(self, recipient: str) -> Optional[Message]:
        """Dequeue the next message for ``recipient`` (None if empty)."""
        if recipient not in self.endpoints:
            raise errors.IPCError(
                f"{recipient!r} is not an endpoint of this channel"
            )
        queue = self._queues[recipient]
        return queue.popleft() if queue else None

    def pending(self, recipient: str) -> int:
        if recipient not in self.endpoints:
            raise errors.IPCError(
                f"{recipient!r} is not an endpoint of this channel"
            )
        return len(self._queues[recipient])


class Switchboard:
    """All channels of one machine, indexed by kernel pair."""

    def __init__(self) -> None:
        self._channels: Dict[frozenset, Channel] = {}

    def connect(self, a: str, b: str, capacity: int = 256) -> Channel:
        key = frozenset({a, b})
        if key in self._channels:
            raise errors.IPCError(f"channel {a!r}<->{b!r} already exists")
        channel = Channel(a, b, capacity)
        self._channels[key] = channel
        return channel

    def channel(self, a: str, b: str) -> Channel:
        channel = self._channels.get(frozenset({a, b}))
        if channel is None:
            raise errors.IPCError(f"no channel between {a!r} and {b!r}")
        return channel

    def send(self, sender: str, recipient: str, topic: str, payload: object = None) -> Message:
        return self.channel(sender, recipient).send(sender, topic, payload)

    def recv(self, recipient: str, sender: str) -> Optional[Message]:
        return self.channel(sender, recipient).recv(recipient)

    def peers_of(self, kernel: str) -> List[str]:
        peers = []
        for key in self._channels:
            if kernel in key:
                (peer,) = key - {kernel}
                peers.append(peer)
        return sorted(peers)

    def total_messages(self) -> int:
        return sum(ch.sent_count for ch in self._channels.values())
