"""Seccomp-BPF-like syscall filters.

Paper § 3(2): *"We leverage Linux Seccomp BPF to avoid functions which
operate on PD to perform syscalls that can leak data."*

A filter is an ordered rule program, evaluated first-match like a BPF
classifier: each rule matches a syscall name (or ``*``) and yields an
action.  Actions mirror seccomp's return values:

* ``ALLOW``  — let the syscall proceed to the LSM layer;
* ``ERRNO``  — deny with an error (the common deny mode);
* ``KILL``   — deny and mark the process for termination;
* ``LOG``    — allow but flag the event in the filter's log.

:func:`pd_function_profile` builds the profile the DED installs on
every F_pd^r execution: the leak-prone syscalls are denied, the PD
pipeline's own entry points and pure computation remain allowed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from .. import errors
from .syscalls import (
    ALL_SYSCALLS,
    LEAKY_SYSCALLS,
    SYS_EXIT,
    SYS_GETPID,
    SYS_READ,
    SyscallContext,
)

ACTION_ALLOW = "allow"
ACTION_ERRNO = "errno"
ACTION_KILL = "kill"
ACTION_LOG = "log"
_ACTIONS = frozenset({ACTION_ALLOW, ACTION_ERRNO, ACTION_KILL, ACTION_LOG})

MATCH_ANY = "*"


@dataclass(frozen=True)
class FilterRule:
    """One rule: syscall pattern → action (+ human-readable reason)."""

    syscall: str
    action: str
    reason: str = ""

    def __post_init__(self) -> None:
        if self.action not in _ACTIONS:
            raise errors.KernelError(f"unknown seccomp action {self.action!r}")
        if self.syscall != MATCH_ANY and self.syscall not in ALL_SYSCALLS:
            raise errors.KernelError(
                f"seccomp rule names unknown syscall {self.syscall!r}"
            )

    def matches(self, syscall: str) -> bool:
        return self.syscall == MATCH_ANY or self.syscall == syscall


@dataclass
class SeccompFilter:
    """An ordered rule program with a default action.

    Use as the seccomp guard of a :class:`~repro.kernel.syscalls.
    SyscallTable` via :meth:`as_guard`.
    """

    rules: Tuple[FilterRule, ...]
    default_action: str = ACTION_ERRNO
    name: str = "filter"
    logged: List[str] = field(default_factory=list)
    killed: bool = field(default=False)

    def __post_init__(self) -> None:
        if self.default_action not in _ACTIONS:
            raise errors.KernelError(
                f"unknown default action {self.default_action!r}"
            )

    def evaluate(self, syscall: str) -> Tuple[str, str]:
        """Return ``(action, reason)`` for one syscall, first match wins."""
        for rule in self.rules:
            if rule.matches(syscall):
                return rule.action, rule.reason
        return self.default_action, "default action"

    def as_guard(self):
        """Adapt this filter to the SyscallTable guard protocol."""

        def guard(context: SyscallContext) -> Optional[str]:
            action, reason = self.evaluate(context.syscall)
            if action == ACTION_ALLOW:
                return None
            if action == ACTION_LOG:
                self.logged.append(context.syscall)
                return None
            if action == ACTION_KILL:
                self.killed = True
                return f"killed by seccomp filter {self.name!r}: {reason}"
            return f"denied by seccomp filter {self.name!r}: {reason}"

        return guard


def allow_all_profile(name: str = "unconfined") -> SeccompFilter:
    """The profile of ordinary processes on the general-purpose kernel."""
    return SeccompFilter(rules=(), default_action=ACTION_ALLOW, name=name)


def pd_function_profile(name: str = "ded-fpd") -> SeccompFilter:
    """The sandbox profile for F_pd^r functions inside the DED.

    Deny-by-default; explicit denials for the leak-prone set carry
    reasons so audit logs explain themselves; read-like and process
    housekeeping calls are allowed (the function must still be able to
    compute and terminate).  DBFS and PS syscalls are *not* allowed:
    an F_pd^r function talks to DBFS only through the DED, never
    directly.
    """
    rules = [
        FilterRule(
            syscall, ACTION_ERRNO,
            reason="PD-processing functions may not perform leak-prone syscalls",
        )
        for syscall in sorted(LEAKY_SYSCALLS)
    ]
    rules.extend(
        [
            FilterRule(SYS_READ, ACTION_ALLOW),
            FilterRule(SYS_GETPID, ACTION_ALLOW),
            FilterRule(SYS_EXIT, ACTION_ALLOW),
        ]
    )
    return SeccompFilter(
        rules=tuple(rules), default_action=ACTION_ERRNO, name=name
    )


def application_profile(name: str = "rgpdos-app") -> SeccompFilter:
    """The profile of a main application on rgpdOS (f1 / main()).

    It may use the PS entry points and ordinary non-PD IO, but can
    never reach DBFS syscalls directly (defense in depth with the LSM
    policy, which enforces the same thing by label).
    """
    from .syscalls import SYS_DBFS_QUERY, SYS_DBFS_STORE

    rules = (
        FilterRule(SYS_DBFS_QUERY, ACTION_ERRNO, reason="DBFS is DED-only"),
        FilterRule(SYS_DBFS_STORE, ACTION_ERRNO, reason="DBFS is DED-only"),
        FilterRule(MATCH_ANY, ACTION_ALLOW),
    )
    return SeccompFilter(rules=rules, default_action=ACTION_ALLOW, name=name)
