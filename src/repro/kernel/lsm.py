"""Linux-Security-Module-like hook framework.

Paper § 2: *"DBFS can only be accessed through the components of
rgpdOS ... every direct access attempt from the outside is blocked by
using a security mechanism (e.g., Linux Security Module)"*; § 3(2):
*"we observed that SELinux and Smack can do the job."*

We reproduce the part of LSM that the claims rest on: mandatory,
label-based access control evaluated on every syscall after seccomp.
The policy engine is SELinux-flavoured type enforcement:

* every process carries a **domain label** (``rgpdos_app_t``,
  ``rgpdos_ded_t``, ...);
* every object carries a **type label** (``dbfs_t``, ``ps_t``,
  ``extfs_t``, ...);
* an access is allowed only if an ``allow(domain, type, syscalls)``
  rule covers it — default deny for any labelled object.

Unlabelled objects are untouched (like SELinux's unconfined types for
the NPD filesystem): the policy constrains PD paths without breaking
the general-purpose side of the machine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from .. import errors
from .syscalls import (
    SYS_DBFS_QUERY,
    SYS_DBFS_STORE,
    SYS_PS_INVOKE,
    SYS_PS_REGISTER,
    SyscallContext,
)

# Canonical labels of the rgpdOS policy.
LABEL_APP = "rgpdos_app_t"          # main applications (f1 / main)
LABEL_DED = "rgpdos_ded_t"          # Data Execution Domain instances
LABEL_PS = "rgpdos_ps_t"            # the Processing Store component
LABEL_SYSADMIN = "rgpdos_sysadmin_t"
LABEL_UNCONFINED = "unconfined_t"   # processes on the general-purpose kernel

OBJ_DBFS = "dbfs_t"                 # the PD filesystem
OBJ_PS = "ps_t"                     # the processing store
OBJ_EXTFS = "extfs_t"               # the NPD filesystem
OBJ_UNLABELED = ""


@dataclass(frozen=True)
class AllowRule:
    """``allow <domain> <object-type> { syscalls... }``"""

    domain: str
    object_type: str
    syscalls: FrozenSet[str]


@dataclass
class AccessVectorCache:
    """Counts decisions, like the real AVC; useful for benchmarks."""

    hits: int = 0
    allowed: int = 0
    denied: int = 0


class LSMPolicy:
    """A set of allow rules plus a decision procedure.

    Use :func:`rgpdos_policy` for the policy the paper implies; custom
    policies can be assembled for experiments (e.g. FIG2 runs the
    baseline with *no* LSM confinement of the DB engine).
    """

    def __init__(self, name: str = "policy") -> None:
        self.name = name
        self._rules: Set[AllowRule] = set()
        self._index: Dict[Tuple[str, str], Set[str]] = {}
        self.avc = AccessVectorCache()
        self.denial_log: List[SyscallContext] = []

    def allow(self, domain: str, object_type: str, syscalls: FrozenSet[str]) -> None:
        """Add an allow rule (idempotent union per domain/type pair)."""
        rule = AllowRule(domain, object_type, frozenset(syscalls))
        self._rules.add(rule)
        self._index.setdefault((domain, object_type), set()).update(syscalls)

    def decide(self, context: SyscallContext) -> Optional[str]:
        """LSM guard: None to allow, a reason string to deny."""
        self.avc.hits += 1
        if not context.target_label:
            # Unlabelled object: outside the mandatory policy.
            self.avc.allowed += 1
            return None
        permitted = self._index.get((context.label, context.target_label), set())
        if context.syscall in permitted:
            self.avc.allowed += 1
            return None
        self.avc.denied += 1
        self.denial_log.append(context)
        return (
            f"LSM policy {self.name!r}: domain {context.label!r} may not "
            f"{context.syscall} objects of type {context.target_label!r}"
        )

    def rules(self) -> FrozenSet[AllowRule]:
        return frozenset(self._rules)

    def __len__(self) -> int:
        return len(self._rules)


def rgpdos_policy() -> LSMPolicy:
    """The type-enforcement policy encoding the paper's four rules.

    1. PS is the only component able to access stored processings —
       only ``rgpdos_ps_t`` touches ``ps_t`` storage;
    2. PS is the only entry point to invoke a processing — apps may
       call ``ps_register``/``ps_invoke`` on ``ps_t``, nothing else;
    3. (membrane presence is enforced structurally in DBFS itself);
    4. DED is the only component able to access DBFS directly — only
       ``rgpdos_ded_t`` gets ``dbfs_query``/``dbfs_store`` on
       ``dbfs_t``.
    """
    policy = LSMPolicy(name="rgpdos")
    policy.allow(
        LABEL_APP, OBJ_PS, frozenset({SYS_PS_REGISTER, SYS_PS_INVOKE})
    )
    policy.allow(
        LABEL_SYSADMIN, OBJ_PS, frozenset({SYS_PS_REGISTER, SYS_PS_INVOKE})
    )
    policy.allow(
        LABEL_DED, OBJ_DBFS, frozenset({SYS_DBFS_QUERY, SYS_DBFS_STORE})
    )
    # PS may consult its own processing storage.
    policy.allow(
        LABEL_PS, OBJ_PS, frozenset({SYS_PS_REGISTER, SYS_PS_INVOKE})
    )
    return policy


def permissive_policy() -> LSMPolicy:
    """A policy with no labelled objects enforced — the general-purpose
    OS of Fig. 2, where nothing mediates the DB engine's file accesses.
    """
    return LSMPolicy(name="permissive")


# ---------------------------------------------------------------------------
# Smack-flavoured alternative (§ 3(2): "SELinux and Smack can do the job")
# ---------------------------------------------------------------------------

#: Smack's built-in labels: ``*`` objects are accessible to everyone,
#: ``_`` (floor) objects are readable by everyone.
SMACK_STAR = "*"
SMACK_FLOOR = "_"

#: Smack access modes; syscalls map onto them.
SMACK_READ = "r"
SMACK_WRITE = "w"
SMACK_EXECUTE = "x"

_SYSCALL_MODES: Dict[str, str] = {
    SYS_DBFS_QUERY: SMACK_READ,
    SYS_DBFS_STORE: SMACK_WRITE,
    SYS_PS_REGISTER: SMACK_WRITE,
    SYS_PS_INVOKE: SMACK_EXECUTE,
}


class SmackPolicy:
    """Simplified Smack: label equality plus explicit access rules.

    Decision procedure (mirroring the Smack kernel's):

    1. subject label == object label → allow (self access);
    2. object label ``*`` → allow; object label ``_`` → allow reads;
    3. otherwise an explicit rule ``(subject, object) → modes`` must
       grant the syscall's access mode; default deny.

    Unlabelled objects are outside the policy, like the SELinux-style
    engine, so the two are drop-in interchangeable as the machine's
    LSM — which is the point of reproducing both.
    """

    def __init__(self, name: str = "smack") -> None:
        self.name = name
        self._rules: Dict[Tuple[str, str], Set[str]] = {}
        self.avc = AccessVectorCache()
        self.denial_log: List[SyscallContext] = []

    def allow(self, subject: str, obj: str, modes: str) -> None:
        """``smackload``-style rule: modes is a string like "rw"."""
        self._rules.setdefault((subject, obj), set()).update(modes)

    @staticmethod
    def mode_of(syscall: str) -> str:
        """Map a syscall to its Smack access mode (reads by default)."""
        return _SYSCALL_MODES.get(syscall, SMACK_READ)

    def decide(self, context: SyscallContext) -> Optional[str]:
        self.avc.hits += 1
        obj = context.target_label
        if not obj:
            self.avc.allowed += 1
            return None
        mode = self.mode_of(context.syscall)
        allowed = (
            context.label == obj
            or obj == SMACK_STAR
            or (obj == SMACK_FLOOR and mode == SMACK_READ)
            or mode in self._rules.get((context.label, obj), set())
        )
        if allowed:
            self.avc.allowed += 1
            return None
        self.avc.denied += 1
        self.denial_log.append(context)
        return (
            f"Smack policy {self.name!r}: subject {context.label!r} lacks "
            f"{mode!r} access to object {obj!r}"
        )


def rgpdos_smack_policy() -> SmackPolicy:
    """The rgpdOS enforcement rules, expressed in Smack terms."""
    policy = SmackPolicy(name="rgpdos-smack")
    # Rule 4: only the DED reads/writes DBFS.
    policy.allow(LABEL_DED, OBJ_DBFS, "rw")
    # Rules 1-2: apps and the sysadmin may only *execute* PS entry
    # points and register (write) processings; nothing else touches it.
    policy.allow(LABEL_APP, OBJ_PS, "wx")
    policy.allow(LABEL_SYSADMIN, OBJ_PS, "wx")
    policy.allow(LABEL_PS, OBJ_PS, "rwx")
    return policy
