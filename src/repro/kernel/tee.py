"""Trusted-execution-environment (SGX-like) simulation.

Paper § 3(3): *"Different techniques can be used to ensure DED
protection including TEEs like Intel SGX."*  This module models the
three SGX properties that matter for protecting a Data Execution
Domain from a compromised host:

* **Measurement** — an enclave's identity is the hash of the code
  loaded into it (MRENCLAVE).  The Processing Store records each
  registered processing's measurement; at invocation time the enclave
  must measure to exactly that value, so a tampered implementation
  cannot run in the processing's name.
* **Memory encryption** — data sealed into the enclave is stored
  encrypted under an enclave-private key; reads *from outside* the
  enclave (:meth:`Enclave.read_memory_as_os`) observe ciphertext only,
  modelling the MEE.  Inside an entered enclave, access is plaintext.
* **Remote attestation** — the platform signs ``(measurement, nonce)``
  with a platform key; a verifier with the platform's public part can
  check both the signature and the expected measurement before
  releasing PD to the enclave.

Like the rest of the kernel layer this is a *semantic* model: it
reproduces the protocol structure and the checks, not the silicon.
"""

from __future__ import annotations

import hashlib
import hmac
import inspect
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from .. import errors


def measure_code(code: object) -> str:
    """MRENCLAVE-style measurement of a processing implementation.

    Accepts a callable (measured by its source), a source string, or
    raw bytes.  Unreadable callables measure by qualified name —
    weaker, but still stable and collision-evident.
    """
    if callable(code):
        try:
            text = inspect.getsource(code)
        except (OSError, TypeError):
            text = f"{getattr(code, '__module__', '?')}.{getattr(code, '__qualname__', repr(code))}"
        payload = text.encode()
    elif isinstance(code, bytes):
        payload = code
    else:
        payload = str(code).encode()
    return hashlib.sha256(payload).hexdigest()


@dataclass(frozen=True)
class AttestationReport:
    """A signed statement: "an enclave measuring M runs on platform P"."""

    measurement: str
    nonce: bytes
    platform_id: str
    signature: bytes


class Enclave:
    """One enclave instance: sealed memory + entry discipline."""

    def __init__(self, platform: "TEEPlatform", code: object) -> None:
        self._platform = platform
        self.measurement = measure_code(code)
        self._sealing_key = hashlib.sha256(
            platform.platform_key + self.measurement.encode()
        ).digest()
        self._memory: Dict[str, bytes] = {}
        self._entered = False
        self.destroyed = False

    # -- entry discipline (ecall/ocall boundary) ---------------------------

    def enter(self) -> "Enclave":
        if self.destroyed:
            raise errors.KernelError("enclave has been destroyed")
        self._entered = True
        return self

    def exit(self) -> None:
        self._entered = False

    def __enter__(self) -> "Enclave":
        return self.enter()

    def __exit__(self, *exc_info: object) -> None:
        self.exit()

    def _require_entered(self, operation: str) -> None:
        if not self._entered:
            raise errors.KernelError(
                f"enclave memory {operation} outside an enclave entry"
            )

    # -- sealed memory ----------------------------------------------------------

    def _crypt(self, data: bytes, slot: str) -> bytes:
        stream = bytearray()
        counter = 0
        while len(stream) < len(data):
            stream.extend(
                hashlib.sha256(
                    self._sealing_key + slot.encode()
                    + counter.to_bytes(4, "big")
                ).digest()
            )
            counter += 1
        return bytes(a ^ b for a, b in zip(data, stream))

    def store(self, slot: str, value: bytes) -> None:
        """Seal ``value`` into enclave memory (requires entry)."""
        self._require_entered("write")
        self._memory[slot] = self._crypt(value, slot)

    def load(self, slot: str) -> bytes:
        """Read a sealed value back (requires entry)."""
        self._require_entered("read")
        sealed = self._memory.get(slot)
        if sealed is None:
            raise errors.KernelError(f"no enclave slot {slot!r}")
        return self._crypt(sealed, slot)

    def read_memory_as_os(self, slot: str) -> bytes:
        """What a compromised OS sees when it maps enclave pages:
        the encrypted bytes, never the plaintext."""
        sealed = self._memory.get(slot)
        if sealed is None:
            raise errors.KernelError(f"no enclave slot {slot!r}")
        return sealed

    # -- execution ----------------------------------------------------------

    def call(self, fn: Callable, *args: object, **kwargs: object) -> object:
        """Run ``fn`` inside the enclave.

        The function must be the code the enclave was measured from —
        swapping implementations after attestation is exactly the
        attack measurement prevents.
        """
        if measure_code(fn) != self.measurement:
            raise errors.KernelError(
                "code identity mismatch: this enclave was measured from "
                "different code"
            )
        with self:
            return fn(*args, **kwargs)

    def destroy(self) -> None:
        """Tear the enclave down; sealed memory is lost by design."""
        self._memory.clear()
        self._entered = False
        self.destroyed = True

    # -- attestation ----------------------------------------------------------

    def attest(self, nonce: bytes) -> AttestationReport:
        return self._platform.attest(self, nonce)


class TEEPlatform:
    """The platform (CPU + quoting infrastructure) enclaves run on."""

    def __init__(self, platform_id: str = "platform-0", seed: int = 0x5EC) -> None:
        self.platform_id = platform_id
        self.platform_key = hashlib.sha256(
            f"{platform_id}:{seed}".encode()
        ).digest()
        self._enclaves: List[Enclave] = []

    def create_enclave(self, code: object) -> Enclave:
        enclave = Enclave(self, code)
        self._enclaves.append(enclave)
        return enclave

    def attest(self, enclave: Enclave, nonce: bytes) -> AttestationReport:
        if enclave.destroyed:
            raise errors.KernelError("cannot attest a destroyed enclave")
        signature = hmac.new(
            self.platform_key,
            enclave.measurement.encode() + nonce + self.platform_id.encode(),
            hashlib.sha256,
        ).digest()
        return AttestationReport(
            measurement=enclave.measurement,
            nonce=nonce,
            platform_id=self.platform_id,
            signature=signature,
        )

    def verify(
        self,
        report: AttestationReport,
        expected_measurement: Optional[str] = None,
        expected_nonce: Optional[bytes] = None,
    ) -> bool:
        """Verify a report's signature and (optionally) its claims.

        In real SGX verification uses Intel's attestation service /
        DCAP certificates; here the verifier shares the platform key.
        """
        expected_signature = hmac.new(
            self.platform_key,
            report.measurement.encode() + report.nonce
            + report.platform_id.encode(),
            hashlib.sha256,
        ).digest()
        if not hmac.compare_digest(expected_signature, report.signature):
            return False
        if report.platform_id != self.platform_id:
            return False
        if (
            expected_measurement is not None
            and report.measurement != expected_measurement
        ):
            return False
        if expected_nonce is not None and report.nonce != expected_nonce:
            return False
        return True

    @property
    def enclave_count(self) -> int:
        return sum(1 for e in self._enclaves if not e.destroyed)
