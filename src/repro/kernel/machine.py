"""The machine: sub-kernels assembled per the purpose-kernel model.

Figure 3 (right) of the paper shows one physical machine running the
general-purpose kernel (NPD side) and rgpdOS (PD side) concurrently,
with IO devices each behind their own driver kernel, and CPU/memory
dynamically partitioned among them.  :class:`Machine` is that
assembly:

* it creates the kernels and leases them cores and memory frames,
* it wires pairwise IPC channels (GP↔drivers, rgpdOS↔drivers,
  GP↔rgpdOS for reference passing),
* it exposes :meth:`rebalance_cores` / :meth:`rebalance_memory` —
  the dynamic cooperation the model calls for,
* it owns the shared simulation clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from .. import errors
from ..core.clock import Clock
from ..obs import NULL_TELEMETRY, Telemetry
from .ipc import Switchboard
from .lsm import LSMPolicy, rgpdos_policy
from .memory import MemoryManager
from .scheduler import CPUPartitioner, Scheduler, Task
from .subkernel import (
    GeneralPurposeKernel,
    IODriverKernel,
    IORequest,
    RgpdOSKernel,
    SubKernel,
)


@dataclass
class MachineConfig:
    """Sizing knobs for a simulated machine."""

    total_cores: int = 8
    total_frames: int = 262144
    rgpdos_cores: int = 3
    gp_cores: int = 3
    driver_cores_each: int = 1
    rgpdos_frames: int = 131072
    gp_frames: int = 98304
    driver_frames_each: int = 4096
    # NVMe-style transient-fault handling in the driver kernels:
    # bounded retries with exponential backoff charged to the
    # simulation clock (see IODriverKernel.serve).
    io_retry_limit: int = 3
    io_retry_backoff_seconds: float = 100e-6

    def validate(self, driver_count: int) -> None:
        need_cores = (
            self.rgpdos_cores + self.gp_cores + driver_count * self.driver_cores_each
        )
        if need_cores > self.total_cores:
            raise errors.ResourcePartitionError(
                f"config needs {need_cores} cores, machine has {self.total_cores}"
            )
        need_frames = (
            self.rgpdos_frames
            + self.gp_frames
            + driver_count * self.driver_frames_each
        )
        if need_frames > self.total_frames:
            raise errors.ResourcePartitionError(
                f"config needs {need_frames} frames, machine has {self.total_frames}"
            )


class Machine:
    """One physical machine running the purpose-kernel aggregation."""

    def __init__(
        self,
        drivers: Optional[Dict[str, Callable[[IORequest], bytes]]] = None,
        config: Optional[MachineConfig] = None,
        clock: Optional[Clock] = None,
        rgpdos_lsm: Optional[LSMPolicy] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.config = config or MachineConfig()
        self.clock = clock or Clock()
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        drivers = drivers or {}
        self.config.validate(len(drivers))

        self.memory = MemoryManager(self.config.total_frames)
        self.cpus = CPUPartitioner(self.config.total_cores)
        self.scheduler = Scheduler(self.cpus)
        self.switchboard = Switchboard()

        self.rgpdos = RgpdOSKernel(lsm=rgpdos_lsm or rgpdos_policy())
        self.gp = GeneralPurposeKernel()
        self.driver_kernels: Dict[str, IODriverKernel] = {}
        for device_name, driver in sorted(drivers.items()):
            kernel = IODriverKernel(
                name=f"drv-{device_name}",
                device_name=device_name,
                driver=driver,
                retry_limit=self.config.io_retry_limit,
                backoff_seconds=self.config.io_retry_backoff_seconds,
                clock=self.clock,
                telemetry=self.telemetry,
            )
            self.driver_kernels[device_name] = kernel

        self._booted = False

    # -- boot ---------------------------------------------------------------

    def boot(self) -> "Machine":
        """Partition resources and wire the kernels together."""
        if self._booted:
            raise errors.KernelError("machine already booted")
        self.cpus.assign(self.rgpdos.name, self.config.rgpdos_cores)
        self.cpus.assign(self.gp.name, self.config.gp_cores)
        self.memory.create_partition(self.rgpdos.name, self.config.rgpdos_frames)
        self.memory.create_partition(self.gp.name, self.config.gp_frames)
        self.scheduler.register_kernel(self.rgpdos.name)
        self.scheduler.register_kernel(self.gp.name)

        for kernel in self.all_kernels():
            kernel.attach_switchboard(self.switchboard)

        for kernel in self.driver_kernels.values():
            self.cpus.assign(kernel.name, self.config.driver_cores_each)
            self.memory.create_partition(
                kernel.name, self.config.driver_frames_each
            )
            self.scheduler.register_kernel(kernel.name)
            # Both data-plane kernels can reach every driver kernel.
            self.switchboard.connect(self.gp.name, kernel.name)
            self.switchboard.connect(self.rgpdos.name, kernel.name)

        # Reference-passing channel between the two big kernels.
        self.switchboard.connect(self.gp.name, self.rgpdos.name)
        self._booted = True
        return self

    def all_kernels(self) -> List[SubKernel]:
        return [self.rgpdos, self.gp, *self.driver_kernels.values()]

    def _require_booted(self) -> None:
        if not self._booted:
            raise errors.KernelError("machine not booted; call boot() first")

    # -- dynamic partitioning ---------------------------------------------------

    def rebalance_cores(self, donor: str, receiver: str, cores: int) -> None:
        """Move cores between kernels at runtime."""
        self._require_booted()
        donor_cores = self.cpus.cores_of(donor)
        if cores > len(donor_cores):
            raise errors.ResourcePartitionError(
                f"kernel {donor!r} holds {len(donor_cores)} cores, "
                f"cannot give {cores}"
            )
        for core in donor_cores[:cores]:
            self.cpus.reassign_core(core, receiver)

    def rebalance_memory(self, donor: str, receiver: str, frames: int) -> None:
        self._require_booted()
        self.memory.rebalance(donor, receiver, frames)

    # -- work submission ---------------------------------------------------------

    def submit(self, kernel_name: str, task: Task) -> None:
        self._require_booted()
        self.scheduler.submit(kernel_name, task)

    def run(self, max_ticks: int = 1_000_000) -> int:
        """Drive the scheduler until all queues drain.

        Driver kernels additionally drain their IPC queues each tick
        (serving forwarded IO).  Returns ticks consumed; the clock
        advances by the scheduler quantum per tick.
        """
        self._require_booted()
        ticks = 0
        while True:
            pending_tasks = any(
                self.scheduler.pending(k.name) for k in self.all_kernels()
            )
            pending_io = any(
                self.switchboard.channel(self.gp.name, drv.name).pending(drv.name)
                or self.switchboard.channel(self.rgpdos.name, drv.name).pending(drv.name)
                for drv in self.driver_kernels.values()
            )
            if not pending_tasks and not pending_io:
                return ticks
            self.scheduler.tick()
            for drv in self.driver_kernels.values():
                drv.drain_ipc(self.gp.name)
                drv.drain_ipc(self.rgpdos.name)
            self.clock.advance(self.scheduler.quantum_seconds)
            ticks += 1
            if ticks >= max_ticks:
                raise errors.KernelError(
                    f"machine did not quiesce within {max_ticks} ticks"
                )

    # -- introspection ---------------------------------------------------------

    def resource_report(self) -> Dict[str, Dict[str, object]]:
        """Per-kernel snapshot of cores, memory, IO and CPU time."""
        self._require_booted()
        report: Dict[str, Dict[str, object]] = {}
        for kernel in self.all_kernels():
            partition = self.memory.partition(kernel.name)
            entry: Dict[str, object] = {
                "category": kernel.category,
                "cores": self.cpus.cores_of(kernel.name),
                "frames": partition.size,
                "frames_used": len(partition.used),
                "cpu_seconds": self.scheduler.cpu_time.get(kernel.name, 0.0),
                "processes": len(kernel.processes()),
            }
            if isinstance(kernel, IODriverKernel):
                entry["io_requests"] = kernel.served_requests
                entry["pd_io_requests"] = kernel.pd_requests
            report[kernel.name] = entry
        return report
