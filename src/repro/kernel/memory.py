"""Machine memory partitioned among sub-kernels.

Paper § 2 (purpose kernel model): *"The different kernels cooperate to
(dynamically) partition CPU and memory resources."*

The :class:`MemoryManager` owns the machine's frame pool and leases
disjoint partitions to kernels.  Partitions can grow and shrink at
runtime (the *dynamic* part); a kernel can never allocate beyond its
partition, which is what keeps PD frames (rgpdOS's partition) and NPD
frames (the general-purpose kernel's) physically disjoint in the
simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from .. import errors

#: Default frame size in bytes (4 KiB pages).
FRAME_SIZE = 4096


@dataclass
class Partition:
    """One kernel's lease on a set of frames."""

    kernel: str
    frames: Set[int] = field(default_factory=set)
    used: Set[int] = field(default_factory=set)

    @property
    def size(self) -> int:
        return len(self.frames)

    @property
    def free(self) -> int:
        return len(self.frames) - len(self.used)

    def utilization(self) -> float:
        return len(self.used) / len(self.frames) if self.frames else 0.0


class MemoryManager:
    """Leases disjoint frame partitions to sub-kernels.

    All repartitioning goes through :meth:`grow` / :meth:`shrink`,
    which move only *free* frames: a kernel's in-use memory is never
    silently reassigned (that would be a cross-kernel data leak).
    """

    def __init__(self, total_frames: int = 262144) -> None:
        if total_frames <= 0:
            raise errors.ResourcePartitionError(
                f"invalid memory size: {total_frames} frames"
            )
        self.total_frames = total_frames
        self._unassigned: Set[int] = set(range(total_frames))
        self._partitions: Dict[str, Partition] = {}
        self.repartition_events: List[Dict[str, object]] = []

    # -- partition lifecycle ---------------------------------------------------

    def create_partition(self, kernel: str, frames: int) -> Partition:
        if kernel in self._partitions:
            raise errors.ResourcePartitionError(
                f"kernel {kernel!r} already has a partition"
            )
        if frames > len(self._unassigned):
            raise errors.ResourcePartitionError(
                f"cannot lease {frames} frames to {kernel!r}: "
                f"only {len(self._unassigned)} unassigned"
            )
        taken = {self._unassigned.pop() for _ in range(frames)}
        partition = Partition(kernel=kernel, frames=taken)
        self._partitions[kernel] = partition
        return partition

    def partition(self, kernel: str) -> Partition:
        part = self._partitions.get(kernel)
        if part is None:
            raise errors.ResourcePartitionError(
                f"kernel {kernel!r} has no memory partition"
            )
        return part

    def grow(self, kernel: str, frames: int) -> None:
        """Move ``frames`` unassigned frames into a kernel's partition."""
        part = self.partition(kernel)
        if frames > len(self._unassigned):
            raise errors.ResourcePartitionError(
                f"cannot grow {kernel!r} by {frames}: "
                f"only {len(self._unassigned)} unassigned frames"
            )
        for _ in range(frames):
            part.frames.add(self._unassigned.pop())
        self.repartition_events.append(
            {"kernel": kernel, "delta": frames, "size": part.size}
        )

    def shrink(self, kernel: str, frames: int) -> None:
        """Return ``frames`` *free* frames from a kernel to the pool."""
        part = self.partition(kernel)
        free_frames = part.frames - part.used
        if frames > len(free_frames):
            raise errors.ResourcePartitionError(
                f"cannot shrink {kernel!r} by {frames}: "
                f"only {len(free_frames)} free frames in its partition"
            )
        for _ in range(frames):
            frame = free_frames.pop()
            part.frames.discard(frame)
            self._unassigned.add(frame)
        self.repartition_events.append(
            {"kernel": kernel, "delta": -frames, "size": part.size}
        )

    def rebalance(self, donor: str, receiver: str, frames: int) -> None:
        """Atomically move free frames from one kernel to another."""
        self.shrink(donor, frames)
        self.grow(receiver, frames)

    # -- per-kernel allocation ---------------------------------------------------

    def alloc_frames(self, kernel: str, count: int) -> List[int]:
        """Allocate frames *within* a kernel's partition."""
        part = self.partition(kernel)
        free_frames = list(part.frames - part.used)
        if count > len(free_frames):
            raise errors.OutOfSpaceError(
                f"kernel {kernel!r} partition exhausted: "
                f"{len(free_frames)} free, {count} requested"
            )
        taken = free_frames[:count]
        part.used.update(taken)
        return taken

    def free_frames(self, kernel: str, frames: List[int]) -> None:
        part = self.partition(kernel)
        for frame in frames:
            if frame not in part.used:
                raise errors.ResourcePartitionError(
                    f"kernel {kernel!r} freeing frame {frame} it does not hold"
                )
            part.used.discard(frame)

    # -- introspection ---------------------------------------------------------

    @property
    def unassigned_frames(self) -> int:
        return len(self._unassigned)

    def partitions(self) -> Dict[str, Partition]:
        return dict(self._partitions)

    def frame_owner(self, frame: int) -> str:
        """Which kernel holds a frame ('' if unassigned)."""
        for name, part in self._partitions.items():
            if frame in part.frames:
                return name
        return ""

    def assert_disjoint(self) -> None:
        """Invariant check: no frame belongs to two partitions."""
        seen: Dict[int, str] = {}
        for name, part in self._partitions.items():
            for frame in part.frames:
                if frame in seen:
                    raise errors.ResourcePartitionError(
                        f"frame {frame} leased to both {seen[frame]!r} "
                        f"and {name!r}"
                    )
                seen[frame] = name
