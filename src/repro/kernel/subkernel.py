"""Sub-kernel classes of the purpose-kernel model.

Paper § 2: *"the kernel is the aggregation of several sub-kernels
where each sub-kernel achieves a specific purpose"*, in three
categories:

* **IO driver kernels** — one per IO device, "mainly composed of the
  device driver"; every byte entering or leaving the machine traverses
  one of these, which is why they sit inside the trusted base.
* **a general purpose kernel** — hosts and processes NPD, and "does
  not include IO drivers": its IO requests are forwarded over IPC to a
  driver kernel.
* **rgpdOS** — the PD GDPR-aware kernel hosting DBFS, PS and the DED.

Each sub-kernel owns a syscall table, a set of processes, a memory
partition and a share of the cores.  The :class:`~repro.kernel.
machine.Machine` assembles them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from .. import errors
from ..obs import NULL_TELEMETRY, Telemetry
from .ipc import Message, Switchboard
from .lsm import LSMPolicy, permissive_policy
from .process import Process
from .syscalls import SyscallContext, SyscallTable

CATEGORY_IO_DRIVER = "io_driver"
CATEGORY_GENERAL_PURPOSE = "general_purpose"
CATEGORY_RGPDOS = "rgpdos"
CATEGORIES = (CATEGORY_IO_DRIVER, CATEGORY_GENERAL_PURPOSE, CATEGORY_RGPDOS)


class SubKernel:
    """Base class: a kernel with its own syscall table and processes."""

    category = ""

    def __init__(self, name: str, lsm: Optional[LSMPolicy] = None) -> None:
        if not name:
            raise errors.KernelError("sub-kernel needs a name")
        self.name = name
        self.syscalls = SyscallTable()
        self.lsm = lsm or permissive_policy()
        self.syscalls.set_lsm(self.lsm.decide)
        self._processes: Dict[int, Process] = {}
        self.switchboard: Optional[Switchboard] = None

    # -- processes ---------------------------------------------------------------

    def spawn(self, process: Process) -> Process:
        """Adopt a process into this kernel."""
        if process.pid in self._processes:
            raise errors.ProcessError(
                f"pid {process.pid} already running on {self.name!r}"
            )
        process.kernel = self.name
        self._processes[process.pid] = process
        return process

    def processes(self) -> List[Process]:
        return list(self._processes.values())

    def reap(self) -> List[Process]:
        """Remove and return exited processes."""
        dead = [p for p in self._processes.values() if not p.alive]
        for process in dead:
            del self._processes[process.pid]
        return dead

    # -- IPC ---------------------------------------------------------------

    def attach_switchboard(self, switchboard: Switchboard) -> None:
        self.switchboard = switchboard

    def send(self, recipient: str, topic: str, payload: object = None) -> Message:
        if self.switchboard is None:
            raise errors.IPCError(f"kernel {self.name!r} has no switchboard")
        return self.switchboard.send(self.name, recipient, topic, payload)

    def recv(self, sender: str) -> Optional[Message]:
        if self.switchboard is None:
            raise errors.IPCError(f"kernel {self.name!r} has no switchboard")
        return self.switchboard.recv(self.name, sender)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


@dataclass
class IORequest:
    """One IO operation forwarded to a driver kernel."""

    op: str                      # "read" | "write"
    target: str                  # device-specific address (path, block...)
    payload: bytes = b""
    carries_pd: bool = False     # PD traverses IO devices — tracked
    origin_kernel: str = ""


class IODriverKernel(SubKernel):
    """A lightweight kernel wrapping one device driver.

    The driver itself is a callable the machine plugs in (e.g. the
    block device's read/write).  Because PD traverses these kernels,
    they keep a count of PD-carrying requests: the paper removes IO
    devices from the general-purpose kernel precisely "because they
    are traversed by PD", and the KRN-P experiment reports this
    traffic split.
    """

    category = CATEGORY_IO_DRIVER

    def __init__(
        self,
        name: str,
        device_name: str,
        driver: Callable[[IORequest], bytes],
        lsm: Optional[LSMPolicy] = None,
        retry_limit: int = 3,
        backoff_seconds: float = 100e-6,
        clock: Optional[object] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        super().__init__(name, lsm)
        self.device_name = device_name
        self._driver = driver
        self.served_requests = 0
        self.pd_requests = 0
        # Transient-fault absorption (an NVMe command timing out and
        # being reissued): bounded retries with exponential backoff
        # charged to the simulated clock.  Only TransientIOError is
        # retried — PowerLossError and plain BlockDeviceError are
        # permanent as far as the driver can tell.
        self.retry_limit = retry_limit
        self.backoff_seconds = backoff_seconds
        self.clock = clock
        self.transient_errors = 0
        self.io_retries = 0
        self.retries_exhausted = 0
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        if self.telemetry.enabled:
            registry = self.telemetry.registry
            self._ctr_transient = registry.counter(
                f"io.{device_name}.transient_errors"
            )
            self._ctr_retries = registry.counter(f"io.{device_name}.retries")
            self._ctr_exhausted = registry.counter(f"io.{device_name}.exhausted")
        else:
            self._ctr_transient = self._ctr_retries = self._ctr_exhausted = None

    def serve(self, request: IORequest) -> bytes:
        """Execute one IO request, absorbing transient device faults.

        A :class:`~repro.errors.TransientIOError` is retried up to
        ``retry_limit`` times with exponential backoff (charged to the
        simulated clock, so the latency of a flaky device is visible
        in benchmark timings); when the budget is exhausted the last
        error propagates.  All outcomes are surfaced in telemetry as
        ``io.<device>.transient_errors`` / ``.retries`` /
        ``.exhausted``.
        """
        if request.op not in ("read", "write"):
            raise errors.KernelError(f"unknown IO op {request.op!r}")
        self.served_requests += 1
        if request.carries_pd:
            self.pd_requests += 1
        attempt = 0
        while True:
            try:
                return self._driver(request)
            except errors.TransientIOError:
                attempt += 1
                self.transient_errors += 1
                if self._ctr_transient is not None:
                    self._ctr_transient.inc()
                if attempt > self.retry_limit:
                    self.retries_exhausted += 1
                    if self._ctr_exhausted is not None:
                        self._ctr_exhausted.inc()
                    raise
                if self.clock is not None:
                    self.clock.advance(
                        self.backoff_seconds * (2 ** (attempt - 1))
                    )
                self.io_retries += 1
                if self._ctr_retries is not None:
                    self._ctr_retries.inc()

    def drain_ipc(self, sender: str) -> int:
        """Serve every queued IO request from ``sender``; reply inline."""
        served = 0
        while True:
            message = self.recv(sender)
            if message is None:
                return served
            if not isinstance(message.payload, IORequest):
                raise errors.IPCError(
                    f"driver kernel {self.name!r} received non-IO payload "
                    f"on topic {message.topic!r}"
                )
            result = self.serve(message.payload)
            self.send(sender, f"reply:{message.topic}", result)
            served += 1


class GeneralPurposeKernel(SubKernel):
    """Hosts NPD processing.  Has no IO drivers of its own."""

    category = CATEGORY_GENERAL_PURPOSE

    def __init__(self, name: str = "gp-kernel", lsm: Optional[LSMPolicy] = None) -> None:
        super().__init__(name, lsm)
        self.forwarded_io = 0

    def submit_io(self, driver_kernel: str, request: IORequest) -> None:
        """Forward an IO request to a driver kernel over IPC.

        This is the architectural consequence of stripping IO drivers
        out of the general-purpose kernel.
        """
        request.origin_kernel = self.name
        self.send(driver_kernel, "io", request)
        self.forwarded_io += 1


class RgpdOSKernel(SubKernel):
    """The PD kernel: hosts DBFS, PS and DED instances.

    The concrete components are installed by the top-level system
    facade (``repro.core.system``) to keep this layer free of upward
    dependencies; the kernel provides the mount points and the LSM
    confinement around them.
    """

    category = CATEGORY_RGPDOS

    def __init__(self, name: str = "rgpdos-kernel", lsm: Optional[LSMPolicy] = None) -> None:
        from .lsm import rgpdos_policy  # deferred: lsm imports syscalls only

        super().__init__(name, lsm or rgpdos_policy())
        self.components: Dict[str, object] = {}

    def mount(self, component_name: str, component: object) -> None:
        if component_name in self.components:
            raise errors.KernelError(
                f"component {component_name!r} already mounted on {self.name!r}"
            )
        self.components[component_name] = component

    def component(self, component_name: str) -> object:
        component = self.components.get(component_name)
        if component is None:
            raise errors.KernelError(
                f"no component {component_name!r} mounted on {self.name!r}"
            )
        return component
