"""The purpose-kernel machine model and its security mechanisms.

Sub-kernels (IO-driver / general-purpose / rgpdOS) with dynamic
CPU/memory partitioning and PD-guarding IPC; the syscall boundary with
seccomp-BPF-like filters and LSM policies (SELinux- and Smack-
flavoured); the process/address-space model that makes the Fig. 2
use-after-free observable; SGX-like enclaves for DED protection; and
the host/PIM/storage DED-placement cost model.
"""
