"""CPU partitioning and per-kernel scheduling.

The purpose-kernel model partitions cores among sub-kernels the same
way memory is partitioned: each core is owned by exactly one kernel at
a time, and ownership can move at runtime.  Within its cores, each
kernel runs a simple round-robin queue of :class:`Task` objects.

A :class:`Task` wraps a generator-style step function: each quantum
executes one step; the task finishes when the step function reports
completion.  This keeps the simulation deterministic and lets the
KRN-P benchmark measure throughput under different core splits.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Set

from .. import errors

StepFn = Callable[[], bool]
"""Runs one quantum of work; returns True when the task is finished."""


@dataclass
class Task:
    """One schedulable unit of kernel work."""

    name: str
    step: StepFn
    kernel: str = ""
    quanta_used: int = 0
    finished: bool = False


class CPUPartitioner:
    """Owns the machine's cores and leases them to kernels."""

    def __init__(self, total_cores: int = 8) -> None:
        if total_cores <= 0:
            raise errors.ResourcePartitionError(
                f"invalid core count {total_cores}"
            )
        self.total_cores = total_cores
        self._owner: Dict[int, str] = {}  # core -> kernel
        self.repartition_events: List[Dict[str, object]] = []

    def assign(self, kernel: str, cores: int) -> List[int]:
        """Lease ``cores`` unowned cores to ``kernel``."""
        free = [c for c in range(self.total_cores) if c not in self._owner]
        if cores > len(free):
            raise errors.ResourcePartitionError(
                f"cannot assign {cores} cores to {kernel!r}: "
                f"{len(free)} free"
            )
        taken = free[:cores]
        for core in taken:
            self._owner[core] = kernel
        return taken

    def reassign_core(self, core: int, new_kernel: str) -> None:
        """Move one core between kernels (the dynamic partitioning)."""
        if core not in self._owner:
            raise errors.ResourcePartitionError(f"core {core} is unassigned")
        old = self._owner[core]
        self._owner[core] = new_kernel
        self.repartition_events.append(
            {"core": core, "from": old, "to": new_kernel}
        )

    def cores_of(self, kernel: str) -> List[int]:
        return sorted(c for c, k in self._owner.items() if k == kernel)

    def owner_of(self, core: int) -> Optional[str]:
        return self._owner.get(core)

    def assignments(self) -> Dict[str, List[int]]:
        result: Dict[str, List[int]] = {}
        for core, kernel in self._owner.items():
            result.setdefault(kernel, []).append(core)
        return {k: sorted(v) for k, v in result.items()}


class PurposeFairQueue:
    """Thread-safe round-robin queue over per-purpose FIFOs.

    The purpose-kernel partitions CPU between sub-kernels; this is the
    same policy applied to the request engine's admission queue.  Each
    purpose gets its own FIFO and workers drain the FIFOs round-robin,
    so a burst of requests for one purpose (a marketing batch job, a
    regulator's bulk export) cannot starve another purpose's
    interactive traffic — within a purpose, order stays FIFO.

    ``pop`` blocks until an item is available, the timeout elapses, or
    the queue is closed; a closed queue still drains what it holds.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._queues: Dict[str, Deque[object]] = {}
        self._rotation: Deque[str] = deque()
        self._size = 0
        self._closed = False

    @property
    def closed(self) -> bool:
        return self._closed

    def __len__(self) -> int:
        with self._lock:
            return self._size

    def depths(self) -> Dict[str, int]:
        """Queued items per purpose (the fairness telemetry)."""
        with self._lock:
            return {
                purpose: len(queue)
                for purpose, queue in sorted(self._queues.items())
                if queue
            }

    def push(self, purpose: str, item: object) -> int:
        """Enqueue under ``purpose``; returns the new total depth."""
        with self._not_empty:
            if self._closed:
                raise errors.KernelError(
                    "cannot push onto a closed PurposeFairQueue"
                )
            queue = self._queues.get(purpose)
            if queue is None:
                queue = self._queues[purpose] = deque()
                self._rotation.append(purpose)
            queue.append(item)
            self._size += 1
            self._not_empty.notify()
            return self._size

    def pop(self, timeout: Optional[float] = None) -> Optional[object]:
        """Dequeue round-robin; None on timeout or closed-and-empty."""
        with self._not_empty:
            if self._size == 0:
                if self._closed:
                    return None
                self._not_empty.wait(timeout)
                if self._size == 0:
                    return None
            for _ in range(len(self._rotation)):
                purpose = self._rotation[0]
                self._rotation.rotate(-1)
                queue = self._queues[purpose]
                if queue:
                    self._size -= 1
                    return queue.popleft()
            return None  # pragma: no cover - size/queues cannot disagree

    def close(self) -> None:
        """Refuse new pushes and wake every blocked ``pop``."""
        with self._not_empty:
            self._closed = True
            self._not_empty.notify_all()


class Scheduler:
    """Round-robin scheduler over kernel-local run queues.

    :meth:`tick` advances the machine by one quantum: every core runs
    one step of the next runnable task from its owning kernel's queue.
    """

    def __init__(self, partitioner: CPUPartitioner, quantum_seconds: float = 1e-3) -> None:
        self.partitioner = partitioner
        self.quantum_seconds = quantum_seconds
        self._queues: Dict[str, Deque[Task]] = {}
        self.cpu_time: Dict[str, float] = {}
        self.completed: List[Task] = []

    def register_kernel(self, kernel: str) -> None:
        if kernel in self._queues:
            raise errors.KernelError(f"kernel {kernel!r} already registered")
        self._queues[kernel] = deque()
        self.cpu_time[kernel] = 0.0

    def submit(self, kernel: str, task: Task) -> None:
        queue = self._queues.get(kernel)
        if queue is None:
            raise errors.KernelError(
                f"kernel {kernel!r} not registered with the scheduler"
            )
        task.kernel = kernel
        queue.append(task)

    def pending(self, kernel: str) -> int:
        queue = self._queues.get(kernel)
        return len(queue) if queue is not None else 0

    def tick(self) -> int:
        """Run one quantum on every core; returns tasks finished."""
        finished = 0
        for core in range(self.partitioner.total_cores):
            kernel = self.partitioner.owner_of(core)
            if kernel is None:
                continue
            queue = self._queues.get(kernel)
            if not queue:
                continue
            task = queue.popleft()
            done = bool(task.step())
            task.quanta_used += 1
            self.cpu_time[kernel] = (
                self.cpu_time.get(kernel, 0.0) + self.quantum_seconds
            )
            if done:
                task.finished = True
                self.completed.append(task)
                finished += 1
            else:
                queue.append(task)
        return finished

    def run_until_idle(self, max_ticks: int = 1_000_000) -> int:
        """Tick until every queue drains; returns ticks consumed."""
        ticks = 0
        while any(self._queues.values()):
            progressed = self.tick()
            ticks += 1
            if ticks >= max_ticks:
                raise errors.KernelError(
                    f"scheduler did not drain within {max_ticks} ticks "
                    "(starved kernel with no cores?)"
                )
            # Detect starvation: work pending but no core can serve it.
            if progressed == 0:
                served = {
                    self.partitioner.owner_of(core)
                    for core in range(self.partitioner.total_cores)
                }
                starving = [
                    k for k, q in self._queues.items() if q and k not in served
                ]
                if starving and all(
                    not q or k in starving for k, q in self._queues.items()
                ):
                    raise errors.KernelError(
                        f"kernels {starving} have pending work but no cores"
                    )
        return ticks
