"""DED placement: host, Processing-in-Memory, Processing-in-Storage.

Paper § 3(3): *"DED could be executed in multiple locations with the
help of Processing in Memory (e.g. UPMEM) and Processing in Storage."*

This module models that placement decision.  Three compute sites:

* **host** — fast cores, but every consented record must cross the
  memory/storage interconnect into the DED;
* **pim** — UPMEM-style DPUs: many slow cores *inside* the memory
  banks; data movement to the compute is (near) free, compute is
  slower and parallel across DPUs;
* **storage** — in-SSD processors: no movement at all, slowest and
  least parallel compute, highest launch cost.

The cost model is deliberately simple and fully parameterised — the
experiment is about *where the crossover falls*, which is a shape, not
an absolute number: big scans with light per-record compute favour
near-data execution; small or compute-heavy processings favour the
host.  This is the canonical PIM trade-off (Nider et al., ATC'21,
which the paper cites for the idea).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from .. import errors

SITE_HOST = "host"
SITE_PIM = "pim"
SITE_STORAGE = "storage"
SITES = (SITE_HOST, SITE_PIM, SITE_STORAGE)


@dataclass(frozen=True)
class ComputeSite:
    """One place a DED can run, with its cost parameters.

    ``compute_seconds_per_unit`` is the time for one unit of
    per-record compute intensity on one of the site's workers;
    ``workers`` execute records in parallel; ``transfer_bytes_per_second``
    prices moving a record's bytes to the site (``None`` = free);
    ``launch_seconds`` is the fixed cost of shipping the DED there.
    """

    name: str
    compute_seconds_per_unit: float
    workers: int
    transfer_bytes_per_second: float  # float('inf') means free movement
    launch_seconds: float

    def estimate(
        self,
        records: int,
        bytes_per_record: int,
        compute_intensity: float,
    ) -> float:
        """Predicted latency for one DED execution at this site."""
        if records < 0 or bytes_per_record < 0 or compute_intensity < 0:
            raise errors.KernelError("negative workload parameters")
        transfer = (
            records * bytes_per_record / self.transfer_bytes_per_second
            if self.transfer_bytes_per_second != float("inf")
            else 0.0
        )
        compute = (
            records * compute_intensity * self.compute_seconds_per_unit
            / self.workers
        )
        return self.launch_seconds + transfer + compute


def default_sites() -> Dict[str, ComputeSite]:
    """Parameters loosely shaped on a host CPU vs UPMEM vs smart SSD.

    Host: few fast cores behind a ~16 GB/s interconnect.
    PIM: thousands of ~20x-slower DPUs with free movement, costly launch.
    Storage: hundreds of ~50x-slower cores, free movement, costliest launch.
    """
    return {
        SITE_HOST: ComputeSite(
            name=SITE_HOST,
            compute_seconds_per_unit=1e-7,
            workers=8,
            transfer_bytes_per_second=16e9,
            launch_seconds=1e-6,
        ),
        SITE_PIM: ComputeSite(
            name=SITE_PIM,
            # Aggregate DPU throughput is below the host's (DPUs lack
            # the host's wide/fast cores); what PIM buys is the free
            # data movement.
            compute_seconds_per_unit=5e-5,
            workers=2560,
            transfer_bytes_per_second=float("inf"),
            launch_seconds=2e-4,
        ),
        SITE_STORAGE: ComputeSite(
            name=SITE_STORAGE,
            compute_seconds_per_unit=5e-5,
            workers=256,
            transfer_bytes_per_second=float("inf"),
            launch_seconds=5e-4,
        ),
    }


@dataclass
class PlacementDecision:
    """Outcome of one placement query."""

    site: str
    estimates: Dict[str, float]
    records: int
    bytes_per_record: int
    compute_intensity: float

    def speedup_over_host(self) -> float:
        return self.estimates[SITE_HOST] / self.estimates[self.site]


class DEDPlacer:
    """Chooses where to run a DED, given the workload shape.

    The DED knows, after ``ded_filter``, exactly how many records it
    will touch and how wide they are — which is what makes automatic
    placement feasible in this architecture.
    """

    def __init__(self, sites: Dict[str, ComputeSite] = None) -> None:
        self.sites = sites or default_sites()
        if SITE_HOST not in self.sites:
            raise errors.KernelError("a host site is mandatory")
        self.decisions: List[PlacementDecision] = []

    def place(
        self,
        records: int,
        bytes_per_record: int,
        compute_intensity: float = 1.0,
    ) -> PlacementDecision:
        estimates = {
            name: site.estimate(records, bytes_per_record, compute_intensity)
            for name, site in self.sites.items()
        }
        best = min(sorted(estimates), key=lambda name: estimates[name])
        decision = PlacementDecision(
            site=best,
            estimates=estimates,
            records=records,
            bytes_per_record=bytes_per_record,
            compute_intensity=compute_intensity,
        )
        self.decisions.append(decision)
        return decision

    def crossover_records(
        self,
        bytes_per_record: int,
        compute_intensity: float = 1.0,
        low: int = 1,
        high: int = 1 << 30,
    ) -> int:
        """Smallest record count at which a near-data site beats the
        host (binary search over the monotone cost gap); ``high`` if
        the host wins everywhere in range."""
        def host_wins(records: int) -> bool:
            decision = self.sites
            host = decision[SITE_HOST].estimate(
                records, bytes_per_record, compute_intensity
            )
            near = min(
                site.estimate(records, bytes_per_record, compute_intensity)
                for name, site in decision.items()
                if name != SITE_HOST
            )
            return host <= near

        if not host_wins(low):
            return low
        if host_wins(high):
            return high
        while low + 1 < high:
            mid = (low + high) // 2
            if host_wins(mid):
                low = mid
            else:
                high = mid
        return high

    def placement_report(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for decision in self.decisions:
            counts[decision.site] = counts.get(decision.site, 0) + 1
        return counts
