"""Process model: address spaces, allocation, and the Fig. 2 hazard.

Idea 2 of the paper contrasts two worlds:

* **process-centric** (current OSes): "the process brings data to its
  domain (virtual address space)... A function which should not access
  some PD could still gain access to them (e.g., accidentally due to a
  use-after-free vulnerability).  Fig. 2 illustrates such a situation
  where function f2 accidentally accesses pd2."
* **data-centric** (rgpdOS): "reverses this power balance and runs the
  function in the PD's domain."

To make that contrast *observable* (the FIG2 experiment), the
simulated :class:`AddressSpace` reproduces the allocator behaviour
that makes use-after-free dangerous in real systems: ``free`` does not
clear the cell, and ``malloc`` reuses the most recently freed address
first (a LIFO quarantine-free free list, like common malloc fast
bins).  A dangling pointer therefore reads whatever was or now is in
the cell — including another subject's PD.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .. import errors
from .syscalls import SyscallContext, SyscallTable

_pid_counter = itertools.count(100)


@dataclass
class _Cell:
    value: object
    allocated: bool


class AddressSpace:
    """A simulated heap: integer addresses mapping to Python values.

    This is one process's *domain* in the paper's vocabulary.  The
    class deliberately allows dangling reads (:meth:`load` on a freed
    address) — it returns the stale value and records the violation in
    :attr:`uaf_events` so experiments can count accidental PD
    exposures instead of crashing.
    """

    def __init__(self, owner: str = "") -> None:
        self.owner = owner
        self._cells: Dict[int, _Cell] = {}
        self._free_list: List[int] = []  # LIFO reuse, like malloc fastbins
        self._next_addr = 0x1000
        self.uaf_events: List[Tuple[int, object]] = []

    def malloc(self, value: object) -> int:
        """Allocate a cell holding ``value``; reuses freed cells first."""
        if self._free_list:
            addr = self._free_list.pop()
            self._cells[addr] = _Cell(value=value, allocated=True)
            return addr
        addr = self._next_addr
        self._next_addr += 0x10
        self._cells[addr] = _Cell(value=value, allocated=True)
        return addr

    def free(self, addr: int) -> None:
        """Release a cell.  The value is NOT cleared (no zero-on-free)."""
        cell = self._cells.get(addr)
        if cell is None or not cell.allocated:
            raise errors.DomainViolationError(
                f"free of invalid address {addr:#x} in domain {self.owner!r}"
            )
        cell.allocated = False
        self._free_list.append(addr)

    def load(self, addr: int) -> object:
        """Read a cell.

        Reading a freed (dangling) address succeeds and returns the
        *current* contents of the cell — the use-after-free behaviour.
        The event is recorded for the experiment harness.
        """
        cell = self._cells.get(addr)
        if cell is None:
            raise errors.DomainViolationError(
                f"wild read at {addr:#x} in domain {self.owner!r}"
            )
        if not cell.allocated:
            self.uaf_events.append((addr, cell.value))
        return cell.value

    def store(self, addr: int, value: object) -> None:
        cell = self._cells.get(addr)
        if cell is None:
            raise errors.DomainViolationError(
                f"wild write at {addr:#x} in domain {self.owner!r}"
            )
        cell.value = value

    @property
    def live_allocations(self) -> int:
        return sum(1 for cell in self._cells.values() if cell.allocated)

    def __repr__(self) -> str:
        return (
            f"AddressSpace(owner={self.owner!r}, "
            f"live={self.live_allocations}, uaf={len(self.uaf_events)})"
        )


@dataclass
class Process:
    """A schedulable process with a domain and a security label."""

    name: str
    label: str
    pid: int = field(default_factory=lambda: next(_pid_counter))
    address_space: AddressSpace = field(default=None)  # type: ignore[assignment]
    kernel: str = ""
    alive: bool = True
    exit_code: Optional[int] = None
    cpu_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.address_space is None:
            self.address_space = AddressSpace(owner=self.name)

    def syscall(
        self,
        table: SyscallTable,
        syscall: str,
        args: Tuple[object, ...] = (),
        target_label: str = "",
    ) -> object:
        """Issue a syscall through ``table`` with this process's identity."""
        if not self.alive:
            raise errors.ProcessError(f"process {self.name!r} has exited")
        context = SyscallContext(
            syscall=syscall,
            pid=self.pid,
            label=self.label,
            args=args,
            target_label=target_label,
        )
        return table.dispatch(context)

    def exit(self, code: int = 0) -> None:
        self.alive = False
        self.exit_code = code

    def __repr__(self) -> str:
        return f"Process(pid={self.pid}, name={self.name!r}, label={self.label!r})"
