"""Simulated syscall layer.

The paper's enforcement story is phrased in syscall terms: F_pd^r
functions "are forbidden to make syscalls that could leak PD (e.g.,
write)", enforced with "Linux Seccomp BPF" (§ 3(2)).  To reproduce
that we need an actual syscall boundary to police, so the simulated
kernels dispatch every privileged operation through this table.

A syscall here is a name plus a handler.  Dispatch runs, in order:

1. the calling process's **seccomp filter** (``repro.kernel.seccomp``),
2. the kernel's **LSM hooks** (``repro.kernel.lsm``),
3. the handler itself.

Either guard can deny with :class:`~repro.errors.SyscallDenied` —
exactly the layering Linux uses (seccomp first, LSM second).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from .. import errors

# Canonical syscall names used across the simulation.  The leak-prone
# set mirrors the paper's example (write) plus the obvious exfiltration
# channels a seccomp profile for F_pd functions must close.
SYS_READ = "read"
SYS_WRITE = "write"
SYS_OPEN = "open"
SYS_CLOSE = "close"
SYS_UNLINK = "unlink"
SYS_SOCKET = "socket"
SYS_SEND = "send"
SYS_RECV = "recv"
SYS_EXEC = "exec"
SYS_FORK = "fork"
SYS_MMAP = "mmap"
SYS_IOCTL = "ioctl"
SYS_GETPID = "getpid"
SYS_EXIT = "exit"
# rgpdOS-specific entry points (PS is the only one reachable by apps).
SYS_PS_REGISTER = "ps_register"
SYS_PS_INVOKE = "ps_invoke"
# DBFS access — reachable only from the DED (enforced by LSM policy).
SYS_DBFS_QUERY = "dbfs_query"
SYS_DBFS_STORE = "dbfs_store"

#: Syscalls through which raw bytes can leave a process — the set a
#: PD-processing sandbox must deny.
LEAKY_SYSCALLS = frozenset(
    {SYS_WRITE, SYS_OPEN, SYS_UNLINK, SYS_SOCKET, SYS_SEND, SYS_EXEC,
     SYS_FORK, SYS_MMAP, SYS_IOCTL}
)

ALL_SYSCALLS = frozenset(
    {SYS_READ, SYS_WRITE, SYS_OPEN, SYS_CLOSE, SYS_UNLINK, SYS_SOCKET,
     SYS_SEND, SYS_RECV, SYS_EXEC, SYS_FORK, SYS_MMAP, SYS_IOCTL,
     SYS_GETPID, SYS_EXIT, SYS_PS_REGISTER, SYS_PS_INVOKE,
     SYS_DBFS_QUERY, SYS_DBFS_STORE}
)


@dataclass
class SyscallContext:
    """Everything a guard needs to know about one syscall attempt."""

    syscall: str
    pid: int
    label: str                      # the caller's security label (LSM)
    args: Tuple[object, ...] = ()
    target_label: str = ""          # label of the object being touched


@dataclass
class SyscallRecord:
    """Audit-trail entry for one dispatched syscall."""

    context: SyscallContext
    allowed: bool
    denier: str = ""                # "seccomp" | "lsm" | "" when allowed


Handler = Callable[[SyscallContext], object]
Guard = Callable[[SyscallContext], Optional[str]]
"""A guard returns None to allow, or a denial reason string."""


class SyscallTable:
    """Register handlers, attach guards, dispatch with full auditing."""

    def __init__(self) -> None:
        self._handlers: Dict[str, Handler] = {}
        self._seccomp_guards: Dict[int, Guard] = {}  # per-pid
        self._lsm_guard: Optional[Guard] = None      # kernel-wide
        self.audit_log: List[SyscallRecord] = []

    # -- wiring ---------------------------------------------------------------

    def register(self, syscall: str, handler: Handler) -> None:
        if syscall not in ALL_SYSCALLS:
            raise errors.KernelError(f"unknown syscall {syscall!r}")
        if syscall in self._handlers:
            raise errors.KernelError(f"syscall {syscall!r} already registered")
        self._handlers[syscall] = handler

    def attach_seccomp(self, pid: int, guard: Guard) -> None:
        """Install a per-process seccomp filter.

        Like the real prctl(PR_SET_SECCOMP), installation is one-way:
        a process cannot swap its filter for a laxer one.
        """
        if pid in self._seccomp_guards:
            raise errors.KernelError(
                f"pid {pid} already has a seccomp filter (filters are one-way)"
            )
        self._seccomp_guards[pid] = guard

    def set_lsm(self, guard: Guard) -> None:
        self._lsm_guard = guard

    # -- dispatch ---------------------------------------------------------------

    def dispatch(self, context: SyscallContext) -> object:
        """Run the guards, then the handler; audit everything."""
        guard = self._seccomp_guards.get(context.pid)
        if guard is not None:
            reason = guard(context)
            if reason is not None:
                self.audit_log.append(
                    SyscallRecord(context, allowed=False, denier="seccomp")
                )
                raise errors.SyscallDenied(context.syscall, reason)
        if self._lsm_guard is not None:
            reason = self._lsm_guard(context)
            if reason is not None:
                self.audit_log.append(
                    SyscallRecord(context, allowed=False, denier="lsm")
                )
                raise errors.SyscallDenied(context.syscall, reason)
        handler = self._handlers.get(context.syscall)
        if handler is None:
            self.audit_log.append(
                SyscallRecord(context, allowed=False, denier="nosys")
            )
            raise errors.KernelError(
                f"syscall {context.syscall!r} not implemented by this kernel"
            )
        self.audit_log.append(SyscallRecord(context, allowed=True))
        return handler(context)

    # -- audit ---------------------------------------------------------------

    def denials(self) -> List[SyscallRecord]:
        return [record for record in self.audit_log if not record.allowed]

    def denials_for_pid(self, pid: int) -> List[SyscallRecord]:
        return [r for r in self.denials() if r.context.pid == pid]
