"""Compliance auditor: the paper's technical rules, checked.

The paper frames rgpdOS as "a framework which forces the data operator
to respect a number of *technical* rules, which in turn allows the OS
to ensure GDPR compliance".  This module makes those rules explicit
and auditable: :class:`ComplianceAuditor` runs every rule against a
live system and produces a report mapping each rule to the GDPR
article it serves.

The four § 2 enforcement restrictions are covered, plus the membrane
invariants the design relies on (consistency across copies, TTL
respect, sensitive-field separation).  Rules that are *structural*
(enforced by construction) are still probed negatively — the auditor
attempts the forbidden access and checks it is refused, rather than
trusting the code that refuses it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from .. import errors
from ..storage.dbfs import DatabaseFS
from ..storage.query import DataQuery, MembraneQuery
from .active_data import AccessCredential
from .builtins import BuiltinFunctions
from .clock import Clock
from .processing_log import ProcessingLog


@dataclass(frozen=True)
class Finding:
    """One rule's audit outcome."""

    rule: str
    article: str
    ok: bool
    detail: str = ""


@dataclass
class ComplianceReport:
    """All findings of one audit run."""

    at: float
    findings: List[Finding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(finding.ok for finding in self.findings)

    def failures(self) -> List[Finding]:
        return [finding for finding in self.findings if not finding.ok]

    def summary(self) -> str:
        passed = sum(1 for finding in self.findings if finding.ok)
        status = "COMPLIANT" if self.ok else "NON-COMPLIANT"
        return f"{status}: {passed}/{len(self.findings)} rules hold"

    def by_article(self) -> Dict[str, List[Finding]]:
        grouped: Dict[str, List[Finding]] = {}
        for finding in self.findings:
            grouped.setdefault(finding.article, []).append(finding)
        return grouped


class ComplianceAuditor:
    """Runs the rgpdOS technical rules against a live instance."""

    def __init__(
        self,
        dbfs: DatabaseFS,
        builtins: BuiltinFunctions,
        log: ProcessingLog,
        clock: Clock,
        ttl_grace_seconds: float = 0.0,
    ) -> None:
        self.dbfs = dbfs
        self.builtins = builtins
        self.log = log
        self.clock = clock
        self.ttl_grace_seconds = ttl_grace_seconds
        self._ded = AccessCredential(holder="auditor", is_ded=True)

    def audit(self) -> ComplianceReport:
        """Run every rule; never raises — failures become findings."""
        report = ComplianceReport(at=self.clock.now())
        checks: List[Callable[[], Finding]] = [
            self._check_membrane_presence,
            self._check_dbfs_ded_only,
            self._check_membrane_wellformedness,
            self._check_copy_consistency,
            self._check_ttl_respected,
            self._check_sensitive_separation,
            self._check_processing_log_via_ps,
            self._check_erased_unreadable,
        ]
        for check in checks:
            try:
                report.findings.append(check())
            except errors.RgpdOSError as exc:  # a broken rule check itself
                report.findings.append(
                    Finding(
                        rule=check.__name__.lstrip("_"),
                        article="-",
                        ok=False,
                        detail=f"check crashed: {exc}",
                    )
                )
        return report

    # ------------------------------------------------------------------
    # Rules
    # ------------------------------------------------------------------

    def _check_membrane_presence(self) -> Finding:
        """Paper rule 3: every PD stored in DBFS has a membrane."""
        missing = []
        for uid, membrane in self.dbfs.iter_membranes(self._ded):
            if membrane is None:  # structurally impossible; probed anyway
                missing.append(uid)
        return Finding(
            rule="every-pd-has-membrane",
            article="Art. 25 (data protection by design)",
            ok=not missing,
            detail=f"{len(missing)} bare records" if missing else
            f"all {len(self.dbfs.all_uids())} records wrapped",
        )

    def _check_dbfs_ded_only(self) -> Finding:
        """Paper rule 4, probed negatively: a non-DED credential must
        be refused on every DBFS entry point."""
        outsider = AccessCredential(holder="audit-probe", is_ded=False)
        probes = 0
        refused = 0
        types = self.dbfs.list_types()
        uids = self.dbfs.all_uids()
        attempts: List[Callable[[], object]] = []
        if types:
            attempts.append(
                lambda: self.dbfs.query_membranes(
                    MembraneQuery(pd_type=types[0]), outsider
                )
            )
        if uids:
            attempts.append(
                lambda: self.dbfs.fetch_records(
                    DataQuery(uids=(uids[0],)), outsider
                )
            )
            attempts.append(lambda: self.dbfs.get_membrane(uids[0], outsider))
        attempts.append(
            lambda: self.dbfs.export_subject("audit-probe-subject", outsider)
        )
        for attempt in attempts:
            probes += 1
            try:
                attempt()
            except errors.PDLeakError:
                refused += 1
        return Finding(
            rule="dbfs-ded-only",
            article="Art. 32 (security of processing)",
            ok=probes == refused,
            detail=f"{refused}/{probes} outsider probes refused",
        )

    def _check_membrane_wellformedness(self) -> Finding:
        """Membranes must name a subject and use known consent scopes."""
        bad: List[str] = []
        for uid, membrane in self.dbfs.iter_membranes(self._ded):
            if not membrane.subject_id:
                bad.append(f"{uid}: no subject")
                continue
            pd_type = self.dbfs.get_type(membrane.pd_type)
            for purpose, decision in membrane.consents.items():
                try:
                    pd_type.scope_fields(decision.scope)
                except errors.ViewError:
                    bad.append(f"{uid}: bad scope {decision.scope!r}")
        return Finding(
            rule="membranes-wellformed",
            article="Art. 6/7 (lawfulness & consent)",
            ok=not bad,
            detail="; ".join(bad[:5]) if bad else "all membranes wellformed",
        )

    def _check_copy_consistency(self) -> Finding:
        """All copies in a lineage group share the same consent state."""
        groups: Dict[str, List[Dict[str, object]]] = {}
        for uid, membrane in self.dbfs.iter_membranes(self._ded):
            if membrane.lineage and not membrane.erased:
                snapshot = {
                    purpose: decision.scope
                    for purpose, decision in membrane.consents.items()
                }
                groups.setdefault(membrane.lineage, []).append(snapshot)
        divergent = [
            lineage
            for lineage, snapshots in groups.items()
            if any(s != snapshots[0] for s in snapshots[1:])
        ]
        return Finding(
            rule="copy-membrane-consistency",
            article="Art. 7(3) (withdrawal must be effective)",
            ok=not divergent,
            detail=(
                f"divergent lineage groups: {divergent[:3]}"
                if divergent
                else f"{len(groups)} lineage groups consistent"
            ),
        )

    def _check_ttl_respected(self) -> Finding:
        """No live PD may outlive its TTL (beyond the grace window).

        Uses the canonical :meth:`Membrane.is_expired` boundary shifted
        by the grace window: with zero grace, a PD exactly at its
        deadline is overdue here precisely when the DED already refuses
        to serve it.
        """
        now = self.clock.now()
        overdue = [
            uid
            for uid, membrane in self.dbfs.iter_membranes(self._ded)
            if not membrane.erased
            and membrane.is_expired(now - self.ttl_grace_seconds)
        ]
        return Finding(
            rule="ttl-respected",
            article="Art. 5(1)(e) (storage limitation)",
            ok=not overdue,
            detail=(
                f"{len(overdue)} PD past TTL: {overdue[:3]}"
                if overdue
                else "no PD past its TTL"
            ),
        )

    def _check_sensitive_separation(self) -> Finding:
        """Sensitive fields must live in a separate inode."""
        violations: List[str] = []
        for uid in self.dbfs.all_uids():
            membrane = self.dbfs.get_membrane(uid, self._ded)
            if membrane.erased:
                continue
            pd_type = self.dbfs.get_type(membrane.pd_type)
            if not pd_type.sensitive_fields:
                continue
            inode = self.dbfs.record_inode(uid)
            record = self.dbfs._load_record_raw(uid)
            has_sensitive_values = any(
                name in record for name in pd_type.sensitive_fields
            )
            if has_sensitive_values and "sensitive_inode" not in inode.attrs:
                violations.append(uid)
        return Finding(
            rule="sensitive-fields-separated",
            article="Art. 9 (special categories) / § 2 membrane",
            ok=not violations,
            detail=(
                f"{len(violations)} records mix sensitivity levels"
                if violations
                else "sensitive fields stored separately"
            ),
        )

    def _check_processing_log_via_ps(self) -> Finding:
        """Paper rules 1–2: every logged processing went through PS."""
        rogue = [e.entry_id for e in self.log.entries() if not e.via_ps]
        return Finding(
            rule="all-processing-via-ps",
            article="Art. 30 (records of processing)",
            ok=not rogue,
            detail=(
                f"{len(rogue)} log entries bypassed PS"
                if rogue
                else f"all {len(self.log)} entries via PS"
            ),
        )

    def _check_erased_unreadable(self) -> Finding:
        """Erased PD must not be fetchable through any DBFS path."""
        leaks: List[str] = []
        for uid, membrane in self.dbfs.iter_membranes(self._ded):
            if not membrane.erased:
                continue
            try:
                self.dbfs.fetch_records(DataQuery(uids=(uid,)), self._ded)
                leaks.append(uid)
            except errors.ExpiredPDError:
                pass
        return Finding(
            rule="erased-pd-unreadable",
            article="Art. 17 (right to erasure)",
            ok=not leaks,
            detail=(
                f"{len(leaks)} erased records still readable"
                if leaks
                else "erased PD unreadable"
            ),
        )
