"""The PD membrane — the paper's first demonstration of *active data*.

Section 2: *"Each PD stored in DBFS includes a membrane. ... The
membrane features different categories of metadata, among the most
important ones are: the origin of the PD; consents relative to each
data processing operation; time to live; level of sensibility; the
interface to use for data collection."*

A :class:`Membrane` carries exactly those categories, plus what makes
the data *active*: the membrane itself answers access questions
(:meth:`Membrane.permits`, :meth:`Membrane.allowed_fields`) and keeps
an auditable history of every consent change (GDPR Art. 7 requires the
controller to *demonstrate* consent).  The DED never decides on its
own whether a purpose may run — it asks the membrane.

Copies and lineage: the built-in ``copy`` function must keep membranes
consistent across all copies of the same PD (§ 2, built-in functions).
Membranes therefore record a ``lineage`` group id shared by every
copy; the consent-update path fans changes out to the group.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional

from .. import errors
from .datatypes import ORIGINS, SENSITIVITY_LEVELS, PDType
from .views import SCOPE_NONE

# Lawful bases of GDPR Art. 6(1). Default-consent entries carry
# LEGITIMATE_INTEREST (the paper: operations "backed by a legitimate
# basis ... do not need the specific subject's consent"); subject
# grants carry CONSENT.
BASIS_CONSENT = "consent"
BASIS_CONTRACT = "contract"
BASIS_LEGAL_OBLIGATION = "legal_obligation"
BASIS_VITAL_INTERESTS = "vital_interests"
BASIS_PUBLIC_INTEREST = "public_interest"
BASIS_LEGITIMATE_INTEREST = "legitimate_interest"
LAWFUL_BASES = (
    BASIS_CONSENT,
    BASIS_CONTRACT,
    BASIS_LEGAL_OBLIGATION,
    BASIS_VITAL_INTERESTS,
    BASIS_PUBLIC_INTEREST,
    BASIS_LEGITIMATE_INTEREST,
)


@dataclass(frozen=True)
class ConsentDecision:
    """One live consent entry: purpose → scope, with its lawful basis."""

    scope: str
    basis: str = BASIS_CONSENT
    granted_at: float = 0.0
    granted_by: str = ""

    def __post_init__(self) -> None:
        if self.basis not in LAWFUL_BASES:
            raise errors.MembraneError(
                f"unknown lawful basis {self.basis!r} (valid: {LAWFUL_BASES})"
            )


@dataclass(frozen=True)
class ConsentEvent:
    """One entry of the membrane's consent history (grant or revoke)."""

    action: str  # "grant" | "revoke"
    purpose: str
    scope: str
    basis: str
    at: float
    by: str


@dataclass
class Membrane:
    """The active metadata wrapped around one piece of PD.

    **Version contract.**  ``version`` is bumped monotonically by
    *every* consent/scope mutation — :meth:`grant`, :meth:`revoke`,
    :meth:`restrict`, :meth:`unrestrict` and :meth:`mark_erased`.  The
    DED's membrane-decision cache
    (:class:`repro.core.ded.MembraneDecisionCache`) keys its entries on
    this version, which is what makes caching consent decisions safe:
    a withdrawal changes the version, so the stale cached decision is
    simply never looked up again, and revocation takes effect on the
    very next invocation.  Any new mutating method MUST keep bumping
    ``version``.
    """

    pd_type: str
    subject_id: str
    origin: str
    sensitivity: str
    created_at: float
    ttl_seconds: Optional[float] = None
    consents: Dict[str, ConsentDecision] = field(default_factory=dict)
    collection: Dict[str, str] = field(default_factory=dict)
    lineage: str = ""
    version: int = 1
    erased: bool = False
    erased_at: Optional[float] = None
    restricted: bool = False  # GDPR Art. 18 restriction of processing
    history: List[ConsentEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.origin not in ORIGINS:
            raise errors.MembraneError(f"unknown origin {self.origin!r}")
        if self.sensitivity not in SENSITIVITY_LEVELS:
            raise errors.MembraneError(
                f"unknown sensitivity {self.sensitivity!r}"
            )
        if self.ttl_seconds is not None and self.ttl_seconds <= 0:
            raise errors.MembraneError("TTL must be positive")
        if not self.subject_id:
            raise errors.MembraneError("membrane must name its subject")

    # -- the active part: access decisions -----------------------------------

    def permits(self, purpose: str) -> Optional[str]:
        """Return the scope this membrane grants ``purpose``, or None.

        ``None`` means no access (no entry, an explicit ``none`` entry,
        processing restricted, PD erased).  This is the question the
        DED's ``ded_filter`` stage asks for every candidate PD.
        """
        if self.erased or self.restricted:
            return None
        decision = self.consents.get(purpose)
        if decision is None or decision.scope == SCOPE_NONE:
            return None
        return decision.scope

    def allowed_fields(self, purpose: str, pd_type: PDType) -> Optional[FrozenSet[str]]:
        """Resolve the permitted scope to concrete field names."""
        scope = self.permits(purpose)
        if scope is None:
            return None
        if pd_type.name != self.pd_type:
            raise errors.MembraneError(
                f"membrane is for type {self.pd_type!r}, asked against "
                f"{pd_type.name!r}"
            )
        return pd_type.scope_fields(scope)

    def is_expired(self, now: float) -> bool:
        """Storage limitation: has this PD outlived its TTL?

        **Canonical boundary rule.**  A membrane is expired at the
        instant ``now == created_at + ttl_seconds`` (inclusive ``>=``).
        Every expiry decision in the system — the DED access filter,
        the TTL watcher monitor, the Art. 5(1)(e) audit control, the
        compliance auditor's grace check, transfer export/import and
        the expiry daemon — must route through this predicate (or its
        ``deadline`` / :meth:`remaining_ttl` companions) so that a PD
        exactly at its deadline is treated identically everywhere:
        unreadable, overdue, and not transferable.
        """
        if self.ttl_seconds is None:
            return False
        return now >= self.created_at + self.ttl_seconds

    def expiry_deadline(self) -> Optional[float]:
        """The absolute instant this PD expires (None = no TTL).

        The timer wheel indexes membranes by this deadline; by the
        canonical rule above the PD is expired *at* the deadline, not
        one tick after it.
        """
        if self.ttl_seconds is None:
            return None
        return self.created_at + self.ttl_seconds

    def remaining_ttl(self, now: float) -> Optional[float]:
        if self.ttl_seconds is None:
            return None
        return max(0.0, self.created_at + self.ttl_seconds - now)

    # -- consent lifecycle ----------------------------------------------------

    def grant(
        self,
        purpose: str,
        scope: str,
        basis: str = BASIS_CONSENT,
        at: float = 0.0,
        by: str = "",
    ) -> None:
        """Record a consent (or widen/narrow an existing one)."""
        if self.erased:
            raise errors.MembraneError("cannot grant consent on erased PD")
        self.consents[purpose] = ConsentDecision(
            scope=scope, basis=basis, granted_at=at, granted_by=by
        )
        self.history.append(
            ConsentEvent("grant", purpose, scope, basis, at, by)
        )
        self.version += 1

    def revoke(self, purpose: str, at: float = 0.0, by: str = "") -> None:
        """Withdraw consent for a purpose (GDPR Art. 7(3)).

        Revocation is recorded even if no grant existed: the subject's
        objection (Art. 21) must hold against future grants by default.
        """
        previous = self.consents.get(purpose)
        basis = previous.basis if previous else BASIS_CONSENT
        self.consents[purpose] = ConsentDecision(
            scope=SCOPE_NONE, basis=basis, granted_at=at, granted_by=by
        )
        self.history.append(
            ConsentEvent("revoke", purpose, SCOPE_NONE, basis, at, by)
        )
        self.version += 1

    def restrict(self) -> None:
        """Freeze all processing (GDPR Art. 18)."""
        self.restricted = True
        self.version += 1

    def unrestrict(self) -> None:
        self.restricted = False
        self.version += 1

    def mark_erased(self, at: float) -> None:
        """Flip the membrane to the erased state (crypto-erasure done)."""
        self.erased = True
        self.erased_at = at
        self.version += 1

    # -- serialization --------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """Machine-readable form (stored in DBFS, exported on access)."""
        return {
            "pd_type": self.pd_type,
            "subject_id": self.subject_id,
            "origin": self.origin,
            "sensitivity": self.sensitivity,
            "created_at": self.created_at,
            "ttl_seconds": self.ttl_seconds,
            "consents": {
                purpose: {
                    "scope": d.scope,
                    "basis": d.basis,
                    "granted_at": d.granted_at,
                    "granted_by": d.granted_by,
                }
                for purpose, d in sorted(self.consents.items())
            },
            "collection": dict(self.collection),
            "lineage": self.lineage,
            "version": self.version,
            "erased": self.erased,
            "erased_at": self.erased_at,
            "restricted": self.restricted,
            "history": [
                {
                    "action": e.action,
                    "purpose": e.purpose,
                    "scope": e.scope,
                    "basis": e.basis,
                    "at": e.at,
                    "by": e.by,
                }
                for e in self.history
            ],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "Membrane":
        try:
            consents = {
                purpose: ConsentDecision(
                    scope=d["scope"],
                    basis=d["basis"],
                    granted_at=d["granted_at"],
                    granted_by=d["granted_by"],
                )
                for purpose, d in data["consents"].items()  # type: ignore[union-attr]
            }
            history = [
                ConsentEvent(
                    action=e["action"],
                    purpose=e["purpose"],
                    scope=e["scope"],
                    basis=e["basis"],
                    at=e["at"],
                    by=e["by"],
                )
                for e in data.get("history", [])  # type: ignore[union-attr]
            ]
            return cls(
                pd_type=data["pd_type"],
                subject_id=data["subject_id"],
                origin=data["origin"],
                sensitivity=data["sensitivity"],
                created_at=data["created_at"],
                ttl_seconds=data["ttl_seconds"],
                consents=consents,
                collection=dict(data.get("collection", {})),
                lineage=data.get("lineage", ""),
                version=data.get("version", 1),
                erased=data.get("erased", False),
                erased_at=data.get("erased_at"),
                restricted=data.get("restricted", False),
                history=history,
            )
        except (KeyError, TypeError) as exc:
            raise errors.MembraneError(f"malformed membrane dict: {exc}") from exc

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, raw: str) -> "Membrane":
        try:
            return cls.from_dict(json.loads(raw))
        except json.JSONDecodeError as exc:
            raise errors.MembraneError(f"malformed membrane JSON: {exc}") from exc

    def clone_for_copy(self, at: float) -> "Membrane":
        """Membrane for a copy of this PD — same lineage, same consents.

        The built-in ``copy`` uses this to guarantee "membrane
        consistency across all copies of the same PD".
        """
        clone = Membrane.from_dict(self.to_dict())
        clone.created_at = at
        return clone


def membrane_for_type(
    pd_type: PDType,
    subject_id: str,
    created_at: float,
    origin: Optional[str] = None,
    granted_by: str = "type-default",
) -> Membrane:
    """Build the default membrane Listing 1 implies for a new record.

    Default-consent entries are installed with the
    ``legitimate_interest`` basis, since the paper defines the default
    consent as "operations that are backed by a legitimate basis, and
    thus do not need the specific subject's consent".
    """
    membrane = Membrane(
        pd_type=pd_type.name,
        subject_id=subject_id,
        origin=origin or pd_type.origin,
        sensitivity=pd_type.sensitivity,
        created_at=created_at,
        ttl_seconds=pd_type.ttl_seconds,
        collection=dict(pd_type.collection),
    )
    for purpose, scope in sorted(pd_type.default_consent.items()):
        membrane.grant(
            purpose,
            scope,
            basis=BASIS_LEGITIMATE_INTEREST,
            at=created_at,
            by=granted_by,
        )
    return membrane
