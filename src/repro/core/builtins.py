"""rgpdOS built-in functions (the F_pd^w category).

Paper § 2: *"F_pd^w functions are natively provided by rgpdOS (they
are built-in) ... Built-in functions ensure that every PD is correctly
wrapped, that is it always includes a membrane.  Among built-in
functions, we can list update, delete, copy and acquisition."*

The paper motivates each one, and each motivation is enforced here:

* ``copy`` — "rgpdOS must ensure membrane consistency across all
  copies of the same PD": copies share a *lineage* id, and every
  membrane mutation (consent grant/revoke, restriction) fans out to
  the whole lineage group via :meth:`BuiltinFunctions.apply_membrane_change`.
* ``acquisition`` — "rgpdOS must ensure privacy and traceability from
  the moment PD enters the system": collection requires a collection
  method declared by the type, records the origin, and builds the
  membrane before the record touches DBFS.
* ``delete`` — "rgpdOS must ensure the GDPR's right to be forgotten":
  deletion crypto-erases (escrow mode by default, § 4 construction)
  and reports the residue scan so compliance is checkable, not
  assumed.
* ``update`` — rewrites fields in place with scrubbing of old values.

Authorisation: built-ins mutate DBFS on behalf of an *actor* — the
data subject themselves or the sysadmin.  Anyone else is refused.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional

from .. import errors
from ..storage.dbfs import DatabaseFS
from ..storage.query import DeleteRequest, StoreRequest, UpdateRequest
from .active_data import AccessCredential, PDRef
from .clock import Clock
from .datatypes import PDType
from .membrane import Membrane, membrane_for_type
from .processing_log import (
    ACCESS_COPIED,
    ACCESS_DELETED,
    ACCESS_PRODUCED,
    ACCESS_UPDATED,
    OUTCOME_COMPLETED,
    PDAccess,
    ProcessingLog,
)

SYSADMIN = "sysadmin"

BUILTIN_UPDATE = "update"
BUILTIN_DELETE = "delete"
BUILTIN_COPY = "copy"
BUILTIN_ACQUISITION = "acquisition"
BUILTIN_NAMES = (BUILTIN_UPDATE, BUILTIN_DELETE, BUILTIN_COPY, BUILTIN_ACQUISITION)


@dataclass
class EraseReport:
    """Outcome of a ``delete`` — evidence, not just a success flag."""

    uid: str
    mode: str
    erased_lineage: List[str] = field(default_factory=list)
    residue_device_blocks: int = 0
    residue_journal_records: int = 0

    @property
    def fully_forgotten(self) -> bool:
        return self.residue_device_blocks == 0 and self.residue_journal_records == 0


class BuiltinFunctions:
    """The four built-ins, bound to one DBFS instance."""

    def __init__(self, dbfs: DatabaseFS, clock: Clock, log: ProcessingLog) -> None:
        self.dbfs = dbfs
        self.clock = clock
        self.log = log
        self.credential = AccessCredential(holder="rgpdos-builtins", is_ded=True)
        #: Observers called after every erasure with
        #: ``(subject_id, needles, erased_uids, residue)`` — the
        #: continuous residue scrubber registers the needles here so
        #: the one-shot scan becomes an always-on invariant.
        self.erase_observers: List[Callable[..., None]] = []

    # ------------------------------------------------------------------
    # Authorisation
    # ------------------------------------------------------------------

    def _authorize(self, membrane: Membrane, actor: str, operation: str) -> None:
        """Only the subject or the sysadmin may mutate PD state."""
        if actor == SYSADMIN or actor == membrane.subject_id:
            return
        raise errors.ConsentDenied(
            purpose=operation,
            subject=membrane.subject_id,
            detail=f"actor {actor!r} may not {operation} this PD",
        )

    # ------------------------------------------------------------------
    # acquisition (data collection)
    # ------------------------------------------------------------------

    def acquisition(
        self,
        type_name: str,
        record: Mapping[str, object],
        subject_id: str,
        method: str,
        consents: Optional[Mapping[str, str]] = None,
        actor: str = SYSADMIN,
    ) -> PDRef:
        """Collect one PD record through a declared collection interface.

        ``method`` must be one of the type's declared collection
        interfaces (e.g. ``web_form``); ``consents`` are additional
        subject-granted consents collected alongside the data
        (purpose → scope).  The membrane is filled *before* storage —
        the "needed metadata to fill the membrane with at data
        collection time".
        """
        pd_type = self.dbfs.get_type(type_name)
        if method not in pd_type.collection:
            raise errors.GDPRError(
                f"type {type_name!r} declares no collection method {method!r} "
                f"(declared: {sorted(pd_type.collection)})"
            )
        now = self.clock.now()
        membrane = membrane_for_type(
            pd_type, subject_id=subject_id, created_at=now
        )
        membrane.collection = {method: pd_type.collection[method]}
        for purpose, scope in sorted((consents or {}).items()):
            membrane.grant(purpose, scope, at=now, by=subject_id)
        ref = self.dbfs.store(
            StoreRequest(
                pd_type=type_name,
                record=dict(record),
                membrane_json=membrane.to_json(),
            ),
            self.credential,
        )
        self.log.record(
            at=now,
            purpose=BUILTIN_ACQUISITION,
            processing=f"builtin:{BUILTIN_ACQUISITION}",
            outcome=OUTCOME_COMPLETED,
            accesses=(
                PDAccess(uid=ref.uid, subject_id=subject_id, mode=ACCESS_PRODUCED),
            ),
            detail=f"collected via {method}:{pd_type.collection[method]}",
        )
        return ref

    # ------------------------------------------------------------------
    # update
    # ------------------------------------------------------------------

    def update(
        self,
        target: PDRef,
        changes: Mapping[str, object],
        actor: str = SYSADMIN,
    ) -> None:
        """Rewrite fields of one PD record in place."""
        membrane = self.dbfs.get_membrane(target.uid, self.credential)
        self._authorize(membrane, actor, BUILTIN_UPDATE)
        self.dbfs.update(
            UpdateRequest(uid=target.uid, changes=dict(changes)), self.credential
        )
        self.log.record(
            at=self.clock.now(),
            purpose=BUILTIN_UPDATE,
            processing=f"builtin:{BUILTIN_UPDATE}",
            outcome=OUTCOME_COMPLETED,
            accesses=(
                PDAccess(
                    uid=target.uid,
                    subject_id=membrane.subject_id,
                    mode=ACCESS_UPDATED,
                    fields=tuple(sorted(changes)),
                ),
            ),
        )

    # ------------------------------------------------------------------
    # copy (with membrane consistency)
    # ------------------------------------------------------------------

    def copy(self, target: PDRef, actor: str = SYSADMIN) -> PDRef:
        """Duplicate one PD record; copies stay membrane-consistent.

        The original and the copy join the same lineage group; all
        future consent changes apply to the whole group (see
        :meth:`apply_membrane_change`).
        """
        membrane = self.dbfs.get_membrane(target.uid, self.credential)
        self._authorize(membrane, actor, BUILTIN_COPY)
        if membrane.erased:
            raise errors.ErasureError(f"cannot copy erased PD {target.uid!r}")

        # Establish the lineage group on first copy.
        if not membrane.lineage:
            membrane.lineage = target.uid
            self.dbfs.put_membrane(target.uid, membrane, self.credential)

        record = self.dbfs.fetch_records(
            _full_record_query(target.uid, self.dbfs), self.credential
        )[target.uid]
        clone = membrane.clone_for_copy(at=self.clock.now())
        ref = self.dbfs.store(
            StoreRequest(
                pd_type=membrane.pd_type,
                record=record,
                membrane_json=clone.to_json(),
            ),
            self.credential,
        )
        self.log.record(
            at=self.clock.now(),
            purpose=BUILTIN_COPY,
            processing=f"builtin:{BUILTIN_COPY}",
            outcome=OUTCOME_COMPLETED,
            accesses=(
                PDAccess(
                    uid=target.uid, subject_id=membrane.subject_id, mode=ACCESS_COPIED
                ),
                PDAccess(
                    uid=ref.uid, subject_id=membrane.subject_id, mode=ACCESS_PRODUCED
                ),
            ),
        )
        return ref

    def lineage_of(self, uid: str) -> List[str]:
        """Every uid in the same lineage group (including ``uid``).

        Uses DBFS's lineage index — O(group size), not a full scan.
        """
        membrane = self.dbfs.get_membrane(uid, self.credential)
        if not membrane.lineage:
            return [uid]
        return self.dbfs.lineage_members(membrane.lineage)

    def lineage_of_scan(self, uid: str) -> List[str]:
        """Index-free O(N) lineage resolution, kept for the ablation
        benchmark (what every membrane change would cost without the
        lineage index) and as the remount-time rebuild reference."""
        membrane = self.dbfs.get_membrane(uid, self.credential)
        if not membrane.lineage:
            return [uid]
        return [
            other_uid
            for other_uid, other in self.dbfs.iter_membranes(self.credential)
            if other.lineage == membrane.lineage
        ]

    def apply_membrane_change(
        self, uid: str, mutate: Callable[[Membrane], None]
    ) -> List[str]:
        """Apply a membrane mutation to the full lineage group.

        This is the mechanism behind "membrane consistency across all
        copies": consent grants, revocations and restrictions call
        through here.  Returns the uids updated.

        The whole get-mutate-put sequence (for the full lineage group,
        which is shard-affine) runs under the owning shard's writer
        lock, so two concurrent consent changes to the same lineage
        serialize instead of losing one side's update.
        """
        updated = []
        with self.dbfs.write_lock(uid):
            for member_uid in self.lineage_of(uid):
                membrane = self.dbfs.get_membrane(member_uid, self.credential)
                if membrane.erased:
                    continue
                mutate(membrane)
                self.dbfs.put_membrane(member_uid, membrane, self.credential)
                updated.append(member_uid)
        return updated

    # ------------------------------------------------------------------
    # delete (right to be forgotten)
    # ------------------------------------------------------------------

    def delete(
        self,
        target: PDRef,
        mode: str = "escrow",
        actor: str = SYSADMIN,
        include_copies: bool = True,
    ) -> EraseReport:
        """Erase one PD record — and, by default, every copy of it.

        Returns an :class:`EraseReport` carrying the forensic residue
        scan, so callers (and the compliance auditor) can verify the
        forgetting actually happened.
        """
        membrane = self.dbfs.get_membrane(target.uid, self.credential)
        self._authorize(membrane, actor, BUILTIN_DELETE)

        victims = (
            self.lineage_of(target.uid) if include_copies else [target.uid]
        )
        # Capture distinctive plaintext values before erasure so the
        # residue scan has concrete needles to look for.
        needles = _needles_for(self.dbfs, victims, self.credential)

        erased: List[str] = []
        accesses: List[PDAccess] = []
        for uid in victims:
            m = self.dbfs.get_membrane(uid, self.credential)
            if m.erased:
                continue
            self.dbfs.delete(DeleteRequest(uid=uid, mode=mode), self.credential)
            erased.append(uid)
            accesses.append(
                PDAccess(uid=uid, subject_id=m.subject_id, mode=ACCESS_DELETED)
            )

        # Residue = needle matches OUTSIDE the extents of live records.
        # Other subjects may legitimately store the same value (a
        # shared city name, say); those blocks are not residue of this
        # erasure.  DBFS scopes the scan: on a sharded store only the
        # owning shard's device and journal are searched, which is what
        # keeps per-delete cost flat as the population grows.
        residue = self.dbfs.residue_counts(
            needles, subject_id=membrane.subject_id
        )

        self.log.record(
            at=self.clock.now(),
            purpose=BUILTIN_DELETE,
            processing=f"builtin:{BUILTIN_DELETE}",
            outcome=OUTCOME_COMPLETED,
            accesses=tuple(accesses),
            detail=f"mode={mode}, erased={len(erased)} (lineage group)",
        )
        for observer in self.erase_observers:
            observer(membrane.subject_id, needles, erased, residue)
        return EraseReport(
            uid=target.uid,
            mode=mode,
            erased_lineage=erased,
            residue_device_blocks=residue["device_blocks"],
            residue_journal_records=residue["journal_records"],
        )


def _full_record_query(uid: str, dbfs: DatabaseFS):
    """A DataQuery for every field of one record (built-in privilege)."""
    from ..storage.query import DataQuery  # local import to avoid cycle noise

    membrane_type = None
    credential = AccessCredential(holder="rgpdos-builtins", is_ded=True)
    membrane_type = dbfs.get_membrane(uid, credential).pd_type
    pd_type: PDType = dbfs.get_type(membrane_type)
    return DataQuery(uids=(uid,), fields={uid: pd_type.field_names})


def _needles_for(
    dbfs: DatabaseFS, uids: List[str], credential: AccessCredential
) -> List[bytes]:
    """Distinctive byte strings from the records about to be erased."""
    needles: List[bytes] = []
    for uid in uids:
        membrane = dbfs.get_membrane(uid, credential)
        if membrane.erased:
            continue
        record = dbfs.fetch_records(
            _full_record_query(uid, dbfs), credential
        ).get(uid, {})
        for value in record.values():
            if isinstance(value, str) and len(value) >= 4:
                needles.append(value.encode())
            elif isinstance(value, bytes) and len(value) >= 4:
                needles.append(value)
    return needles
