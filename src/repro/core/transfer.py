"""Cross-operator PD transfer (GDPR Art. 20 portability, Chapter V geography).

The paper's membrane records PD origin as possibly "another data
operator" — implying controller-to-controller transfers.  This module
implements them between two rgpdOS instances, plus the **Chapter V**
(Art. 44–46) rules that say *where* PD may lawfully go:

* :class:`TransferPolicy` — the cross-border rulebook: a transfer out
  of a restricted jurisdiction is lawful only on one of the Chapter V
  grounds — an **adequacy decision** in force for the destination
  (Art. 45, possibly time-limited: decisions get invalidated, cf.
  Privacy Shield), or **appropriate safeguards** such as SCCs/BCRs
  registered for the (origin, destination) pair (Art. 46).  Everything
  else is prohibited by Art. 44.  The replicated cluster's placement
  engine (``repro.cluster.placement``) evaluates this policy at
  *placement time*, so an EU subject's replicas can never be assigned
  to a non-adequate region in the first place.

* :func:`export_package` — one subject's PD as a self-contained,
  machine-readable package: schema descriptions, records, membranes,
  and the remaining TTL of each piece (storage limitation travels with
  the data);
* :func:`import_package` — install the package at a destination
  operator: types are auto-installed from the packaged schemas when
  absent, membranes are *rebuilt* rather than copied —

  - origin becomes ``third_party`` (the destination did not collect
    this PD from the subject),
  - only the consents the **subject personally granted** travel; the
    source operator's legitimate-basis defaults do not bind the
    destination (it has its own),
  - the TTL clock does not reset: the destination gets the time the
    source had left, never more.

Erased PD is never exported (there is nothing lawful to move).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import (Dict, Iterable, List, Mapping, Optional, Sequence,
                    Tuple)

from .. import errors
from .active_data import PDRef
from .datatypes import ORIGIN_THIRD_PARTY, PDType
from .membrane import BASIS_CONSENT, Membrane
from .system import RgpdOS

PACKAGE_FORMAT = "rgpdos-transfer/1"

# ----------------------------------------------------------------------
# Chapter V — transfers of personal data to third countries (Art. 44-46)
# ----------------------------------------------------------------------

#: Grounds a TransferDecision can cite.
GROUND_DOMESTIC = "domestic"        # not a third-country transfer at all
GROUND_ADEQUACY = "adequacy"        # Art. 45 decision in force
GROUND_SAFEGUARDS = "safeguards"    # Art. 46 appropriate safeguards
GROUND_UNREGULATED = "unregulated"  # origin jurisdiction imposes no rule
GROUND_PROHIBITED = "prohibited"    # Art. 44 general principle: no ground

#: Art. 46 mechanisms the policy knows how to register.
SAFEGUARD_SCC = "scc"   # standard contractual clauses, Art. 46(2)(c)
SAFEGUARD_BCR = "bcr"   # binding corporate rules, Art. 46(2)(b)
SAFEGUARD_MECHANISMS = frozenset({SAFEGUARD_SCC, SAFEGUARD_BCR})


@dataclass(frozen=True)
class AdequacyDecision:
    """An Art. 45 adequacy decision: ``origin``'s authority has found
    ``destination``'s protection essentially equivalent.

    ``expires_at`` models the review clause: decisions are living
    instruments and can lapse or be struck down (Schrems II did exactly
    that to Privacy Shield).  The boundary is inclusive-expiry like
    ``Membrane.is_expired``: the decision is in force while
    ``at < expires_at`` and void from the expiry instant on.
    """

    origin: str
    destination: str
    decided_at: float = 0.0
    expires_at: Optional[float] = None

    def in_force(self, at: float) -> bool:
        if at < self.decided_at:
            return False
        return self.expires_at is None or at < self.expires_at


@dataclass(frozen=True)
class SafeguardGrant:
    """An Art. 46 instrument (SCCs, BCRs) executed for one corridor.

    A grant only carries weight when the caller *invokes* the matching
    mechanism — declaring a node ``safeguard="scc"`` is what activates
    an SCC grant for its corridor.  Grants can expire too (contracts
    have terms).
    """

    origin: str
    destination: str
    mechanism: str = SAFEGUARD_SCC
    expires_at: Optional[float] = None

    def __post_init__(self) -> None:
        if self.mechanism not in SAFEGUARD_MECHANISMS:
            raise errors.GDPRError(
                f"unknown Art. 46 mechanism {self.mechanism!r} "
                f"(valid: {sorted(SAFEGUARD_MECHANISMS)})"
            )

    def in_force(self, at: float) -> bool:
        return self.expires_at is None or at < self.expires_at


@dataclass(frozen=True)
class TransferDecision:
    """The answer to "may PD of ``origin`` land in ``destination``?"."""

    allowed: bool
    ground: str
    article: str
    reason: str


class TransferPolicy:
    """The Chapter V rulebook the placement engine consults.

    ``restricted_origins`` lists jurisdictions whose law constrains
    exports (GDPR-style regimes).  PD originating anywhere else is
    ``unregulated`` — permitted, but the decision says so explicitly so
    audits can tell "allowed by adequacy" from "no rule applied".
    """

    def __init__(
        self,
        decisions: Sequence[AdequacyDecision] = (),
        safeguards: Sequence[SafeguardGrant] = (),
        restricted_origins: Iterable[str] = ("eu", "uk"),
    ) -> None:
        self.restricted_origins = frozenset(restricted_origins)
        self._decisions: Dict[Tuple[str, str], AdequacyDecision] = {}
        for decision in decisions:
            self._decisions[(decision.origin, decision.destination)] = decision
        self._safeguards: Dict[Tuple[str, str, str], SafeguardGrant] = {}
        for grant in safeguards:
            key = (grant.origin, grant.destination, grant.mechanism)
            self._safeguards[key] = grant

    def adequacy(self, origin: str, destination: str) -> Optional[AdequacyDecision]:
        return self._decisions.get((origin, destination))

    def decide(
        self,
        origin: str,
        destination: str,
        at: float = 0.0,
        safeguard: Optional[str] = None,
    ) -> TransferDecision:
        """Evaluate one corridor at one instant.

        ``safeguard`` is the Art. 46 mechanism the receiving side
        invokes (e.g. the cluster node's declared ``safeguard``); it is
        only honoured when a matching in-force :class:`SafeguardGrant`
        has been registered for the corridor.
        """
        if origin == destination:
            return TransferDecision(
                True, GROUND_DOMESTIC, "Art. 44 (out of scope)",
                f"{origin!r} to itself is not a third-country transfer",
            )
        if origin not in self.restricted_origins:
            return TransferDecision(
                True, GROUND_UNREGULATED, "n/a",
                f"origin {origin!r} imposes no transfer restriction",
            )
        decision = self._decisions.get((origin, destination))
        if decision is not None and decision.in_force(at):
            return TransferDecision(
                True, GROUND_ADEQUACY, "Art. 45",
                f"adequacy decision {origin!r}->{destination!r} in force",
            )
        if safeguard is not None:
            grant = self._safeguards.get((origin, destination, safeguard))
            if grant is not None and grant.in_force(at):
                return TransferDecision(
                    True, GROUND_SAFEGUARDS, "Art. 46",
                    f"{safeguard} executed for {origin!r}->{destination!r}",
                )
        if decision is not None and not decision.in_force(at):
            return TransferDecision(
                False, GROUND_PROHIBITED, "Art. 44",
                f"adequacy decision {origin!r}->{destination!r} expired "
                f"at {decision.expires_at} and no safeguard applies",
            )
        return TransferDecision(
            False, GROUND_PROHIBITED, "Art. 44",
            f"no adequacy decision or invoked safeguard covers "
            f"{origin!r}->{destination!r}",
        )

    def permitted(
        self,
        origin: str,
        destination: str,
        at: float = 0.0,
        safeguard: Optional[str] = None,
    ) -> bool:
        return self.decide(origin, destination, at, safeguard).allowed


#: The instant (on the simulated clock) at which the default policy's
#: eu->us adequacy decision lapses — a Privacy-Shield-style
#: invalidation baked in so the expired-adequacy path stays exercised.
US_ADEQUACY_LAPSE = 1.0


def default_policy() -> TransferPolicy:
    """A small but realistic rulebook for the simulated regions.

    Regions: ``eu`` (the EEA as one jurisdiction), ``uk``, ``ch``,
    ``jp``, ``ca`` (adequate for EU PD), ``us`` (adequacy *lapsed* —
    needs SCCs), ``br`` / ``in`` (SCC corridors only from the EU).
    """
    return TransferPolicy(
        decisions=(
            AdequacyDecision("eu", "uk"),
            AdequacyDecision("eu", "ch"),
            AdequacyDecision("eu", "jp"),
            AdequacyDecision("eu", "ca"),
            # Struck down immediately after the simulated epoch: any
            # decide(at >= US_ADEQUACY_LAPSE) must fall through to
            # safeguards or be prohibited.
            AdequacyDecision("eu", "us", expires_at=US_ADEQUACY_LAPSE),
            AdequacyDecision("uk", "eu"),
            AdequacyDecision("uk", "ch"),
        ),
        safeguards=(
            SafeguardGrant("eu", "us", SAFEGUARD_SCC),
            SafeguardGrant("eu", "br", SAFEGUARD_SCC),
            SafeguardGrant("eu", "in", SAFEGUARD_SCC),
            SafeguardGrant("eu", "us", SAFEGUARD_BCR),
            SafeguardGrant("uk", "us", SAFEGUARD_SCC),
        ),
        restricted_origins=("eu", "uk"),
    )


@dataclass
class TransferOutcome:
    """Result of one import."""

    subject_id: str
    imported: List[PDRef] = field(default_factory=list)
    skipped_erased: int = 0
    skipped_expired: int = 0
    types_installed: List[str] = field(default_factory=list)


def export_package(system: RgpdOS, subject_id: str) -> Dict[str, object]:
    """Build a portable package of one subject's live PD."""
    export = system.dbfs.export_subject(
        subject_id, system.ps.builtins.credential
    )
    records = []
    skipped = 0
    skipped_expired = 0
    for entry in export["records"]:
        if entry.get("erased") or entry["data"] is None:
            skipped += 1
            continue
        membrane = entry["membrane"]
        remaining = _remaining_ttl(membrane, system.clock.now())
        if remaining is not None and remaining <= 0:
            # Storage limitation travels with the data: PD past its
            # TTL has no lawful life left to transfer.
            skipped_expired += 1
            continue
        records.append(
            {
                "pd_type": entry["pd_type"],
                "data": entry["data"],
                "membrane": membrane,
                "remaining_ttl": remaining,
            }
        )
    return {
        "format": PACKAGE_FORMAT,
        "source_operator": system.operator_name,
        "subject_id": subject_id,
        "exported_at": system.clock.now(),
        "schemas": export["schemas"],
        "records": records,
        "skipped_erased": skipped,
        "skipped_expired": skipped_expired,
    }


def _remaining_ttl(membrane: Mapping[str, object], now: float) -> Optional[float]:
    ttl = membrane.get("ttl_seconds")
    if ttl is None:
        return None
    created_at = membrane.get("created_at", 0.0)
    return max(0.0, created_at + ttl - now)  # type: ignore[operator]


def export_json(system: RgpdOS, subject_id: str) -> str:
    """The package as a JSON document (the Art. 20 wire format)."""

    def default(value: object) -> object:
        if isinstance(value, bytes):
            return {"__bytes__": value.hex()}
        raise TypeError(type(value).__name__)

    return json.dumps(
        export_package(system, subject_id), sort_keys=True, default=default
    )


def import_package(
    system: RgpdOS,
    package: Mapping[str, object],
    install_missing_types: bool = True,
) -> TransferOutcome:
    """Install a transfer package at the destination operator."""
    if package.get("format") != PACKAGE_FORMAT:
        raise errors.GDPRError(
            f"unknown transfer package format {package.get('format')!r}"
        )
    subject_id = package["subject_id"]
    outcome = TransferOutcome(
        subject_id=subject_id,  # type: ignore[arg-type]
        skipped_erased=int(package.get("skipped_erased", 0)),
    )
    now = system.clock.now()

    for record_entry in package["records"]:  # type: ignore[union-attr]
        type_name = record_entry["pd_type"]
        if type_name not in system.dbfs.list_types():
            if not install_missing_types:
                raise errors.UnknownTypeError(
                    f"destination has no type {type_name!r} and "
                    "auto-install is disabled"
                )
            description = package["schemas"][type_name]  # type: ignore[index]
            pd_type = PDType.from_description(description)
            system.install_type(pd_type)
            outcome.types_installed.append(type_name)

        pd_type = system.dbfs.get_type(type_name)
        remaining_ttl = record_entry.get("remaining_ttl")
        if remaining_ttl is not None and remaining_ttl <= 0:
            # The export side refuses overdue PD, but a package built at
            # the exact deadline (remaining == 0 under the canonical
            # ``is_expired`` boundary) or one whose TTL ran out in
            # transit carries no lawful life to install — and
            # ``Membrane.__post_init__`` rightly rejects a non-positive
            # TTL.  Skip, and account for it.
            outcome.skipped_expired += 1
            continue
        membrane = _rebuild_membrane(
            record_entry["membrane"],  # type: ignore[arg-type]
            remaining_ttl,  # type: ignore[arg-type]
            pd_type,
            now,
            source_operator=str(package.get("source_operator", "unknown")),
        )
        from ..storage.query import StoreRequest

        ref = system.dbfs.store(
            StoreRequest(
                pd_type=type_name,
                record=dict(record_entry["data"]),  # type: ignore[arg-type]
                membrane_json=membrane.to_json(),
            ),
            system.ps.builtins.credential,
        )
        outcome.imported.append(ref)
        system.log.record(
            at=now,
            purpose="builtin_acquisition",
            processing="transfer:import",
            outcome="completed",
            accesses=(),
            detail=f"imported {ref.uid} from "
                   f"{package.get('source_operator')}",
        )
    return outcome


def _rebuild_membrane(
    source: Mapping[str, object],
    remaining_ttl: Optional[float],
    pd_type: PDType,
    now: float,
    source_operator: str,
) -> Membrane:
    """Destination membrane: third-party origin, subject consents only."""
    membrane = Membrane(
        pd_type=pd_type.name,
        subject_id=source["subject_id"],  # type: ignore[arg-type]
        origin=ORIGIN_THIRD_PARTY,
        sensitivity=source.get("sensitivity", pd_type.sensitivity),  # type: ignore[arg-type]
        created_at=now,
        # Export refuses overdue PD, so a non-None value here is
        # strictly positive; the explicit None check avoids ever
        # turning a zero TTL into an unlimited one.
        ttl_seconds=remaining_ttl if remaining_ttl is not None else None,
        collection={"third_party": source_operator},
    )
    subject_id = source["subject_id"]
    for purpose, decision in sorted(
        source.get("consents", {}).items()  # type: ignore[union-attr]
    ):
        # Only consents the subject personally granted travel; the
        # source's legitimate-interest defaults stay at the source.
        if (
            decision.get("basis") == BASIS_CONSENT
            and decision.get("granted_by") == subject_id
            and decision.get("scope") != "none"
        ):
            scope = decision["scope"]
            # The scope must still make sense against the destination's
            # (possibly differently-versioned) type.
            try:
                pd_type.scope_fields(scope)
            except errors.ViewError:
                continue
            membrane.grant(
                purpose,
                scope,
                basis=BASIS_CONSENT,
                at=now,
                by=subject_id,
            )
    return membrane
