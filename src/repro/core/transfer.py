"""Cross-operator PD transfer (GDPR Art. 20 data portability).

The paper's membrane records PD origin as possibly "another data
operator" — implying controller-to-controller transfers.  This module
implements them between two rgpdOS instances:

* :func:`export_package` — one subject's PD as a self-contained,
  machine-readable package: schema descriptions, records, membranes,
  and the remaining TTL of each piece (storage limitation travels with
  the data);
* :func:`import_package` — install the package at a destination
  operator: types are auto-installed from the packaged schemas when
  absent, membranes are *rebuilt* rather than copied —

  - origin becomes ``third_party`` (the destination did not collect
    this PD from the subject),
  - only the consents the **subject personally granted** travel; the
    source operator's legitimate-basis defaults do not bind the
    destination (it has its own),
  - the TTL clock does not reset: the destination gets the time the
    source had left, never more.

Erased PD is never exported (there is nothing lawful to move).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from .. import errors
from .active_data import PDRef
from .datatypes import ORIGIN_THIRD_PARTY, PDType
from .membrane import BASIS_CONSENT, Membrane
from .system import RgpdOS

PACKAGE_FORMAT = "rgpdos-transfer/1"


@dataclass
class TransferOutcome:
    """Result of one import."""

    subject_id: str
    imported: List[PDRef] = field(default_factory=list)
    skipped_erased: int = 0
    skipped_expired: int = 0
    types_installed: List[str] = field(default_factory=list)


def export_package(system: RgpdOS, subject_id: str) -> Dict[str, object]:
    """Build a portable package of one subject's live PD."""
    export = system.dbfs.export_subject(
        subject_id, system.ps.builtins.credential
    )
    records = []
    skipped = 0
    skipped_expired = 0
    for entry in export["records"]:
        if entry.get("erased") or entry["data"] is None:
            skipped += 1
            continue
        membrane = entry["membrane"]
        remaining = _remaining_ttl(membrane, system.clock.now())
        if remaining is not None and remaining <= 0:
            # Storage limitation travels with the data: PD past its
            # TTL has no lawful life left to transfer.
            skipped_expired += 1
            continue
        records.append(
            {
                "pd_type": entry["pd_type"],
                "data": entry["data"],
                "membrane": membrane,
                "remaining_ttl": remaining,
            }
        )
    return {
        "format": PACKAGE_FORMAT,
        "source_operator": system.operator_name,
        "subject_id": subject_id,
        "exported_at": system.clock.now(),
        "schemas": export["schemas"],
        "records": records,
        "skipped_erased": skipped,
        "skipped_expired": skipped_expired,
    }


def _remaining_ttl(membrane: Mapping[str, object], now: float) -> Optional[float]:
    ttl = membrane.get("ttl_seconds")
    if ttl is None:
        return None
    created_at = membrane.get("created_at", 0.0)
    return max(0.0, created_at + ttl - now)  # type: ignore[operator]


def export_json(system: RgpdOS, subject_id: str) -> str:
    """The package as a JSON document (the Art. 20 wire format)."""

    def default(value: object) -> object:
        if isinstance(value, bytes):
            return {"__bytes__": value.hex()}
        raise TypeError(type(value).__name__)

    return json.dumps(
        export_package(system, subject_id), sort_keys=True, default=default
    )


def import_package(
    system: RgpdOS,
    package: Mapping[str, object],
    install_missing_types: bool = True,
) -> TransferOutcome:
    """Install a transfer package at the destination operator."""
    if package.get("format") != PACKAGE_FORMAT:
        raise errors.GDPRError(
            f"unknown transfer package format {package.get('format')!r}"
        )
    subject_id = package["subject_id"]
    outcome = TransferOutcome(
        subject_id=subject_id,  # type: ignore[arg-type]
        skipped_erased=int(package.get("skipped_erased", 0)),
    )
    now = system.clock.now()

    for record_entry in package["records"]:  # type: ignore[union-attr]
        type_name = record_entry["pd_type"]
        if type_name not in system.dbfs.list_types():
            if not install_missing_types:
                raise errors.UnknownTypeError(
                    f"destination has no type {type_name!r} and "
                    "auto-install is disabled"
                )
            description = package["schemas"][type_name]  # type: ignore[index]
            pd_type = PDType.from_description(description)
            system.install_type(pd_type)
            outcome.types_installed.append(type_name)

        pd_type = system.dbfs.get_type(type_name)
        remaining_ttl = record_entry.get("remaining_ttl")
        if remaining_ttl is not None and remaining_ttl <= 0:
            # The export side refuses overdue PD, but a package built at
            # the exact deadline (remaining == 0 under the canonical
            # ``is_expired`` boundary) or one whose TTL ran out in
            # transit carries no lawful life to install — and
            # ``Membrane.__post_init__`` rightly rejects a non-positive
            # TTL.  Skip, and account for it.
            outcome.skipped_expired += 1
            continue
        membrane = _rebuild_membrane(
            record_entry["membrane"],  # type: ignore[arg-type]
            remaining_ttl,  # type: ignore[arg-type]
            pd_type,
            now,
            source_operator=str(package.get("source_operator", "unknown")),
        )
        from ..storage.query import StoreRequest

        ref = system.dbfs.store(
            StoreRequest(
                pd_type=type_name,
                record=dict(record_entry["data"]),  # type: ignore[arg-type]
                membrane_json=membrane.to_json(),
            ),
            system.ps.builtins.credential,
        )
        outcome.imported.append(ref)
        system.log.record(
            at=now,
            purpose="builtin_acquisition",
            processing="transfer:import",
            outcome="completed",
            accesses=(),
            detail=f"imported {ref.uid} from "
                   f"{package.get('source_operator')}",
        )
    return outcome


def _rebuild_membrane(
    source: Mapping[str, object],
    remaining_ttl: Optional[float],
    pd_type: PDType,
    now: float,
    source_operator: str,
) -> Membrane:
    """Destination membrane: third-party origin, subject consents only."""
    membrane = Membrane(
        pd_type=pd_type.name,
        subject_id=source["subject_id"],  # type: ignore[arg-type]
        origin=ORIGIN_THIRD_PARTY,
        sensitivity=source.get("sensitivity", pd_type.sensitivity),  # type: ignore[arg-type]
        created_at=now,
        # Export refuses overdue PD, so a non-None value here is
        # strictly positive; the explicit None check avoids ever
        # turning a zero TTL into an unlimited one.
        ttl_seconds=remaining_ttl if remaining_ttl is not None else None,
        collection={"third_party": source_operator},
    )
    subject_id = source["subject_id"]
    for purpose, decision in sorted(
        source.get("consents", {}).items()  # type: ignore[union-attr]
    ):
        # Only consents the subject personally granted travel; the
        # source's legitimate-interest defaults stay at the source.
        if (
            decision.get("basis") == BASIS_CONSENT
            and decision.get("granted_by") == subject_id
            and decision.get("scope") != "none"
        ):
            scope = decision["scope"]
            # The scope must still make sense against the destination's
            # (possibly differently-versioned) type.
            try:
                pd_type.scope_fields(scope)
            except errors.ViewError:
                continue
            membrane.grant(
                purpose,
                scope,
                basis=BASIS_CONSENT,
                at=now,
                by=subject_id,
            )
    return membrane
