"""Data-type views — the paper's data-minimisation mechanism.

Listing 1 declares views inside a type::

    view v_name { name };
    view v_ano  { year_of_birthdate };

A *view* is a named projection of a PD type: the set of fields a
purpose consented "via that view" is allowed to observe.  Two scopes
are built in (they appear in Listing 1's consent block):

* ``all``  — every field of the type is visible;
* ``none`` — the purpose may not process the type at all.

Consent entries therefore map a purpose to a *scope name*: ``all``,
``none``, or a declared view.  :func:`resolve_scope_fields` turns a
scope into the concrete field set, given the type's declared fields
and views.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Mapping, Optional

from .. import errors

#: Scope meaning "every field" (Listing 1: ``purpose1: all``).
SCOPE_ALL = "all"
#: Scope meaning "no access at all" (Listing 1: ``purpose2: none``).
SCOPE_NONE = "none"

RESERVED_SCOPES = frozenset({SCOPE_ALL, SCOPE_NONE})


@dataclass(frozen=True)
class View:
    """A named field projection over a PD type."""

    name: str
    fields: FrozenSet[str]

    def __post_init__(self) -> None:
        if not self.name:
            raise errors.ViewError("view must have a name")
        if self.name in RESERVED_SCOPES:
            raise errors.ViewError(
                f"view name {self.name!r} collides with a reserved scope"
            )
        if not self.fields:
            raise errors.ViewError(f"view {self.name!r} exposes no fields")

    def project(self, record: Mapping[str, object]) -> Dict[str, object]:
        """Return only the fields this view exposes.

        Fields declared by the view but absent from the record are
        silently skipped: minimisation never *adds* data.
        """
        return {key: record[key] for key in self.fields if key in record}

    def covers(self, field_name: str) -> bool:
        return field_name in self.fields


def resolve_scope_fields(
    scope: str,
    all_fields: FrozenSet[str],
    views: Mapping[str, View],
) -> Optional[FrozenSet[str]]:
    """Resolve a consent scope to the set of visible fields.

    Returns ``None`` for the ``none`` scope (no access), the full field
    set for ``all``, and the view's field set for a named view.
    Unknown scope names raise :class:`ViewError` — a consent must never
    silently widen or narrow.
    """
    if scope == SCOPE_NONE:
        return None
    if scope == SCOPE_ALL:
        return all_fields
    view = views.get(scope)
    if view is None:
        raise errors.ViewError(
            f"consent references unknown view {scope!r} "
            f"(declared views: {sorted(views)})"
        )
    undeclared = view.fields - all_fields
    if undeclared:
        raise errors.ViewError(
            f"view {scope!r} exposes undeclared fields {sorted(undeclared)}"
        )
    return view.fields
