"""The DED's processing log.

Paper § 4 (right of access): *"informing subjects about processings
executed on their PD ... is easily obtained thanks to the DED, which
logs every executed processing.  This log is organized so that it can
give information about executed processings for each piece of PD."*

The log is append-only.  Every DED invocation writes one entry naming
the purpose, the processing, every PD uid it touched (and how: read,
denied, produced, updated, deleted), the subjects concerned, per-stage
timings and the outcome.  Queries are indexed by subject and by PD uid
— exactly the organisation § 4 asks for — and it doubles as the GDPR
Art. 30 record of processing activities.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

OUTCOME_COMPLETED = "completed"
OUTCOME_DENIED = "denied"       # consent filter left nothing to process
OUTCOME_ERROR = "error"

ACCESS_READ = "read"
ACCESS_DENIED = "denied"
ACCESS_PRODUCED = "produced"
ACCESS_UPDATED = "updated"
ACCESS_DELETED = "deleted"
ACCESS_COPIED = "copied"
ACCESS_EXPORTED = "exported"


@dataclass(frozen=True)
class PDAccess:
    """How one invocation touched one piece of PD."""

    uid: str
    subject_id: str
    mode: str
    fields: Tuple[str, ...] = ()


@dataclass(frozen=True)
class LogEntry:
    """One executed (or denied) processing."""

    entry_id: int
    at: float
    purpose: str
    processing: str
    outcome: str
    accesses: Tuple[PDAccess, ...] = ()
    stage_seconds: Mapping[str, float] = field(default_factory=dict)
    detail: str = ""
    via_ps: bool = True

    def subjects(self) -> Tuple[str, ...]:
        return tuple(sorted({a.subject_id for a in self.accesses}))

    def uids(self) -> Tuple[str, ...]:
        return tuple(sorted({a.uid for a in self.accesses}))

    def to_dict(self) -> Dict[str, object]:
        """Machine-readable form for the right-of-access report."""
        return {
            "entry_id": self.entry_id,
            "at": self.at,
            "purpose": self.purpose,
            "processing": self.processing,
            "outcome": self.outcome,
            "accesses": [
                {
                    "uid": a.uid,
                    "subject_id": a.subject_id,
                    "mode": a.mode,
                    "fields": list(a.fields),
                }
                for a in self.accesses
            ],
            "stage_seconds": dict(self.stage_seconds),
            "detail": self.detail,
        }


class ProcessingLog:
    """Append-only log with per-subject, per-PD and per-purpose indexes.

    Entry ids are **per instance**: each log numbers its own entries
    from 1, so two independent systems (or a fresh log after a
    remount) never interleave id spaces.  ``record`` is thread-safe —
    the request engine logs from its worker threads, and an unlocked
    append would corrupt the indexes under contention.
    """

    def __init__(self) -> None:
        self._entries: List[LogEntry] = []
        self._by_subject: Dict[str, List[int]] = {}
        self._by_uid: Dict[str, List[int]] = {}
        self._by_purpose: Dict[str, List[int]] = {}
        self._entry_counter = itertools.count(1)
        self._lock = threading.Lock()

    def record(
        self,
        at: float,
        purpose: str,
        processing: str,
        outcome: str,
        accesses: Tuple[PDAccess, ...] = (),
        stage_seconds: Optional[Mapping[str, float]] = None,
        detail: str = "",
        via_ps: bool = True,
    ) -> LogEntry:
        with self._lock:
            entry = LogEntry(
                entry_id=next(self._entry_counter),
                at=at,
                purpose=purpose,
                processing=processing,
                outcome=outcome,
                accesses=accesses,
                stage_seconds=dict(stage_seconds or {}),
                detail=detail,
                via_ps=via_ps,
            )
            index = len(self._entries)
            self._entries.append(entry)
            for access in accesses:
                self._by_subject.setdefault(access.subject_id, []).append(index)
                self._by_uid.setdefault(access.uid, []).append(index)
            self._by_purpose.setdefault(purpose, []).append(index)
            return entry

    # -- queries (the § 4 organisation) ------------------------------------

    def entries(self) -> List[LogEntry]:
        with self._lock:
            return list(self._entries)

    def for_subject(self, subject_id: str) -> List[LogEntry]:
        """Every processing that touched any PD of this subject."""
        with self._lock:
            return [
                self._entries[index]
                for index in dict.fromkeys(
                    self._by_subject.get(subject_id, [])
                )
            ]

    def for_pd(self, uid: str) -> List[LogEntry]:
        """Every processing that touched this specific piece of PD."""
        with self._lock:
            return [
                self._entries[index]
                for index in dict.fromkeys(self._by_uid.get(uid, []))
            ]

    def for_purpose(self, purpose: str) -> List[LogEntry]:
        """Every processing executed (or denied) under this purpose —
        the organisation the Art. 6 lawful-basis audit control needs."""
        with self._lock:
            return [
                self._entries[index]
                for index in self._by_purpose.get(purpose, [])
            ]

    def denials(self) -> List[LogEntry]:
        with self._lock:
            return [e for e in self._entries if e.outcome == OUTCOME_DENIED]

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def activity_report(self) -> Dict[str, object]:
        """Aggregate Art. 30-style record of processing activities."""
        with self._lock:
            by_purpose = {
                purpose: len(indexes)
                for purpose, indexes in sorted(self._by_purpose.items())
            }
            denied = sum(
                1 for e in self._entries if e.outcome == OUTCOME_DENIED
            )
            return {
                "total_processings": len(self._entries),
                "by_purpose": by_purpose,
                "denied": denied,
                "subjects_touched": len(self._by_subject),
                "pd_touched": len(self._by_uid),
            }
