"""Subject rights — the GDPR-facing API of rgpdOS.

Section 4 of the paper demonstrates two rights end to end; this module
implements those two plus the neighbouring rights the membrane design
makes straightforward:

* **right of access** (Art. 15, § 4 of the paper) — a structured,
  machine-readable export of the subject's PD *as stored in DBFS*
  (meaningful keys, schema included) together with the DED's
  processing log for that subject;
* **right to be forgotten** (Art. 17, § 4) — crypto-erasure under the
  authority-escrow model: the operator loses access, the authority
  keeps it for legal investigations;
* **portability** (Art. 20) — the access export as a JSON document;
* **rectification** (Art. 16) — through the built-in ``update``;
* **restriction** (Art. 18) — freeze processing without erasure;
* **objection / consent withdrawal** (Art. 21 / Art. 7(3)) — revoke a
  purpose across every copy of the subject's PD;
* **storage limitation** (Art. 5(1)(e)) — the TTL sweeper that purges
  PD whose membrane-declared time-to-live has elapsed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from typing import Callable

from .. import errors
from ..obs import NULL_TELEMETRY, Telemetry
from ..storage.dbfs import DatabaseFS
from .active_data import AccessCredential, PDRef
from .builtins import BuiltinFunctions, EraseReport
from .clock import Clock
from .membrane import BASIS_CONSENT, Membrane
from .processing_log import ProcessingLog


@dataclass
class AccessReport:
    """The Art. 15 package handed to a subject."""

    subject_id: str
    generated_at: float
    export: Dict[str, object]
    processings: List[Dict[str, object]] = field(default_factory=list)

    def to_json(self) -> str:
        """The "structured and machine-readable format" the GDPR asks for."""
        return json.dumps(
            {
                "subject_id": self.subject_id,
                "generated_at": self.generated_at,
                "personal_data": self.export,
                "processings": self.processings,
            },
            sort_keys=True,
            indent=2,
            default=_json_default,
        )


def _json_default(value: object) -> object:
    if isinstance(value, bytes):
        return value.hex()
    raise TypeError(f"unencodable value of type {type(value).__name__}")


@dataclass
class ErasureOutcome:
    """Result of a subject-level right-to-be-forgotten request."""

    subject_id: str
    reports: List[EraseReport] = field(default_factory=list)

    @property
    def erased_uids(self) -> List[str]:
        uids: List[str] = []
        for report in self.reports:
            uids.extend(report.erased_lineage)
        return sorted(set(uids))

    @property
    def fully_forgotten(self) -> bool:
        return all(report.fully_forgotten for report in self.reports)


class SubjectRights:
    """GDPR rights bound to one rgpdOS instance."""

    def __init__(
        self,
        dbfs: DatabaseFS,
        builtins: BuiltinFunctions,
        log: ProcessingLog,
        clock: Clock,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.dbfs = dbfs
        self.builtins = builtins
        self.log = log
        self.clock = clock
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._credential = AccessCredential(holder="subject-rights", is_ded=True)
        # Optional parallel runner for bulk rights (installed by the
        # request engine; None keeps the seed's serial loops).
        self._fanout: Optional[Callable[..., List[object]]] = None

    def set_fanout(self, run: Optional[Callable[..., List[object]]]) -> None:
        """Install a parallel per-shard runner for the bulk rights."""
        self._fanout = run

    def _fan(self, tasks: Sequence[Callable[[], object]]) -> List[object]:
        if self._fanout is None or len(tasks) <= 1:
            return [task() for task in tasks]
        return list(self._fanout(tasks))

    # ------------------------------------------------------------------
    # Art. 15 — right of access
    # ------------------------------------------------------------------

    def right_of_access(
        self, subject_id: str, snapshot: Optional[object] = None
    ) -> AccessReport:
        """Everything rgpdOS knows about a subject, structured.

        The data part comes straight from DBFS (schema keys intact —
        the § 4 point about keys that "make sense"); the processing
        part is the DED log filtered to this subject.  The export runs
        under an MVCC snapshot (the caller's, or one taken here), so a
        concurrent store or consent change cannot tear the report —
        and the read never blocks writers.
        """
        with self.telemetry.op(
            "rights.access", subject_id=subject_id
        ) as span:
            stats = getattr(self.dbfs, "stats", None)
            full_before = stats.full_decodes if stats is not None else 0
            partial_before = stats.partial_decodes if stats is not None else 0
            owned = None
            if snapshot is None:
                owned = snapshot = self.dbfs.begin_snapshot()
            try:
                export = self.dbfs.export_subject(
                    subject_id, self._credential, snapshot=snapshot
                )
            finally:
                if owned is not None:
                    owned.release()
            processings = [
                entry.to_dict() for entry in self.log.for_subject(subject_id)
            ]
            span.set_attr("records", len(export["records"]))
            if stats is not None:
                span.set_attrs(
                    full_decodes=stats.full_decodes - full_before,
                    partial_decodes=stats.partial_decodes - partial_before,
                )
            return AccessReport(
                subject_id=subject_id,
                generated_at=self.clock.now(),
                export=export,
                processings=processings,
            )

    # ------------------------------------------------------------------
    # Art. 20 — portability
    # ------------------------------------------------------------------

    def portability_export(self, subject_id: str) -> str:
        """The access report as a portable JSON document."""
        return self.right_of_access(subject_id).to_json()

    # ------------------------------------------------------------------
    # Art. 16 — rectification
    # ------------------------------------------------------------------

    def rectify(
        self, subject_id: str, ref: PDRef, changes: Mapping[str, object]
    ) -> None:
        """Correct fields of the subject's own PD."""
        self._require_ownership(subject_id, ref.uid)
        self.builtins.update(ref, changes, actor=subject_id)

    # ------------------------------------------------------------------
    # Art. 17 — right to be forgotten
    # ------------------------------------------------------------------

    def erase(
        self,
        subject_id: str,
        ref: Optional[PDRef] = None,
        mode: str = "escrow",
    ) -> ErasureOutcome:
        """Erase one PD record — or, with no ref, everything the
        subject has — including all copies."""
        with self.telemetry.op(
            "rights.erase", subject_id=subject_id, mode=mode
        ) as span:
            outcome = ErasureOutcome(subject_id=subject_id)
            if ref is not None:
                self._require_ownership(subject_id, ref.uid)
                outcome.reports.append(
                    self.builtins.delete(ref, mode=mode, actor=subject_id)
                )
                span.set_attr("erased", len(outcome.erased_uids))
                return outcome
            for uid in self.dbfs.uids_of_subject(subject_id):
                membrane = self.dbfs.get_membrane(uid, self._credential)
                if membrane.erased:
                    continue
                target = PDRef(
                    uid=uid, pd_type=membrane.pd_type, subject_id=subject_id
                )
                outcome.reports.append(
                    self.builtins.delete(target, mode=mode, actor=subject_id)
                )
            span.set_attr("erased", len(outcome.erased_uids))
            return outcome

    # ------------------------------------------------------------------
    # Batched multi-subject rights (scatter-gather over shards)
    # ------------------------------------------------------------------

    def bulk_right_of_access(
        self, subject_ids: Sequence[str]
    ) -> Dict[str, AccessReport]:
        """Art. 15 exports for many subjects, grouped by owning shard.

        Each subject's export touches only its shard, so a regulator
        sweep over thousands of subjects walks the shards one at a
        time, shard-local caches staying hot, instead of ping-ponging
        across all of them.  With the request engine's runner
        installed the per-shard groups run concurrently, every export
        reading its shard's component of one fleet-wide MVCC snapshot.
        """
        reports: Dict[str, AccessReport] = {}
        with self.telemetry.op(
            "rights.bulk_access", subjects=len(subject_ids)
        ):
            groups = sorted(self.dbfs.subjects_by_shard(subject_ids).items())
            snapshot = self.dbfs.begin_snapshot()
            try:
                def one_shard(index: int, group: List[str]):
                    shard_reports = {}
                    with self.telemetry.span(
                        "rights.shard", shard=index, op="access",
                        subjects=len(group),
                    ):
                        for subject_id in group:
                            shard_reports[subject_id] = self.right_of_access(
                                subject_id, snapshot=snapshot
                            )
                    return shard_reports

                for shard_reports in self._fan([
                    (lambda i=index, g=group: one_shard(i, g))
                    for index, group in groups
                ]):
                    reports.update(shard_reports)
            finally:
                snapshot.release()
        return reports

    def bulk_erase(
        self, subject_ids: Sequence[str], mode: str = "escrow"
    ) -> Dict[str, ErasureOutcome]:
        """Art. 17 for many subjects: one journal group commit per shard.

        Subjects are grouped by owning shard; every shard's erasures
        (membrane rewrites + delete markers) share a single
        :meth:`~repro.storage.journal.Journal.batch` group commit, so
        the journal cost of an N-subject purge is one flush per shard
        rather than several per subject.  With the request engine's
        runner installed the shards purge concurrently — each group
        holds only its own shard's writer lock, so the shards never
        contend with one another.
        """
        outcomes: Dict[str, ErasureOutcome] = {}
        with self.telemetry.op(
            "rights.bulk_erase", subjects=len(subject_ids), mode=mode
        ):
            groups = sorted(self.dbfs.subjects_by_shard(subject_ids).items())
            shards = self.dbfs.shards

            def one_shard(index: int, group: List[str]):
                shard_outcomes = {}
                with self.telemetry.span(
                    "rights.shard", shard=index, op="erase",
                    subjects=len(group),
                ):
                    # shard.batch() holds the shard's writer lock for
                    # the whole group commit, keeping concurrent
                    # same-shard mutators out of the batch.
                    with shards[index].batch():
                        for subject_id in group:
                            shard_outcomes[subject_id] = self.erase(
                                subject_id, mode=mode
                            )
                return shard_outcomes

            for shard_outcomes in self._fan([
                (lambda i=index, g=group: one_shard(i, g))
                for index, group in groups
            ]):
                outcomes.update(shard_outcomes)
        return outcomes

    # ------------------------------------------------------------------
    # Art. 18 — restriction of processing
    # ------------------------------------------------------------------

    def restrict(self, subject_id: str, ref: PDRef) -> List[str]:
        """Freeze processing of one PD (and its copies)."""
        self._require_ownership(subject_id, ref.uid)
        return self.builtins.apply_membrane_change(
            ref.uid, lambda membrane: membrane.restrict()
        )

    def lift_restriction(self, subject_id: str, ref: PDRef) -> List[str]:
        self._require_ownership(subject_id, ref.uid)
        return self.builtins.apply_membrane_change(
            ref.uid, lambda membrane: membrane.unrestrict()
        )

    # ------------------------------------------------------------------
    # Art. 7 / Art. 21 — consent lifecycle
    # ------------------------------------------------------------------

    def grant_consent(
        self,
        subject_id: str,
        ref: PDRef,
        purpose: str,
        scope: str,
    ) -> List[str]:
        """Grant (or re-scope) a consent; propagates to all copies."""
        self._require_ownership(subject_id, ref.uid)
        now = self.clock.now()
        return self.builtins.apply_membrane_change(
            ref.uid,
            lambda membrane: membrane.grant(
                purpose, scope, basis=BASIS_CONSENT, at=now, by=subject_id
            ),
        )

    def object_to(self, subject_id: str, purpose: str) -> List[str]:
        """Art. 21 objection: revoke a purpose on ALL the subject's PD."""
        now = self.clock.now()
        updated: List[str] = []
        for uid in self.dbfs.uids_of_subject(subject_id):
            membrane = self.dbfs.get_membrane(uid, self._credential)
            if membrane.erased:
                continue
            updated.extend(
                self.builtins.apply_membrane_change(
                    uid,
                    lambda m: m.revoke(purpose, at=now, by=subject_id),
                )
            )
        return sorted(set(updated))

    def consent_receipt(self, subject_id: str) -> Dict[str, object]:
        """Art. 7(1): "the controller shall be able to demonstrate that
        the data subject has consented".

        Returns a structured receipt: for every piece of the subject's
        PD, the current consent state and the full grant/revoke
        history (who, when, which scope, which lawful basis), straight
        from the membranes — the demonstration is the data structure
        itself, not a reconstructed claim.
        """
        entries = []
        for uid in self.dbfs.uids_of_subject(subject_id):
            membrane = self.dbfs.get_membrane(uid, self._credential)
            entries.append(
                {
                    "uid": uid,
                    "pd_type": membrane.pd_type,
                    "erased": membrane.erased,
                    "current_consents": {
                        purpose: {
                            "scope": decision.scope,
                            "basis": decision.basis,
                            "granted_at": decision.granted_at,
                            "granted_by": decision.granted_by,
                        }
                        for purpose, decision in sorted(
                            membrane.consents.items()
                        )
                    },
                    "history": [
                        {
                            "action": event.action,
                            "purpose": event.purpose,
                            "scope": event.scope,
                            "basis": event.basis,
                            "at": event.at,
                            "by": event.by,
                        }
                        for event in membrane.history
                    ],
                }
            )
        return {
            "subject_id": subject_id,
            "generated_at": self.clock.now(),
            "article": "GDPR Art. 7(1)",
            "records": entries,
        }

    # ------------------------------------------------------------------
    # Art. 5(1)(e) — storage limitation (TTL sweep)
    # ------------------------------------------------------------------

    def expire_overdue(self, mode: str = "escrow") -> List[str]:
        """Erase every PD whose TTL has elapsed; returns erased uids.

        rgpdOS runs this periodically; benchmarks call it directly.
        """
        with self.telemetry.op("rights.ttl_sweep") as span:
            now = self.clock.now()
            purged: List[str] = []
            for uid, membrane in self.dbfs.iter_membranes(self._credential):
                if membrane.erased or not membrane.is_expired(now):
                    continue
                ref = PDRef(
                    uid=uid,
                    pd_type=membrane.pd_type,
                    subject_id=membrane.subject_id,
                )
                report = self.builtins.delete(
                    ref, mode=mode, actor="sysadmin", include_copies=False
                )
                purged.extend(report.erased_lineage)
            span.set_attr("purged", len(set(purged)))
            return sorted(set(purged))

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _require_ownership(self, subject_id: str, uid: str) -> None:
        membrane = self.dbfs.get_membrane(uid, self._credential)
        if membrane.subject_id != subject_id:
            raise errors.ConsentDenied(
                purpose="subject-right",
                subject=membrane.subject_id,
                detail=f"{subject_id!r} is not the subject of {uid!r}",
            )
