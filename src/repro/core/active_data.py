"""Active data: PD that never leaves rgpdOS unwrapped.

Two guarantees of the paper's programming model live here:

* *"when a F_pd function wants to return some PD to the calling
  application, rgpdOS instead returns a reference or ID.  Subsequently
  the main application never manipulates real PD within its address
  space"* — :class:`PDRef` is that opaque reference.
* Idea 2 (data-centric execution): the function runs *in the PD's
  domain* and only sees the fields the membrane's scope allows —
  :class:`PDView` is the guarded object handed to F_pd^r functions,
  and :class:`ActiveData` is the full record+membrane pair that only
  a DED credential can open.

The capability mechanics are simulation-level (Python has no hardware
domains), but they are *checked*, not advisory: opening active data
without a DED credential raises :class:`PDLeakError`, and the tests
assert that.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, Mapping, Optional, Tuple

from .. import errors
from .datatypes import PDType
from .membrane import Membrane

_uid_counter = itertools.count(1)


def _next_uid(pd_type: str) -> str:
    return f"pd:{pd_type}:{next(_uid_counter):08d}"


@dataclass(frozen=True)
class PDRef:
    """Opaque reference to a piece of PD stored in DBFS.

    This is the only PD-related value an application outside the DED
    ever holds.  It reveals the type and subject (needed to phrase
    further requests) but no field values.
    """

    uid: str
    pd_type: str
    subject_id: str

    def __str__(self) -> str:
        return self.uid


@dataclass(frozen=True)
class AccessCredential:
    """A capability naming who is asking.

    ``is_ded`` is only True for credentials minted by the DED itself;
    DBFS and :class:`ActiveData` refuse every other holder (paper
    enforcement rule 4: "DED is the only component that is able to
    access DBFS directly").
    """

    holder: str
    is_ded: bool = False


#: The credential ordinary application code implicitly holds.
APPLICATION_CREDENTIAL = AccessCredential(holder="application", is_ded=False)


class ActiveData:
    """One PD record fused with its membrane.

    The raw record is private; :meth:`open_record` releases it only to
    a DED credential.  The membrane, by contrast, is *meant* to be
    consulted (that is what makes the data active), so
    :attr:`membrane` is public.
    """

    def __init__(
        self,
        record: Mapping[str, object],
        membrane: Membrane,
        uid: Optional[str] = None,
    ) -> None:
        if membrane is None:
            raise errors.MissingMembraneError(
                "active data cannot exist without a membrane"
            )
        self._record: Dict[str, object] = dict(record)
        self.membrane = membrane
        self.uid = uid or _next_uid(membrane.pd_type)

    @property
    def ref(self) -> PDRef:
        return PDRef(
            uid=self.uid,
            pd_type=self.membrane.pd_type,
            subject_id=self.membrane.subject_id,
        )

    def open_record(self, credential: AccessCredential) -> Dict[str, object]:
        """Release the raw record to a DED credential only."""
        if not credential.is_ded:
            raise errors.PDLeakError(
                f"{credential.holder!r} attempted to open PD {self.uid} "
                "outside the Data Execution Domain"
            )
        return dict(self._record)

    def view_for(
        self,
        purpose: str,
        pd_type: PDType,
        credential: AccessCredential,
    ) -> Optional["PDView"]:
        """Build the guarded view a purpose is entitled to, or None.

        This combines the membrane decision (which fields) with the
        capability check (who may even ask).
        """
        allowed = self.membrane.allowed_fields(purpose, pd_type)
        if allowed is None:
            return None
        record = self.open_record(credential)
        visible = {name: record[name] for name in allowed if name in record}
        return PDView(
            pd_ref=self.ref,
            purpose=purpose,
            allowed_fields=frozenset(allowed),
            values=visible,
        )

    def __repr__(self) -> str:
        # Deliberately shows no field values.
        return (
            f"ActiveData(uid={self.uid!r}, type={self.membrane.pd_type!r}, "
            f"subject={self.membrane.subject_id!r})"
        )


class PDView:
    """What an F_pd^r function actually receives.

    Listing 2 tests field availability with ``if (user.age)`` — so
    attribute access on a :class:`PDView` returns the value when the
    field is both allowed and present, and ``None`` otherwise.  The
    view is read-only: F_pd^r functions "do not modify the state of
    DBFS"; state changes go through built-ins.
    """

    __slots__ = ("_pd_ref", "_purpose", "_allowed", "_values")

    def __init__(
        self,
        pd_ref: PDRef,
        purpose: str,
        allowed_fields: FrozenSet[str],
        values: Mapping[str, object],
    ) -> None:
        object.__setattr__(self, "_pd_ref", pd_ref)
        object.__setattr__(self, "_purpose", purpose)
        object.__setattr__(self, "_allowed", frozenset(allowed_fields))
        object.__setattr__(self, "_values", dict(values))

    # -- field access ---------------------------------------------------------

    def __getattr__(self, name: str) -> object:
        if name.startswith("_"):
            raise AttributeError(name)
        return self._values.get(name)

    def __getitem__(self, name: str) -> object:
        return self._values.get(name)

    def get(self, name: str, default: object = None) -> object:
        return self._values.get(name, default)

    def __contains__(self, name: str) -> bool:
        return name in self._values

    def __setattr__(self, name: str, value: object) -> None:
        raise errors.GDPRError(
            "PD views are read-only; use the built-in `update` processing"
        )

    # -- introspection ----------------------------------------------------------

    @property
    def ref(self) -> PDRef:
        return self._pd_ref

    @property
    def purpose(self) -> str:
        return self._purpose

    @property
    def allowed_fields(self) -> FrozenSet[str]:
        return self._allowed

    def visible_fields(self) -> Tuple[str, ...]:
        return tuple(sorted(self._values))

    def items(self) -> Iterator[Tuple[str, object]]:
        return iter(sorted(self._values.items()))

    def as_dict(self) -> Dict[str, object]:
        """The visible fields as a plain dict (stays inside the DED)."""
        return dict(self._values)

    def __repr__(self) -> str:
        return (
            f"PDView({self._pd_ref.uid}, purpose={self._purpose!r}, "
            f"fields={sorted(self._values)})"
        )


def contains_raw_pd(value: object) -> bool:
    """Detect raw PD in a value about to cross the DED boundary.

    Used by ``ded_return``: if a processing tries to smuggle an
    :class:`ActiveData` or :class:`PDView` (or a container holding
    one) back to the application, the DED must refuse and substitute
    references.  Traverses tuples/lists/sets/dicts.
    """
    if isinstance(value, (ActiveData, PDView)):
        return True
    if isinstance(value, dict):
        return any(
            contains_raw_pd(k) or contains_raw_pd(v) for k, v in value.items()
        )
    if isinstance(value, (list, tuple, set, frozenset)):
        return any(contains_raw_pd(item) for item in value)
    return False
