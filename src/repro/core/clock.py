"""Deterministic simulation clock.

Every component of the reproduction measures time against a
:class:`Clock` instead of the wall clock, for two reasons:

* **Determinism** — TTL expiry (the GDPR storage-limitation principle)
  and processing-log timestamps must be reproducible in tests, so time
  only moves when the simulation advances it.
* **Cost accounting** — the simulated kernels charge CPU, block-device
  and pipeline costs to the clock, which lets the benchmark harness
  report stable "simulated seconds" alongside wall-clock
  pytest-benchmark numbers.

The clock counts in seconds (floats).  Durations in membranes are
expressed in seconds as well; :func:`parse_duration` converts the
DSL's ``1Y`` / ``6M`` / ``30D`` / ``12H`` notation (Listing 1 uses
``age: 1Y``).
"""

from __future__ import annotations

from .. import errors

#: Seconds per DSL duration unit.  A year is 365 days, a month 30 days:
#: the GDPR cares about retention horizons, not calendar arithmetic.
_DURATION_UNITS = {
    "S": 1.0,
    "MIN": 60.0,
    "H": 3600.0,
    "D": 86400.0,
    "W": 7 * 86400.0,
    "M": 30 * 86400.0,
    "Y": 365 * 86400.0,
}


class Clock:
    """A manually advanced monotonic clock.

    >>> clock = Clock()
    >>> clock.now()
    0.0
    >>> clock.advance(5.0)
    5.0
    >>> clock.now()
    5.0
    """

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError("clock cannot start before t=0")
        self._now = float(start)

    def now(self) -> float:
        """Return the current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward by ``seconds`` and return the new time.

        Raises :class:`ValueError` on negative increments: simulated
        time, like real time, is monotonic.
        """
        if seconds < 0:
            raise ValueError(f"cannot advance clock by {seconds} (negative)")
        self._now += float(seconds)
        return self._now

    def __repr__(self) -> str:
        return f"Clock(t={self._now:.6f})"


def parse_duration(text: str) -> float:
    """Parse a DSL duration such as ``"1Y"``, ``"6M"``, ``"90D"``.

    Supported units (case-insensitive): ``S`` seconds, ``MIN`` minutes,
    ``H`` hours, ``D`` days, ``W`` weeks, ``M`` months (30 days),
    ``Y`` years (365 days).

    >>> parse_duration("1Y")
    31536000.0
    >>> parse_duration("30d") == parse_duration("1M")
    True
    """
    stripped = text.strip().upper()
    if not stripped:
        raise errors.SemanticError("empty duration")
    # Longest unit first so "MIN" is not read as "M" + garbage.
    for unit in ("MIN", "S", "H", "D", "W", "M", "Y"):
        if stripped.endswith(unit):
            number = stripped[: -len(unit)].strip()
            try:
                value = float(number)
            except ValueError:
                raise errors.SemanticError(
                    f"invalid duration {text!r}: {number!r} is not a number"
                ) from None
            if value < 0:
                raise errors.SemanticError(f"negative duration {text!r}")
            return value * _DURATION_UNITS[unit]
    raise errors.SemanticError(
        f"invalid duration {text!r}: expected a number followed by one of "
        "S, MIN, H, D, W, M, Y"
    )


def format_duration(seconds: float) -> str:
    """Render ``seconds`` using the largest exact DSL unit.

    The output round-trips through :func:`parse_duration`.

    >>> format_duration(31536000.0)
    '1Y'
    >>> format_duration(90.0)
    '90S'
    """
    if seconds < 0:
        raise ValueError("negative duration")
    for unit in ("Y", "M", "W", "D", "H", "MIN", "S"):
        size = _DURATION_UNITS[unit]
        if seconds >= size and seconds % size == 0:
            return f"{int(seconds // size)}{unit}"
    return f"{seconds}S"
