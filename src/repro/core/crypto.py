"""Cryptographic substrate for the right to be forgotten.

Section 4 of the paper describes an *authority escrow* model for the
right to be forgotten:

    "rgpdOS assumes a model in which each data operator owns a public
    encryption key given to them by the authorities who keep the
    private key.  When PD is to be deleted, rgpdOS will simply encrypt
    it using the public key; in this way the data operator will not be
    able to access the data anymore, but the authorities will be able
    to decrypt it using their private key."

This module implements that model from scratch (the environment offers
no crypto library):

* :func:`generate_keypair` — textbook RSA key generation with
  Miller–Rabin primality testing.
* :class:`HybridCipher` — envelope encryption: a fresh symmetric key
  encrypts the payload with a SHA-256 counter-mode stream cipher and
  is itself wrapped under RSA with random padding.
* :class:`Authority` / :class:`OperatorKey` — the two halves of the
  escrow relationship.

The construction is honest about its scope: it is a *semantic*
reproduction of the escrow protocol, deterministic and dependency-free,
not a hardened production cipher (textbook RSA padding is simplified).
What the experiments rely on — the operator provably cannot invert the
escrow blob while the authority can — holds.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from random import Random
from typing import Optional, Tuple

from .. import errors

# ---------------------------------------------------------------------------
# Primality and key generation
# ---------------------------------------------------------------------------

#: Small primes used for fast trial division before Miller-Rabin.
_SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61,
    67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137,
    139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199,
)

#: Number of Miller-Rabin rounds; 40 gives a < 2^-80 error probability.
_MR_ROUNDS = 40


def is_probable_prime(n: int, rng: Optional[Random] = None) -> bool:
    """Return True if ``n`` passes trial division and Miller-Rabin."""
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    rng = rng or Random(0xC0FFEE ^ n)
    # Write n-1 as d * 2^r with d odd.
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(_MR_ROUNDS):
        a = rng.randrange(2, n - 1)
        x = pow(a, d, n)
        if x == 1 or x == n - 1:
            continue
        for _ in range(r - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


def _random_prime(bits: int, rng: Random) -> int:
    """Draw a random prime of exactly ``bits`` bits."""
    if bits < 8:
        raise errors.CryptoError(f"prime size too small: {bits} bits")
    while True:
        candidate = rng.getrandbits(bits)
        candidate |= (1 << (bits - 1)) | 1  # force top bit and oddness
        if is_probable_prime(candidate, rng):
            return candidate


@dataclass(frozen=True)
class PublicKey:
    """RSA public key ``(n, e)`` — handed to the data operator."""

    n: int
    e: int

    @property
    def byte_length(self) -> int:
        return (self.n.bit_length() + 7) // 8

    def fingerprint(self) -> str:
        """Short stable identifier used in membranes and audit logs."""
        digest = hashlib.sha256(f"{self.n}:{self.e}".encode()).hexdigest()
        return digest[:16]


@dataclass(frozen=True)
class PrivateKey:
    """RSA private key ``(n, d)`` — retained by the authority."""

    n: int
    d: int

    @property
    def byte_length(self) -> int:
        return (self.n.bit_length() + 7) // 8


def generate_keypair(bits: int = 1024, seed: Optional[int] = None) -> Tuple[PublicKey, PrivateKey]:
    """Generate an RSA keypair.

    ``bits`` is the modulus size.  1024 is the default; tests use 512
    for speed.  ``seed`` makes generation deterministic, which the
    benchmark harness relies on.
    """
    if bits < 128:
        raise errors.CryptoError(f"modulus too small: {bits} bits")
    rng = Random(seed if seed is not None else 0x5EED)
    e = 65537
    while True:
        p = _random_prime(bits // 2, rng)
        q = _random_prime(bits - bits // 2, rng)
        if p == q:
            continue
        n = p * q
        phi = (p - 1) * (q - 1)
        if phi % e == 0:
            continue
        d = pow(e, -1, phi)
        return PublicKey(n=n, e=e), PrivateKey(n=n, d=d)


# ---------------------------------------------------------------------------
# Symmetric stream cipher (SHA-256 in counter mode) + MAC
# ---------------------------------------------------------------------------


def _keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    """Derive ``length`` keystream bytes from SHA-256(key, nonce, ctr)."""
    out = bytearray()
    counter = 0
    while len(out) < length:
        block = hashlib.sha256(key + nonce + counter.to_bytes(8, "big")).digest()
        out.extend(block)
        counter += 1
    return bytes(out[:length])


def stream_xor(key: bytes, nonce: bytes, data: bytes) -> bytes:
    """Encrypt/decrypt ``data`` with the counter-mode keystream.

    XOR is its own inverse, so the same call performs both directions.
    """
    stream = _keystream(key, nonce, len(data))
    return bytes(a ^ b for a, b in zip(data, stream))


def _mac(key: bytes, *parts: bytes) -> bytes:
    mac = hmac.new(key, digestmod=hashlib.sha256)
    for part in parts:
        mac.update(len(part).to_bytes(8, "big"))
        mac.update(part)
    return mac.digest()


# ---------------------------------------------------------------------------
# Hybrid envelope encryption
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class EscrowBlob:
    """The ciphertext left in DBFS after a crypto-erasure.

    ``wrapped_key`` is the RSA-encrypted symmetric key (as an int),
    ``nonce``/``ciphertext``/``tag`` are the symmetric envelope, and
    ``key_fingerprint`` names the authority key that can open it.
    """

    wrapped_key: int
    nonce: bytes
    ciphertext: bytes
    tag: bytes
    key_fingerprint: str

    def __len__(self) -> int:
        return len(self.ciphertext)


class HybridCipher:
    """Envelope encryption under an RSA public key.

    A fresh 32-byte symmetric key is drawn per message, used for the
    stream cipher and the MAC, then wrapped under RSA.  Only the holder
    of the private key can unwrap it.
    """

    def __init__(self, rng: Optional[Random] = None) -> None:
        self._rng = rng or Random(0xE5C0)

    def _random_bytes(self, count: int) -> bytes:
        return bytes(self._rng.getrandbits(8) for _ in range(count))

    def encrypt(self, public: PublicKey, plaintext: bytes) -> EscrowBlob:
        """Encrypt ``plaintext`` so only the private-key holder can read it."""
        sym_key = self._random_bytes(32)
        nonce = self._random_bytes(16)
        # Randomised padding: [0x01 | random pad | 0x00 | key].  Keeps the
        # integer below the modulus and non-deterministic.
        pad_len = public.byte_length - len(sym_key) - 3
        if pad_len < 1:
            raise errors.CryptoError(
                f"RSA modulus too small ({public.byte_length} bytes) to wrap a 32-byte key"
            )
        padded = b"\x01" + bytes(
            (self._rng.getrandbits(8) | 1) for _ in range(pad_len)
        ) + b"\x00" + sym_key
        as_int = int.from_bytes(padded, "big")
        if as_int >= public.n:
            raise errors.CryptoError("padded key does not fit under the modulus")
        wrapped = pow(as_int, public.e, public.n)
        ciphertext = stream_xor(sym_key, nonce, plaintext)
        tag = _mac(sym_key, nonce, ciphertext)
        return EscrowBlob(
            wrapped_key=wrapped,
            nonce=nonce,
            ciphertext=ciphertext,
            tag=tag,
            key_fingerprint=public.fingerprint(),
        )

    def decrypt(self, private: PrivateKey, blob: EscrowBlob) -> bytes:
        """Recover the plaintext; raises :class:`CryptoError` on tamper."""
        as_int = pow(blob.wrapped_key, private.d, private.n)
        padded = as_int.to_bytes(private.byte_length, "big")
        # Strip the leading zero bytes then the 0x01 marker.
        stripped = padded.lstrip(b"\x00")
        if not stripped.startswith(b"\x01"):
            raise errors.CryptoError("bad envelope padding (wrong key?)")
        try:
            separator = stripped.index(b"\x00")
        except ValueError:
            raise errors.CryptoError("bad envelope padding: no separator") from None
        sym_key = stripped[separator + 1 :]
        if len(sym_key) != 32:
            raise errors.CryptoError(f"unwrapped key has {len(sym_key)} bytes, want 32")
        expected = _mac(sym_key, blob.nonce, blob.ciphertext)
        if not hmac.compare_digest(expected, blob.tag):
            raise errors.CryptoError("MAC mismatch: ciphertext was tampered with")
        return stream_xor(sym_key, blob.nonce, blob.ciphertext)


# ---------------------------------------------------------------------------
# Escrow roles
# ---------------------------------------------------------------------------


class Authority:
    """The data-protection authority: generates keys, keeps the private half.

    >>> authority = Authority(bits=512, seed=7)
    >>> operator = authority.issue_operator_key("acme")
    >>> blob = operator.escrow_encrypt(b"secret pd")
    >>> operator.can_decrypt(blob)
    False
    >>> authority.recover(blob)
    b'secret pd'
    """

    def __init__(self, bits: int = 1024, seed: Optional[int] = None) -> None:
        self._public, self._private = generate_keypair(bits=bits, seed=seed)
        self._cipher = HybridCipher(Random(seed if seed is not None else 0xA07))
        self._issued: dict[str, "OperatorKey"] = {}

    @property
    def public_key(self) -> PublicKey:
        return self._public

    def issue_operator_key(self, operator_name: str) -> "OperatorKey":
        """Hand the public key to a data operator, recording the issuance."""
        key = OperatorKey(operator_name, self._public, self._cipher)
        self._issued[operator_name] = key
        return key

    def issued_operators(self) -> Tuple[str, ...]:
        return tuple(sorted(self._issued))

    def recover(self, blob: EscrowBlob) -> bytes:
        """Decrypt an escrow blob (e.g. for a legal investigation)."""
        if blob.key_fingerprint != self._public.fingerprint():
            raise errors.CryptoError(
                "escrow blob was made under a different authority key"
            )
        return self._cipher.decrypt(self._private, blob)


class OperatorKey:
    """The data operator's half of the escrow: public key only.

    The operator can *produce* escrow blobs (that is what ``delete``
    does) but can never open one — :meth:`can_decrypt` exists so tests
    and audits can assert the negative.
    """

    def __init__(self, operator_name: str, public: PublicKey, cipher: HybridCipher) -> None:
        self.operator_name = operator_name
        self._public = public
        self._cipher = cipher

    @property
    def public_key(self) -> PublicKey:
        return self._public

    def escrow_encrypt(self, plaintext: bytes) -> EscrowBlob:
        """Encrypt PD for escrow; this is the erasure primitive."""
        return self._cipher.encrypt(self._public, plaintext)

    def can_decrypt(self, blob: EscrowBlob) -> bool:
        """The operator holds no private key, so this is always False.

        Present so compliance audits read as an explicit check instead
        of an assumption.
        """
        return False
