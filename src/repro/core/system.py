"""The rgpdOS system facade — the library's main entry point.

:class:`RgpdOS` assembles the full stack of Fig. 4 (left):

* the purpose-kernel **machine** (general-purpose kernel, rgpdOS
  kernel, one IO driver kernel per device);
* **DBFS** on its own block device, plus the traditional **NPD
  filesystem** on a second device;
* the **Processing Store** (the only entry point), the **built-ins**,
  the per-invocation **DEDs**, and the **processing log**;
* the **authority escrow** keys for the right to be forgotten;
* the **subject-rights** API and the **compliance auditor**.

Typical use::

    os_ = RgpdOS(operator_name="acme")
    os_.install('''
        type user { fields { name: string, year_of_birthdate: int };
                    view v_ano { year_of_birthdate };
                    consent { stats: v_ano };
                    collection { web_form: signup.html };
                    age: 1Y; }
        purpose stats { description: "Aggregate statistics";
                        uses: user via v_ano; basis: consent; }
    ''')
    ref = os_.collect("user", {"name": "Ada", "year_of_birthdate": 1815},
                      subject_id="ada", method="web_form")
    os_.register(my_stats_fn, purpose="stats")
    result = os_.invoke("my_stats_fn", target="user")
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Optional, Sequence, Tuple, Union

from .. import errors
from ..kernel.machine import Machine, MachineConfig
from ..kernel.tee import TEEPlatform
from ..kernel.subkernel import IORequest
from ..obs import EvidenceTrail, MetricsRegistry, Telemetry
from ..storage.block import BlockDevice
from ..storage.cache import CacheConfig, DEFAULT_CACHE_CONFIG
from ..storage.dbfs import DatabaseFS
from ..storage.extfs import FileBasedFS
from ..storage.journal import JournalConfig
from ..storage.shard import ShardedDBFS
from .active_data import PDRef
from .builtins import EraseReport
from .clock import Clock
from .compliance import ComplianceAuditor, ComplianceReport
from .crypto import Authority
from .datatypes import PDType
from .ded import DEDCostModel, InvocationResult
from .processing_log import ProcessingLog
from .processing_store import Processing, ProcessingStore
from .purposes import Purpose
from .rights import SubjectRights


def _device_driver(device: BlockDevice) -> Callable[[IORequest], bytes]:
    """Adapt a block device to the IO-driver-kernel interface."""

    def driver(request: IORequest) -> bytes:
        block_no = int(request.target)
        if request.op == "read":
            return device.read(block_no)
        device.write(block_no, request.payload)
        return b""

    return driver


class RgpdOS:
    """One GDPR-aware operating system instance."""

    def __init__(
        self,
        operator_name: str = "operator",
        authority: Optional[Authority] = None,
        machine_config: Optional[MachineConfig] = None,
        cost_model: Optional[DEDCostModel] = None,
        key_bits: int = 512,
        seed: int = 2023,
        with_machine: bool = True,
        cache_config: Optional[CacheConfig] = None,
        shards: int = 1,
        journal_blocks: int = 256,
        journal_config: Optional[JournalConfig] = None,
        pd_device_blocks: Optional[int] = None,
        telemetry: Optional[Telemetry] = None,
        record_codec: str = "v2",
        workers: int = 0,
        io_delay_scale: float = 0.0,
    ) -> None:
        self.clock = Clock()
        #: Cross-layer telemetry (``repro.obs``): one metrics registry
        #: and one tracer shared by the PS, DEDs, rights API, DBFS,
        #: journals and block devices.  Enabled by default; pass
        #: ``Telemetry.disabled()`` to strip every probe down to a
        #: null-object no-op.
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.operator_name = operator_name
        self.authority = authority or Authority(bits=key_bits, seed=seed)
        self.operator_key = self.authority.issue_operator_key(operator_name)
        #: Fast-path knobs (see ``repro.storage.cache.CacheConfig``),
        #: threaded down to the block device, DBFS and the PS's
        #: decision cache.  ``CacheConfig.disabled()`` restores the
        #: un-cached behaviour — performance changes, results never do.
        self.cache_config = (
            cache_config if cache_config is not None else DEFAULT_CACHE_CONFIG
        )
        if shards < 1:
            raise errors.GDPRError(f"shards must be >= 1, got {shards}")
        self.shards = shards

        # Storage: one device per PD shard (under DBFS), one for NPD.
        # ``shards=1`` (the default) keeps the seed layout: a single
        # plain DatabaseFS on a single device.  ``shards=N`` scales the
        # PD side out to N ShardedDBFS shards, each on its own device
        # behind its own driver kernel.
        device_kwargs: Dict[str, object] = {
            "page_cache_blocks": self.cache_config.page_cache_blocks,
            "telemetry": self.telemetry,
            "io_delay_scale": io_delay_scale,
        }
        self.io_delay_scale = io_delay_scale
        if pd_device_blocks is not None:
            device_kwargs["block_count"] = pd_device_blocks
        self.pd_devices = [
            BlockDevice(**device_kwargs) for _ in range(shards)
        ]
        self.pd_device = self.pd_devices[0]
        if shards == 1:
            self.dbfs: Union[DatabaseFS, ShardedDBFS] = DatabaseFS(
                device=self.pd_device,
                operator_key=self.operator_key,
                journal_blocks=journal_blocks,
                cache_config=self.cache_config,
                journal_config=journal_config,
                telemetry=self.telemetry,
                record_codec=record_codec,
            )
        else:
            self.dbfs = ShardedDBFS(
                devices=self.pd_devices,
                operator_key=self.operator_key,
                journal_blocks=journal_blocks,
                cache_config=self.cache_config,
                journal_config=journal_config,
                telemetry=self.telemetry,
                record_codec=record_codec,
            )
        self.npd_fs = FileBasedFS()

        # The GDPR machinery.  Every instance carries a TEE platform so
        # invocations can opt into enclave-protected DED execution
        # (paper § 3(3)) with ``invoke(..., use_tee=True)``.
        self.log = ProcessingLog()
        self.tee_platform = TEEPlatform(
            platform_id=f"tee-{operator_name}", seed=seed
        )
        from ..kernel.pim import DEDPlacer

        self.ps = ProcessingStore(
            dbfs=self.dbfs,
            clock=self.clock,
            log=self.log,
            cost_model=cost_model,
            tee_platform=self.tee_platform,
            placer=DEDPlacer(),
            cache_config=self.cache_config,
            telemetry=self.telemetry,
        )
        self.rights = SubjectRights(
            dbfs=self.dbfs,
            builtins=self.ps.builtins,
            log=self.log,
            clock=self.clock,
            telemetry=self.telemetry,
        )
        self.auditor = ComplianceAuditor(
            dbfs=self.dbfs,
            builtins=self.ps.builtins,
            log=self.log,
            clock=self.clock,
        )
        # Art. 33/34: breach monitoring over the mediation counters.
        from .breach import BreachMonitor  # deferred: breach uses log types

        self.breach_monitor = BreachMonitor(
            dbfs=self.dbfs, log=self.log, clock=self.clock
        )

        # Continuous compliance observability (PR 8): a tamper-evident
        # evidence trail, a residue watchlist fed by erasures, and the
        # article-indexed audit engine.  The monitors daemon is built on
        # demand by :meth:`start_monitors`.
        from ..obs.audit import AuditEngine  # deferred: audit reads core
        from ..obs.monitors import (  # deferred: monitors read storage
            MonitorDaemon,
            ResidueWatchlist,
            needle_digest,
        )

        self.evidence = EvidenceTrail()
        self.residue_watchlist = ResidueWatchlist()
        self.audit_engine = AuditEngine(self)
        self.monitors: Optional[MonitorDaemon] = None
        # Proactive retention enforcement (PR 9): built on demand by
        # start_monitors(expiry_daemon=True).
        self.expiry_daemon = None

        def _on_erase(
            subject_id: str,
            needles: Sequence[bytes],
            erased: Sequence[str],
            residue: Mapping[str, int],
        ) -> None:
            # Erased plaintext becomes the scrubber's watchlist; the
            # trail records digests only — the whole point of erasure
            # is that the bytes themselves stop existing anywhere.
            self.residue_watchlist.register(subject_id, needles)
            self.evidence.append(
                kind="erasure",
                source="builtins.delete",
                payload={
                    "subject_id": subject_id,
                    "erased_records": len(erased),
                    "residue_device_blocks": residue["device_blocks"],
                    "residue_journal_records": residue["journal_records"],
                    "needle_digests": [needle_digest(n) for n in needles],
                },
                at=self.clock.now(),
            )

        self.ps.builtins.erase_observers.append(_on_erase)

        # The purpose-kernel machine (optional for lightweight uses).
        # Shard 0's driver keeps the historical "pd-nvme" name; extra
        # shards get "pd-nvme1", "pd-nvme2", ... driver kernels.  The
        # default MachineConfig fits two drivers, so a multi-shard
        # machine (when the caller didn't size one) is scaled to hold
        # one driver kernel per device.
        self.machine: Optional[Machine] = None
        if with_machine:
            drivers = {"pd-nvme": _device_driver(self.pd_devices[0])}
            for index, device in enumerate(self.pd_devices[1:], start=1):
                drivers[f"pd-nvme{index}"] = _device_driver(device)
            drivers["npd-nvme"] = _device_driver(self.npd_fs.device)
            if machine_config is None and len(drivers) > 2:
                defaults = MachineConfig()
                machine_config = MachineConfig(
                    total_cores=max(
                        defaults.total_cores,
                        defaults.rgpdos_cores
                        + defaults.gp_cores
                        + len(drivers) * defaults.driver_cores_each,
                    ),
                    total_frames=max(
                        defaults.total_frames,
                        defaults.rgpdos_frames
                        + defaults.gp_frames
                        + len(drivers) * defaults.driver_frames_each,
                    ),
                )
            self.machine = Machine(
                drivers=drivers,
                config=machine_config,
                clock=self.clock,
                telemetry=self.telemetry,
            ).boot()
            self.machine.rgpdos.mount("dbfs", self.dbfs)
            self.machine.rgpdos.mount("ps", self.ps)
            self.machine.rgpdos.mount("log", self.log)

        self._installed_types: Dict[str, PDType] = {}
        self._installed_purposes: Dict[str, Purpose] = {}

        # The concurrent request engine (PR 6).  ``workers=0`` (the
        # default) keeps the serial seed path: no threads, no engine.
        from ..engine import RequestEngine  # deferred: engine sits above core

        self.engine: Optional[RequestEngine] = None
        if workers > 0:
            self.start_engine(workers=workers)

        # Pull-based stats: the registry calls back at snapshot time so
        # idle systems pay nothing for bookkeeping between exports.
        self.telemetry.registry.register_collector(self._publish_stats_gauges)

    # ------------------------------------------------------------------
    # Declarations
    # ------------------------------------------------------------------

    def install(self, source: str) -> Tuple[Dict[str, PDType], Dict[str, Purpose]]:
        """Install a DSL source: create its types in DBFS, declare its
        purposes in the PS.  Returns what was installed."""
        from ..dsl.loader import load_source  # deferred: dsl sits above core

        types, purposes = load_source(source)
        for pd_type in types.values():
            self.install_type(pd_type)
        for purpose in purposes.values():
            self.install_purpose(purpose)
        return types, purposes

    def install_type(self, pd_type: PDType) -> None:
        """Install one PD type built directly in Python."""
        self.dbfs.create_type(pd_type, self.ps.builtins.credential)
        self._installed_types[pd_type.name] = pd_type

    def install_purpose(self, purpose: Purpose) -> None:
        self.ps.declare_purpose(purpose)
        self._installed_purposes[purpose.name] = purpose

    def evolve_type(self, new_type: PDType) -> PDType:
        """Compatibly evolve an installed type (see
        :meth:`DatabaseFS.evolve_type` for the compatibility rules)."""
        evolved = self.dbfs.evolve_type(new_type, self.ps.builtins.credential)
        self._installed_types[new_type.name] = evolved
        return evolved

    def types(self) -> Dict[str, PDType]:
        return dict(self._installed_types)

    def purposes(self) -> Dict[str, Purpose]:
        return dict(self._installed_purposes)

    # ------------------------------------------------------------------
    # The PS interface (the paper's only entry point)
    # ------------------------------------------------------------------

    def register(
        self,
        fn: Callable,
        purpose: Optional[str] = None,
        name: Optional[str] = None,
        aggregate: bool = False,
        sysadmin_approved: bool = False,
    ) -> Processing:
        """``ps_register`` — see :meth:`ProcessingStore.ps_register`."""
        return self.ps.ps_register(
            fn,
            purpose=purpose,
            name=name,
            aggregate=aggregate,
            sysadmin_approved=sysadmin_approved,
        )

    def invoke(
        self,
        processing_name: str,
        target: Union[PDRef, str, Sequence[PDRef], None] = None,
        **kwargs: object,
    ) -> Union[InvocationResult, PDRef, EraseReport, None]:
        """``ps_invoke`` — see :meth:`ProcessingStore.ps_invoke`."""
        return self.ps.ps_invoke(processing_name, target=target, **kwargs)

    def collect(
        self,
        type_name: str,
        record: Mapping[str, object],
        subject_id: str,
        method: str,
        consents: Optional[Mapping[str, str]] = None,
    ) -> PDRef:
        """Collect one PD record (built-in acquisition)."""
        return self.ps.builtins.acquisition(
            type_name=type_name,
            record=record,
            subject_id=subject_id,
            method=method,
            consents=consents,
        )

    # ------------------------------------------------------------------
    # The concurrent request engine
    # ------------------------------------------------------------------

    def start_engine(
        self,
        workers: int = 4,
        max_in_flight: Optional[int] = None,
    ) -> "RequestEngine":
        """Start a request engine and wire it into the stack.

        Installs the engine's scatter pool as the sharded store's
        fan-out runner (type-level queries hit all shards
        concurrently) and as the rights layer's bulk runner.
        Idempotent while an engine is running.
        """
        from ..engine import RequestEngine

        if self.engine is not None and self.engine.running:
            return self.engine
        self.engine = RequestEngine(
            workers=workers,
            max_in_flight=max_in_flight,
            telemetry=self.telemetry,
        ).start()
        if isinstance(self.dbfs, ShardedDBFS):
            self.dbfs.set_fanout(self.engine.scatter)
        self.rights.set_fanout(self.engine.scatter)
        return self.engine

    def stop_engine(self) -> None:
        """Drain and stop the engine; restores the serial fan-out."""
        if self.engine is None:
            return
        self.engine.stop()
        if isinstance(self.dbfs, ShardedDBFS):
            self.dbfs.set_fanout(None)
        self.rights.set_fanout(None)
        self.engine = None

    def invoke_async(
        self,
        processing_name: str,
        target: Union[PDRef, str, Sequence[PDRef], None] = None,
        **kwargs: object,
    ):
        """``ps_invoke`` on the engine; returns a Future.

        The fairness lane is the processing's declared purpose, so one
        purpose's burst queues behind its own lane, not everyone's.
        Requires a running engine (``workers=N`` or ``start_engine``).
        """
        if self.engine is None or not self.engine.running:
            raise errors.GDPRError(
                "invoke_async needs a running request engine; construct "
                "RgpdOS(workers=N) or call start_engine() first"
            )
        processing = self.ps._processings.get(processing_name)
        lane = processing.purpose.name if processing is not None else "default"

        # Bind the invocation in a closure instead of spreading kwargs
        # through submit(): submit consumes a ``purpose`` kwarg as the
        # fairness lane, and a caller kwarg literally named "purpose"
        # (plausible for a GDPR processing) must reach ps_invoke, not
        # collide with the lane and raise TypeError.
        def _invoke() -> object:
            return self.ps.ps_invoke(processing_name, target=target, **kwargs)

        return self.engine.submit(_invoke, purpose=lane)

    # ------------------------------------------------------------------
    # Compliance & time
    # ------------------------------------------------------------------

    def audit(self) -> ComplianceReport:
        return self.auditor.audit()

    def audit_report(self):
        """Run the article-indexed audit engine (``repro.obs.audit``).

        Unlike :meth:`audit` (the seed's rule-based
        :class:`ComplianceReport`, which this folds in), the returned
        :class:`~repro.obs.audit.AuditReport` indexes every verdict by
        GDPR article and attaches resolvable evidence references, and
        the run itself is sealed into the evidence trail.
        """
        return self.audit_engine.run()

    def start_monitors(
        self,
        interval_seconds: float = 0.05,
        sample_blocks: int = 64,
        background: bool = False,
        expiry_daemon: bool = False,
        expiry_wave_size: int = 64,
    ):
        """Build (and optionally start) the always-on compliance
        monitors: residue scrubber, TTL watcher, Art. 33 deadline
        watcher, journal-bound watcher — and, with
        ``expiry_daemon=True``, the proactive retention enforcer that
        drains the timer wheel into bounded erasure waves.

        With ``background=False`` (the default) the daemon is returned
        ready for deterministic ticking (``run_for_ticks``), which is
        what the tests, the CLI's ``--continuous`` mode and the
        benchmarks drive.  ``background=True`` starts the wall-clock
        daemon thread, submitting ticks through the request engine's
        ``monitors`` lane when one is running.
        """
        from ..obs.monitors import (
            BreachDeadlineWatcherMonitor,
            ExpiryDaemon,
            JournalBoundWatcherMonitor,
            MonitorDaemon,
            ResidueScrubberMonitor,
            TTLWatcherMonitor,
        )

        if self.monitors is not None:
            if background:
                self.monitors.start()
            return self.monitors
        monitors: List[object] = [
            ResidueScrubberMonitor(
                dbfs=self.dbfs,
                watchlist=self.residue_watchlist,
                telemetry=self.telemetry,
                sample_blocks=sample_blocks,
            ),
            TTLWatcherMonitor(
                dbfs=self.dbfs, clock=self.clock,
                telemetry=self.telemetry,
            ),
            BreachDeadlineWatcherMonitor(
                breach_monitor=self.breach_monitor,
                clock=self.clock,
                telemetry=self.telemetry,
            ),
            JournalBoundWatcherMonitor(
                dbfs=self.dbfs, telemetry=self.telemetry,
            ),
        ]
        if expiry_daemon:
            self.expiry_daemon = ExpiryDaemon(
                dbfs=self.dbfs,
                clock=self.clock,
                builtins=self.ps.builtins,
                trail=self.evidence,
                telemetry=self.telemetry,
                engine=self.engine,
                wave_size=expiry_wave_size,
            )
            monitors.append(self.expiry_daemon)
        self.monitors = MonitorDaemon(
            monitors=monitors,
            clock=self.clock,
            trail=self.evidence,
            telemetry=self.telemetry,
            interval_seconds=interval_seconds,
            engine=self.engine,
        )
        if background:
            self.monitors.start()
        return self.monitors

    def stop_monitors(self) -> None:
        """Stop the monitor daemon thread (if running) and drop it."""
        if self.monitors is None:
            return
        self.monitors.stop()
        self.monitors = None
        self.expiry_daemon = None

    def advance_time(self, seconds: float) -> float:
        """Move simulated time forward (TTL expiry etc.)."""
        return self.clock.advance(seconds)

    def _stat_gauge_values(self) -> Dict[str, int]:
        """Every numeric ``stats()`` field as a flat gauge mapping."""
        dbfs_stats = self.dbfs.stats
        shards = self.dbfs.shards
        return {
            "rgpdos.dbfs.records": len(self.dbfs.all_uids()),
            "rgpdos.dbfs.subjects": len(self.dbfs.list_subjects()),
            "rgpdos.dbfs.stores": dbfs_stats.stores,
            "rgpdos.dbfs.deletes": dbfs_stats.deletes,
            "rgpdos.dbfs.denied_accesses": dbfs_stats.denied_accesses,
            "rgpdos.dbfs.shards": self.dbfs.shard_count,
            "rgpdos.index.page_reads": dbfs_stats.index_page_reads,
            "rgpdos.index.bloom_hits": dbfs_stats.index_bloom_hits,
            "rgpdos.index.bloom_skips": dbfs_stats.index_bloom_skips,
            "rgpdos.pd_device.reads": sum(d.stats.reads for d in self.pd_devices),
            "rgpdos.pd_device.writes": sum(d.stats.writes for d in self.pd_devices),
            "rgpdos.pd_device.used_blocks": sum(
                d.used_blocks for d in self.pd_devices
            ),
            "rgpdos.journal.commits": sum(s.journal.stats.commits for s in shards),
            "rgpdos.journal.flushes": sum(s.journal.stats.flushes for s in shards),
            "rgpdos.journal.group_commits": sum(
                s.journal.stats.group_commits for s in shards
            ),
            "rgpdos.journal.batched_ops": sum(
                s.journal.stats.batched_ops for s in shards
            ),
            "rgpdos.journal.checkpoints": sum(
                s.journal.stats.checkpoints for s in shards
            ),
            "rgpdos.journal.checkpointed_records": sum(
                s.journal.stats.checkpointed_records for s in shards
            ),
            "rgpdos.journal.live_records": sum(len(s.journal) for s in shards),
            "rgpdos.journal.blocks_in_use": sum(
                s.journal.blocks_in_use for s in shards
            ),
        }

    def _publish_stats_gauges(self, registry: MetricsRegistry) -> None:
        """Collector hook: mirror the operational snapshot into gauges
        so Prometheus scrapes see the same numbers ``stats()`` reports."""
        for name, value in self._stat_gauge_values().items():
            registry.gauge(name).set(value)

    def stats(self) -> Dict[str, object]:
        """Operational snapshot across the stack.

        The numeric fields are served from the telemetry registry (the
        same gauges the Prometheus exporter scrapes); with telemetry
        disabled they are computed directly.  Either way the shape is
        identical, including the ``journal`` block folding PR 2's
        group-commit / checkpoint machinery into the snapshot.
        """
        if self.telemetry.enabled:
            registry = self.telemetry.registry
            registry.collect()
            values = {
                name: registry.gauge_value(name)
                for name in self._stat_gauge_values()
            }
        else:
            values = self._stat_gauge_values()
        snapshot: Dict[str, object] = {
            "clock": self.clock.now(),
            "dbfs": {
                "types": self.dbfs.list_types(),
                "records": values["rgpdos.dbfs.records"],
                "subjects": values["rgpdos.dbfs.subjects"],
                "stores": values["rgpdos.dbfs.stores"],
                "deletes": values["rgpdos.dbfs.deletes"],
                "denied_accesses": values["rgpdos.dbfs.denied_accesses"],
                "shards": values["rgpdos.dbfs.shards"],
            },
            "indexes": {
                "page_reads": values["rgpdos.index.page_reads"],
                "bloom_hits": values["rgpdos.index.bloom_hits"],
                "bloom_skips": values["rgpdos.index.bloom_skips"],
            },
            "pd_device": {
                "reads": values["rgpdos.pd_device.reads"],
                "writes": values["rgpdos.pd_device.writes"],
                "used_blocks": values["rgpdos.pd_device.used_blocks"],
            },
            "journal": {
                "commits": values["rgpdos.journal.commits"],
                "flushes": values["rgpdos.journal.flushes"],
                "group_commits": values["rgpdos.journal.group_commits"],
                "batched_ops": values["rgpdos.journal.batched_ops"],
                "checkpoints": values["rgpdos.journal.checkpoints"],
                "checkpointed_records": values["rgpdos.journal.checkpointed_records"],
                "live_records": values["rgpdos.journal.live_records"],
                "blocks_in_use": values["rgpdos.journal.blocks_in_use"],
            },
            "log": self.log.activity_report(),
        }
        if self.machine is not None:
            snapshot["machine"] = self.machine.resource_report()
        if self.engine is not None:
            snapshot["engine"] = self.engine.as_dict()
            snapshot["engine"]["mvcc"] = self.dbfs.mvcc_stats()
        snapshot["audit"] = {
            "evidence_entries": len(self.evidence),
            "evidence_head": self.evidence.head,
            "watch_needles": len(self.residue_watchlist),
            "last_report": (
                self.audit_engine.last_report.summary()
                if self.audit_engine.last_report is not None
                else None
            ),
        }
        if self.monitors is not None:
            snapshot["monitors"] = self.monitors.as_dict()
        return snapshot

    def cache_stats(self) -> Dict[str, object]:
        """Every fast-path cache in the stack, one report.

        Aggregates the block-device page cache, the DBFS record /
        listing / membrane caches, journal group-commit counters, and
        the PS's membrane-decision cache.
        """
        report: Dict[str, object] = dict(self.dbfs.cache_stats())
        report["decision_cache"] = self.ps.decision_cache.as_dict()
        return report

    def shard_stats(self) -> Sequence[Dict[str, object]]:
        """Per-shard occupancy and journal summary (one entry when
        ``shards=1``).  See :meth:`ShardedDBFS.shard_stats`."""
        return self.dbfs.shard_stats()
