"""Semantic purpose–implementation matching (§ 3(4)).

Paper: *"checking if a processing's implementation matches its purpose
is a challenging problem which is not yet addressed in rgpdOS.  We
plan to investigate approaches borrowed from several research domains
such as Semantic and AI."*

``repro.core.purposes.PurposeMatcher`` covers the *mechanical* half of
that plan (field-access and leak-construct analysis).  This module is
the *semantic* half: does the implementation's vocabulary — its name,
identifiers, docstring — actually talk about what the purpose
declaration says it is for?

The approach is deliberately classic NLP-lite, fully offline:

1. tokenise both sides (splitting ``snake_case`` and ``camelCase``,
   light plural/verb stemming, stop-word removal);
2. expand both token sets through a small GDPR-domain concept
   ontology (``compute ≈ calculate ≈ derive``, ``age ≈ birthdate ≈
   year`` …);
3. score the overlap of the *expanded* sets (Jaccard on concepts),
   so "Compute the age of the input user" matches ``compute_age``
   even with zero shared surface tokens.

A low score is a *signal*, not a verdict — exactly how the PS treats
the mechanical matcher's findings: it raises the paper's sysadmin
alert rather than rejecting outright.
"""

from __future__ import annotations

import ast as python_ast
import inspect
import re
import textwrap
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterable, List, Set

from .purposes import Purpose

#: Words carrying no semantic weight in either purposes or code.
_STOP_WORDS = frozenset(
    """a an and are as at be by for from in into is it its no not of on or
    per that the this to via with input output return value values data
    get set self arg args kwargs result results item items entry entries
    def if else none true false""".split()
)

#: The domain ontology: concept → surface forms that evoke it.  Small
#: on purpose: the point is the mechanism, extensible per deployment
#: via ``extra_concepts``.
_DEFAULT_CONCEPTS: Dict[str, FrozenSet[str]] = {
    "compute": frozenset(
        {"compute", "calculate", "calc", "derive", "determine", "evaluate"}
    ),
    "aggregate": frozenset(
        {"aggregate", "average", "mean", "sum", "count", "histogram",
         "statistic", "stats", "analytic", "analytics", "total"}
    ),
    "age": frozenset(
        {"age", "birthdate", "birth", "year", "old", "decade", "dob"}
    ),
    "identity": frozenset(
        {"name", "identity", "profile", "user", "person", "subject",
         "account", "customer"}
    ),
    "contact": frozenset(
        {"email", "mail", "address", "phone", "contact", "newsletter",
         "notify", "notification"}
    ),
    "marketing": frozenset(
        {"marketing", "promo", "promotion", "advertise", "ad", "ads",
         "campaign", "offer", "deal"}
    ),
    "payment": frozenset(
        {"payment", "pay", "billing", "invoice", "charge", "price",
         "amount", "order", "purchase", "ship", "shipping", "fulfil",
         "fulfilment", "fulfillment"}
    ),
    "health": frozenset(
        {"health", "medical", "diagnosis", "diagnose", "patient",
         "clinical", "imaging", "scan", "modality"}
    ),
    "erase": frozenset(
        {"erase", "delete", "forget", "remove", "purge", "destroy"}
    ),
    "export": frozenset(
        {"export", "access", "portability", "download", "report", "dump"}
    ),
    "location": frozenset(
        {"location", "city", "geo", "region", "country", "place"}
    ),
    "security": frozenset(
        {"password", "pwd", "credential", "secret", "token", "auth",
         "authentication", "login"}
    ),
}

_CAMEL_BOUNDARY = re.compile(r"(?<=[a-z0-9])(?=[A-Z])")
_NON_WORD = re.compile(r"[^a-zA-Z]+")


def tokenize(text: str) -> Set[str]:
    """Split text and identifiers into lowercase stemmed tokens.

    >>> sorted(tokenize("computeAverageAge of the users"))
    ['average', 'age', 'compute', 'user'] != ...  # doctest: +SKIP
    """
    expanded = _CAMEL_BOUNDARY.sub(" ", text)
    raw = _NON_WORD.split(expanded)
    tokens: Set[str] = set()
    for word in raw:
        word = word.lower()
        if not word or word in _STOP_WORDS or len(word) < 2:
            continue
        tokens.add(_stem(word))
    return tokens


def _stem(word: str) -> str:
    """A tiny suffix stripper: plural/gerund/past forms collapse."""
    for suffix in ("ings", "ing", "ers", "ies", "es", "ed", "er", "s"):
        if word.endswith(suffix) and len(word) - len(suffix) >= 3:
            stripped = word[: -len(suffix)]
            if suffix == "ies":
                stripped += "y"
            return stripped
    return word


def _implementation_tokens(implementation: Callable) -> Set[str]:
    """Tokens from the function's name, docstring and identifiers."""
    tokens = tokenize(getattr(implementation, "__name__", ""))
    doc = inspect.getdoc(implementation) or ""
    tokens |= tokenize(doc)
    try:
        source = textwrap.dedent(inspect.getsource(implementation))
        tree = python_ast.parse(source)
    except (OSError, TypeError, SyntaxError):
        return tokens
    for node in python_ast.walk(tree):
        if isinstance(node, python_ast.Name):
            tokens |= tokenize(node.id)
        elif isinstance(node, python_ast.Attribute):
            tokens |= tokenize(node.attr)
        elif isinstance(node, python_ast.arg):
            tokens |= tokenize(node.arg)
        elif isinstance(node, python_ast.Constant) and isinstance(
            node.value, str
        ):
            tokens |= tokenize(node.value)
    return tokens


@dataclass
class SemanticReport:
    """Outcome of one semantic similarity check."""

    purpose: str
    score: float
    shared_concepts: FrozenSet[str]
    purpose_concepts: FrozenSet[str]
    implementation_concepts: FrozenSet[str]
    plausible: bool
    threshold: float

    def summary(self) -> str:
        verdict = "plausible" if self.plausible else "SUSPICIOUS"
        return (
            f"purpose {self.purpose!r}: semantic similarity "
            f"{self.score:.2f} ({verdict}; shared concepts: "
            f"{sorted(self.shared_concepts) or 'none'})"
        )


class SemanticMatcher:
    """Concept-overlap similarity between purposes and implementations."""

    def __init__(
        self,
        extra_concepts: Dict[str, Iterable[str]] = None,
        threshold: float = 0.2,
    ) -> None:
        self._concepts: Dict[str, FrozenSet[str]] = dict(_DEFAULT_CONCEPTS)
        for concept, forms in (extra_concepts or {}).items():
            existing = self._concepts.get(concept, frozenset())
            self._concepts[concept] = existing | frozenset(
                _stem(form.lower()) for form in forms
            )
        self.threshold = threshold

    def concepts_of(self, tokens: Set[str]) -> FrozenSet[str]:
        """Map surface tokens to ontology concepts (plus themselves —
        unknown vocabulary still matches by exact overlap)."""
        found: Set[str] = set()
        for concept, forms in self._concepts.items():
            if tokens & forms:
                found.add(concept)
        # Keep rare surface tokens so domain-specific words can match
        # exactly even without an ontology entry.
        found |= {t for t in tokens if not self._known(t)}
        return frozenset(found)

    def _known(self, token: str) -> bool:
        return any(token in forms for forms in self._concepts.values())

    def check(
        self, purpose: Purpose, implementation: Callable
    ) -> SemanticReport:
        purpose_text = " ".join(
            [purpose.name, purpose.description]
            + [type_name for type_name, _ in purpose.uses]
            + [view or "" for _, view in purpose.uses]
            + list(purpose.produces)
        )
        purpose_concepts = self.concepts_of(tokenize(purpose_text))
        implementation_concepts = self.concepts_of(
            _implementation_tokens(implementation)
        )
        shared = purpose_concepts & implementation_concepts
        union = purpose_concepts | implementation_concepts
        score = len(shared) / len(union) if union else 0.0
        return SemanticReport(
            purpose=purpose.name,
            score=score,
            shared_concepts=frozenset(shared),
            purpose_concepts=frozenset(purpose_concepts),
            implementation_concepts=frozenset(implementation_concepts),
            plausible=score >= self.threshold,
            threshold=self.threshold,
        )
