"""The Data Execution Domain (DED).

Paper § 2: *"Any F_pd function is always executed as an instance of
the DED, an environment that ensures GDPR compliance on manipulated
PD."*  The DED is instantiated per invocation by the Processing Store
and runs the paper's eight-stage pipeline, reproduced stage for stage:

====================  =====================================================
``ded_type2req``      translate the input (PD ref or PD type) into DBFS
                      requests
``ded_load_membrane`` first DBFS request: fetch membranes only
``ded_filter``        keep only PD whose membrane approves the purpose
                      (and drop TTL-expired PD)
``ded_load_data``     second DBFS request: fetch data for survivors,
                      projected to the consented fields
``ded_execute``       run the processing on guarded views, under the
                      F_pd seccomp profile
``ded_build_membrane`` wrap any produced PD in a fresh membrane
``ded_store``         persist produced PD in DBFS
``ded_return``        return non-PD values and references — never raw PD
====================  =====================================================

Each stage is charged both simulated time (a deterministic cost model,
so the DED-S stage-breakdown benchmark is stable) and real wall time.
Everything the invocation did is written to the processing log.

Idea 2 (data-centric execution) is realised here: the function does
not pull PD into the application's address space; the DED brings the
function to each PD's view, one consented projection at a time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from .. import errors
from ..kernel.pim import DEDPlacer, PlacementDecision
from ..obs import NULL_TELEMETRY, Telemetry
from ..kernel.seccomp import SeccompFilter, pd_function_profile
from ..storage.cache import MISSING, LRUCache
from ..storage.dbfs import DatabaseFS
from ..storage.query import DataQuery, MembraneQuery, Predicate, StoreRequest
from .active_data import AccessCredential, PDRef, PDView, contains_raw_pd
from .clock import Clock
from .datatypes import ORIGIN_DERIVED, PDType
from .membrane import Membrane, membrane_for_type
from .processing_log import (
    ACCESS_DENIED,
    ACCESS_PRODUCED,
    ACCESS_READ,
    OUTCOME_COMPLETED,
    OUTCOME_DENIED,
    OUTCOME_ERROR,
    PDAccess,
    ProcessingLog,
)
from .purposes import Purpose

STAGES = (
    "ded_type2req",
    "ded_load_membrane",
    "ded_filter",
    "ded_load_data",
    "ded_execute",
    "ded_build_membrane",
    "ded_store",
    "ded_return",
)

# Pre-built telemetry op names, one per stage (avoids a per-call
# f-string on the invoke hot path).
_STAGE_OPS = {stage: f"ded.{stage}" for stage in STAGES}


@dataclass
class DEDCostModel:
    """Simulated per-item stage costs (seconds).

    Relative magnitudes follow the structure of the pipeline: membrane
    loads and data loads are IO-bound (dominated by the device), the
    filter is a pure in-memory check, execution cost belongs to the
    user function and is charged per record.
    """

    type2req: float = 0.5e-6
    membrane_load_per_pd: float = 4e-6
    filter_per_pd: float = 0.8e-6
    data_load_per_pd: float = 8e-6
    execute_per_pd: float = 2e-6
    build_membrane_per_pd: float = 3e-6
    store_per_pd: float = 10e-6
    return_fixed: float = 0.5e-6


@dataclass
class StageTrace:
    """Per-stage accounting for one invocation."""

    simulated_seconds: Dict[str, float] = field(
        default_factory=lambda: {stage: 0.0 for stage in STAGES}
    )
    wall_seconds: Dict[str, float] = field(
        default_factory=lambda: {stage: 0.0 for stage in STAGES}
    )
    counts: Dict[str, int] = field(default_factory=dict)
    #: Advisory § 3(3) placement decision for ded_execute (host / PIM /
    #: storage), filled when the DED has a placer configured.
    placement: Optional[PlacementDecision] = None

    def charge(self, stage: str, simulated: float, wall: float) -> None:
        self.simulated_seconds[stage] += simulated
        self.wall_seconds[stage] += wall

    def total_simulated(self) -> float:
        return sum(self.simulated_seconds.values())


@dataclass
class InvocationResult:
    """What ``ps_invoke`` hands back to the application.

    ``values`` maps input PD uid → the processing's non-PD output for
    that record; ``produced`` lists references to PD the processing
    generated (never the PD itself); ``denied`` counts PD filtered out
    by consent; ``expired`` counts PD dropped because their TTL had
    elapsed; ``errors`` maps uid → error message for records whose
    execution failed.
    """

    purpose: str
    processing: str
    values: Dict[str, object] = field(default_factory=dict)
    produced: List[PDRef] = field(default_factory=list)
    denied: int = 0
    expired: int = 0
    executed: int = 0
    errors: Dict[str, str] = field(default_factory=dict)
    trace: StageTrace = field(default_factory=StageTrace)

    @property
    def processed(self) -> int:
        """Records the function actually ran on (after the filter)."""
        return self.executed


ProcessingFn = Callable[..., object]


def _where_tuple(
    where: Union[Predicate, Sequence[Predicate], None],
) -> Tuple[Predicate, ...]:
    """Normalise a ``where`` argument to a tuple of predicates."""
    if where is None:
        return ()
    if isinstance(where, Predicate):
        return (where,)
    return tuple(where)


class MembraneDecisionCache:
    """Consent decisions memoised across invocations.

    The Processing Store owns one of these and hands it to every DED
    it creates, so repeated invocations for the same purpose skip
    re-evaluating each membrane's consent scope.

    Keys are ``(uid, purpose name, membrane version, schema version)``.
    The membrane's version is bumped monotonically on *every*
    consent/scope mutation (grant, revoke, restrict, unrestrict,
    erasure — see :class:`repro.core.membrane.Membrane`), so a cached
    decision can never outlive a withdrawal: the next invocation sees
    a new version, misses, and re-evaluates.  The schema version covers
    purpose-view/field changes via ``evolve_type``.  Purposes are
    immutable once declared, so the name suffices.

    Values are the *effective* field set the decision grants — a
    non-empty frozenset — or ``None`` for a denial (denials are worth
    caching too: a subject who never consented is re-asked on every
    analytics sweep).  TTL expiry is deliberately **not** cached — it
    depends on the clock, and a decision that was valid a second ago
    may be expired now; :meth:`DataExecutionDomain._filter` checks it
    before consulting this cache.
    """

    def __init__(self, capacity: int = 8192) -> None:
        self._lru = LRUCache(capacity, name="decision-cache")

    @property
    def enabled(self) -> bool:
        return self._lru.enabled

    def lookup(
        self, uid: str, purpose_name: str, membrane_version: int, schema_version: int
    ) -> object:
        """The cached decision, or :data:`MISSING` on a miss."""
        return self._lru.get((uid, purpose_name, membrane_version, schema_version))

    def store(
        self,
        uid: str,
        purpose_name: str,
        membrane_version: int,
        schema_version: int,
        decision: Optional[frozenset],
    ) -> None:
        self._lru.put(
            (uid, purpose_name, membrane_version, schema_version), decision
        )

    def clear(self) -> int:
        return self._lru.clear()

    def __len__(self) -> int:
        return len(self._lru)

    def as_dict(self) -> Dict[str, object]:
        return self._lru.as_dict()


class DataExecutionDomain:
    """One DED instance — created per ``ps_invoke``, then discarded."""

    def __init__(
        self,
        dbfs: DatabaseFS,
        clock: Clock,
        log: ProcessingLog,
        cost_model: Optional[DEDCostModel] = None,
        instance: int = 0,
        placer: Optional[DEDPlacer] = None,
        decision_cache: Optional[MembraneDecisionCache] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.dbfs = dbfs
        self.clock = clock
        self.log = log
        self.cost = cost_model or DEDCostModel()
        self.placer = placer
        self.decisions = decision_cache
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.credential = AccessCredential(
            holder=f"ded-{instance}", is_ded=True
        )
        self.seccomp: SeccompFilter = pd_function_profile(
            name=f"ded-{instance}-fpd"
        )

    # ------------------------------------------------------------------
    # Pipeline
    # ------------------------------------------------------------------

    def run(
        self,
        purpose: Purpose,
        processing_name: str,
        fn: ProcessingFn,
        target: Union[PDRef, str, Sequence[PDRef]],
        aggregate: bool = False,
        subject_id: Optional[str] = None,
        enclave: Optional[object] = None,
        where: Union["Predicate", Sequence["Predicate"], None] = None,
    ) -> InvocationResult:
        """Execute the eight-stage pipeline for one invocation.

        ``target`` is what the paper says an F_pd function takes as
        input: "the identifier of a PD or a PD type".  A sequence of
        refs is accepted as a convenience for batch invocations.
        ``where`` accepts one :class:`Predicate` or a sequence of them
        (a conjunction), pushed down to the storage layer before any
        membrane is evaluated.
        With ``aggregate=True`` the function is called once with the
        list of all consented views instead of once per view.  When an
        ``enclave`` is supplied (a :class:`repro.kernel.tee.Enclave`
        provisioned and attested by the PS), ``ded_execute`` runs the
        function through it, so a compromised host only ever sees
        enclave ciphertext.
        """
        with self.telemetry.op(
            "ded.run", purpose=purpose.name, processing=processing_name,
            subject_id=subject_id,
        ) as span:
            result = self._run_impl(
                purpose, processing_name, fn, target, aggregate,
                subject_id, enclave, where,
            )
            span.set_attrs(
                consented=result.trace.counts.get("consented", 0),
                processed=result.processed,
            )
            return result

    def _run_impl(
        self,
        purpose: Purpose,
        processing_name: str,
        fn: ProcessingFn,
        target: Union[PDRef, str, Sequence[PDRef]],
        aggregate: bool,
        subject_id: Optional[str],
        enclave: Optional[object],
        where: Union["Predicate", Sequence["Predicate"], None],
    ) -> InvocationResult:
        result = InvocationResult(purpose=purpose.name, processing=processing_name)
        trace = result.trace
        accesses: List[PDAccess] = []

        try:
            # -- ded_type2req ------------------------------------------------
            query, pd_type = self._timed(
                trace, "ded_type2req", self.cost.type2req,
                lambda: self._type2req(purpose, target, subject_id, where),
            )
            trace.counts["requests"] = 1

            # -- ded_load_membrane -------------------------------------------
            pairs = self._timed(
                trace,
                "ded_load_membrane",
                None,
                lambda: self.dbfs.query_membranes(query, self.credential),
            )
            trace.charge(
                "ded_load_membrane",
                self.cost.membrane_load_per_pd * len(pairs),
                0.0,
            )
            trace.counts["membranes_loaded"] = len(pairs)

            # -- ded_filter -----------------------------------------------------
            survivors = self._timed(
                trace,
                "ded_filter",
                self.cost.filter_per_pd * len(pairs),
                lambda: self._filter(purpose, pd_type, pairs, result, accesses),
            )
            trace.counts["consented"] = len(survivors)
            if self.placer is not None and survivors:
                trace.placement = self._place(survivors)

            if not survivors:
                self._log(result, accesses, OUTCOME_DENIED,
                          detail="no PD consented to this purpose")
                return result

            # -- ded_load_data -----------------------------------------------------
            data_query = DataQuery(
                uids=tuple(ref.uid for ref, _, _ in survivors),
                fields={
                    ref.uid: allowed for ref, _, allowed in survivors
                },
                predicates=_where_tuple(where),
            )
            records = self._timed(
                trace,
                "ded_load_data",
                self.cost.data_load_per_pd * len(survivors),
                lambda: self.dbfs.fetch_records(data_query, self.credential),
            )
            trace.counts["records_loaded"] = len(records)

            # -- ded_execute -----------------------------------------------------
            views: List[PDView] = []
            for ref, _, allowed in survivors:
                record = records.get(ref.uid)
                if record is None:
                    continue
                views.append(
                    PDView(
                        pd_ref=ref,
                        purpose=purpose.name,
                        allowed_fields=allowed,
                        values=record,
                    )
                )
                accesses.append(
                    PDAccess(
                        uid=ref.uid,
                        subject_id=ref.subject_id,
                        mode=ACCESS_READ,
                        fields=tuple(sorted(record)),
                    )
                )
            outputs = self._timed(
                trace,
                "ded_execute",
                self.cost.execute_per_pd * len(views),
                lambda: self._execute(fn, views, aggregate, result, enclave),
            )
            trace.counts["executed"] = len(views)

            # -- ded_build_membrane / ded_store ------------------------------------
            produced_payloads = self._collect_produced(purpose, outputs)
            if produced_payloads:
                stored = self._timed(
                    trace,
                    "ded_store",
                    self.cost.store_per_pd * len(produced_payloads),
                    lambda: self._build_and_store(
                        purpose, produced_payloads, trace
                    ),
                )
                result.produced.extend(stored)
                for ref in stored:
                    accesses.append(
                        PDAccess(
                            uid=ref.uid,
                            subject_id=ref.subject_id,
                            mode=ACCESS_PRODUCED,
                        )
                    )

            # -- ded_return -----------------------------------------------------
            self._timed(
                trace,
                "ded_return",
                self.cost.return_fixed,
                lambda: self._sanitize_return(outputs, result),
            )
            self._log(result, accesses, OUTCOME_COMPLETED)
            return result
        except errors.RgpdOSError as exc:
            self._log(result, accesses, OUTCOME_ERROR, detail=str(exc))
            raise

    # ------------------------------------------------------------------
    # Stage implementations
    # ------------------------------------------------------------------

    def _place(self, survivors) -> PlacementDecision:
        """Consult the § 3(3) placer with the workload shape the DED
        now knows exactly: how many records, how wide."""
        sample = survivors[:5]
        sizes = [
            self.dbfs.record_size(ref.uid) for ref, _, _ in sample
        ]
        bytes_per_record = max(1, sum(sizes) // max(1, len(sizes)))
        return self.placer.place(
            records=len(survivors), bytes_per_record=bytes_per_record
        )

    def _type2req(
        self,
        purpose: Purpose,
        target: Union[PDRef, str, Sequence[PDRef]],
        subject_id: Optional[str],
        where: Union[Predicate, Sequence[Predicate], None] = None,
    ) -> Tuple[MembraneQuery, PDType]:
        """Translate the invocation target into a membrane query.

        ``where`` — one predicate or a conjunctive sequence — narrows
        the candidate uids before any membrane is touched: a single
        predicate goes through :meth:`DatabaseFS.select_uids` (indexed
        when possible), several go through the planned
        :meth:`DatabaseFS.select_uids_where` pushdown.
        """
        if isinstance(target, PDRef):
            type_name: str = target.pd_type
            uids: Optional[Tuple[str, ...]] = (target.uid,)
        elif isinstance(target, str):
            type_name = target
            uids = None
        else:
            refs = list(target)
            if not refs:
                raise errors.InvocationError("empty PD reference list")
            type_names = {ref.pd_type for ref in refs}
            if len(type_names) != 1:
                raise errors.InvocationError(
                    f"mixed PD types in one invocation: {sorted(type_names)}"
                )
            type_name = refs[0].pd_type
            uids = tuple(ref.uid for ref in refs)

        pd_type = self.dbfs.get_type(type_name)
        if not purpose.uses_type(type_name):
            raise errors.InvocationError(
                f"purpose {purpose.name!r} does not declare use of type "
                f"{type_name!r}"
            )
        predicates = _where_tuple(where)
        if predicates:
            for predicate in predicates:
                if predicate.field_name not in pd_type.field_names:
                    raise errors.InvocationError(
                        f"predicate names unknown field "
                        f"{predicate.field_name!r} of type {type_name!r}"
                    )
            if len(predicates) == 1:
                matching = self.dbfs.select_uids(
                    type_name, predicates[0], self.credential
                )
            else:
                matching = self.dbfs.select_uids_where(
                    type_name, predicates, self.credential
                )
            uids = (
                tuple(uid for uid in matching if uid in set(uids))
                if uids is not None
                else tuple(matching)
            )
        return (
            MembraneQuery(pd_type=type_name, subject_id=subject_id, uids=uids),
            pd_type,
        )

    def _filter(
        self,
        purpose: Purpose,
        pd_type: PDType,
        pairs: Sequence[Tuple[PDRef, Membrane]],
        result: InvocationResult,
        accesses: List[PDAccess],
    ) -> List[Tuple[PDRef, Membrane, frozenset]]:
        """Consent + TTL filter: the membrane speaks, the DED obeys.

        The effective field set is the *intersection* of what the
        membrane grants and what the purpose declared it needs — data
        minimisation from both directions.
        """
        now = self.clock.now()
        survivors: List[Tuple[PDRef, Membrane, frozenset]] = []
        declared_view = purpose.view_for_type(pd_type.name)
        declared_fields = (
            pd_type.view(declared_view).fields
            if declared_view is not None
            else pd_type.field_names
        )
        cache = self.decisions if (
            self.decisions is not None and self.decisions.enabled
        ) else None
        schema_version = (
            self.dbfs.schema_version(pd_type.name) if cache is not None else 0
        )
        for ref, membrane in pairs:
            # TTL expiry is clock-dependent and checked on every pass —
            # never answered from the decision cache.
            if membrane.is_expired(now):
                result.expired += 1
                continue
            if cache is not None:
                effective = cache.lookup(
                    ref.uid, purpose.name, membrane.version, schema_version
                )
                if effective is MISSING:
                    effective = self._decide(
                        purpose, pd_type, membrane, declared_fields
                    )
                    cache.store(
                        ref.uid, purpose.name, membrane.version,
                        schema_version, effective,
                    )
            else:
                effective = self._decide(
                    purpose, pd_type, membrane, declared_fields
                )
            if effective is None:
                result.denied += 1
                accesses.append(
                    PDAccess(
                        uid=ref.uid, subject_id=ref.subject_id, mode=ACCESS_DENIED
                    )
                )
                continue
            survivors.append((ref, membrane, effective))
        return survivors

    @staticmethod
    def _decide(
        purpose: Purpose,
        pd_type: PDType,
        membrane: Membrane,
        declared_fields: frozenset,
    ) -> Optional[frozenset]:
        """One consent decision: the effective field set, or None.

        The effective set is the intersection of what the membrane
        grants and what the purpose declared; an empty intersection is
        a denial (nothing may be read), collapsed to ``None`` so the
        decision cache stores a single denial shape.
        """
        allowed = membrane.allowed_fields(purpose.name, pd_type)
        if allowed is None:
            return None
        effective = frozenset(allowed & declared_fields)
        return effective or None

    def _execute(
        self,
        fn: ProcessingFn,
        views: List[PDView],
        aggregate: bool,
        result: InvocationResult,
        enclave: Optional[object] = None,
    ) -> Dict[str, object]:
        """Run the function under the F_pd seccomp profile.

        Per-record errors are contained: one record's failure must not
        deny the other subjects' processing.  With an enclave, every
        call goes through :meth:`Enclave.call`, which re-checks the
        code measurement on entry.
        """
        invoke = (lambda *a: enclave.call(fn, *a)) if enclave is not None else fn
        outputs: Dict[str, object] = {}
        if aggregate:
            try:
                outputs["__aggregate__"] = invoke(views)
                result.executed = len(views)
            except errors.RgpdOSError:
                raise
            except Exception as exc:  # noqa: BLE001 - user code boundary
                result.errors["__aggregate__"] = f"{type(exc).__name__}: {exc}"
            return outputs
        for view in views:
            try:
                outputs[view.ref.uid] = invoke(view)
                result.executed += 1
            except errors.RgpdOSError:
                raise
            except Exception as exc:  # noqa: BLE001 - user code boundary
                result.errors[view.ref.uid] = f"{type(exc).__name__}: {exc}"
        return outputs

    def _collect_produced(
        self, purpose: Purpose, outputs: Dict[str, object]
    ) -> List[Tuple[str, str, Dict[str, object]]]:
        """Extract produced-PD payloads from the function outputs.

        A processing signals PD production by returning a dict shaped
        ``{"__produce__": {"type": ..., "record": {...}}}`` (or a list
        of those).  The produced type must be declared by the purpose.
        """
        produced: List[Tuple[str, str, Dict[str, object]]] = []
        for uid, output in outputs.items():
            for item in _iter_produce_markers(output):
                type_name = item.get("type")
                record = item.get("record")
                if not isinstance(type_name, str) or not isinstance(record, dict):
                    raise errors.InvocationError(
                        "malformed __produce__ marker: needs 'type' and 'record'"
                    )
                if type_name not in purpose.produces:
                    raise errors.InvocationError(
                        f"purpose {purpose.name!r} does not declare "
                        f"production of type {type_name!r}"
                    )
                subject = item.get("subject_id") or self._subject_of_uid(uid)
                produced.append((type_name, subject, record))
        return produced

    def _subject_of_uid(self, uid: str) -> str:
        if uid == "__aggregate__":
            raise errors.InvocationError(
                "aggregate processings must name subject_id in __produce__"
            )
        return self.dbfs.get_membrane(uid, self.credential).subject_id

    def _build_and_store(
        self,
        purpose: Purpose,
        payloads: List[Tuple[str, str, Dict[str, object]]],
        trace: StageTrace,
    ) -> List[PDRef]:
        """Stages ded_build_membrane + ded_store for produced PD."""
        refs: List[PDRef] = []
        for type_name, subject_id, record in payloads:
            pd_type = self.dbfs.get_type(type_name)
            start = time.perf_counter()
            membrane = membrane_for_type(
                pd_type,
                subject_id=subject_id,
                created_at=self.clock.now(),
                origin=ORIGIN_DERIVED,
                granted_by=f"ded:{purpose.name}",
            )
            trace.charge(
                "ded_build_membrane",
                self.cost.build_membrane_per_pd,
                time.perf_counter() - start,
            )
            refs.append(
                self.dbfs.store(
                    StoreRequest(
                        pd_type=type_name,
                        record=record,
                        membrane_json=membrane.to_json(),
                    ),
                    self.credential,
                )
            )
        trace.counts["produced"] = len(refs)
        return refs

    def _sanitize_return(
        self, outputs: Dict[str, object], result: InvocationResult
    ) -> None:
        """ded_return: strip produce markers, refuse raw PD."""
        for uid, output in outputs.items():
            value = _strip_produce_markers(output)
            if contains_raw_pd(value):
                raise errors.PDLeakError(
                    f"processing attempted to return raw PD for {uid}; "
                    "only references may cross the DED boundary"
                )
            if value is not None:
                result.values[uid] = value

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _timed(
        self,
        trace: StageTrace,
        stage: str,
        simulated: Optional[float],
        thunk: Callable[[], object],
    ) -> object:
        with self.telemetry.op(_STAGE_OPS[stage]):
            start = time.perf_counter()
            value = thunk()
            wall = time.perf_counter() - start
        trace.charge(stage, simulated if simulated is not None else 0.0, wall)
        self.clock.advance(simulated if simulated is not None else 0.0)
        return value

    def _log(
        self,
        result: InvocationResult,
        accesses: List[PDAccess],
        outcome: str,
        detail: str = "",
    ) -> None:
        self.log.record(
            at=self.clock.now(),
            purpose=result.purpose,
            processing=result.processing,
            outcome=outcome,
            accesses=tuple(accesses),
            stage_seconds=result.trace.simulated_seconds,
            detail=detail,
        )


def _iter_produce_markers(output: object) -> List[Dict[str, object]]:
    """Find ``__produce__`` markers in a processing's output."""
    markers: List[Dict[str, object]] = []
    if isinstance(output, dict) and "__produce__" in output:
        marker = output["__produce__"]
        if isinstance(marker, list):
            markers.extend(m for m in marker if isinstance(m, dict))
        elif isinstance(marker, dict):
            markers.append(marker)
    return markers


def _strip_produce_markers(output: object) -> object:
    if isinstance(output, dict) and "__produce__" in output:
        remaining = {k: v for k, v in output.items() if k != "__produce__"}
        return remaining or None
    return output


def produce(type_name: str, record: Dict[str, object], subject_id: str = "") -> Dict[str, object]:
    """Helper for processings that generate PD.

    >>> def compute_age(user):
    ...     return produce("age_pd", {"age": 2026 - user.year_of_birthdate})
    """
    marker: Dict[str, object] = {"type": type_name, "record": record}
    if subject_id:
        marker["subject_id"] = subject_id
    return {"__produce__": marker}
