"""rgpdOS core: the paper's contribution layer.

Membranes and active data (Idea 1), the data-centric DED execution
model (Idea 2), PD types and views, the Processing Store, built-ins,
subject rights, compliance auditing, breach monitoring, semantic
purpose matching, cross-operator transfer, and the crypto substrate
for the right to be forgotten.  ``repro.core.system.RgpdOS`` assembles
all of it; most users should start there (re-exported as
``repro.RgpdOS``).
"""
