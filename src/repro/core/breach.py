"""Breach detection and notification (GDPR Art. 33/34).

rgpdOS's mediation points all produce *signals* when something pushes
against them: DBFS counts refused direct accesses, the DED raises (and
logs) PD-leak attempts, IPC channels count rejected raw-PD payloads,
seccomp filters record denied syscalls, and address spaces record
use-after-free reads.  A GDPR-aware OS should not just refuse — it
should notice.

:class:`BreachMonitor` turns those counters into an Art. 33 workflow:

* :meth:`scan` reads the deltas since the last scan and classifies
  them into :class:`BreachIndicator`\\ s with severities;
* a scan with any high-severity indicator produces a *notifiable*
  :class:`BreachReport`, stamped with the 72-hour notification
  deadline Art. 33(1) imposes;
* :meth:`notification_document` renders the report in the structure
  Art. 33(3) requires (nature of the breach, categories and numbers
  of subjects concerned, likely consequences, measures taken).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..storage.dbfs import DatabaseFS
from .clock import Clock
from .processing_log import OUTCOME_ERROR, ProcessingLog

SEVERITY_LOW = "low"
SEVERITY_MEDIUM = "medium"
SEVERITY_HIGH = "high"

#: Art. 33(1): notification "not later than 72 hours after having
#: become aware" of the breach.
NOTIFICATION_DEADLINE_SECONDS = 72 * 3600.0


@dataclass(frozen=True)
class BreachIndicator:
    """One classified security signal."""

    source: str
    count: int
    severity: str
    description: str


@dataclass
class BreachReport:
    """Outcome of one monitor scan."""

    at: float
    indicators: List[BreachIndicator] = field(default_factory=list)
    #: Set via :meth:`BreachMonitor.mark_notified` once the supervisory
    #: authority has been notified; ``None`` while pending.
    notified_at: Optional[float] = None

    @property
    def notifiable(self) -> bool:
        """Does Art. 33 require notifying the supervisory authority?"""
        return any(i.severity == SEVERITY_HIGH for i in self.indicators)

    @property
    def notification_deadline(self) -> Optional[float]:
        if not self.notifiable:
            return None
        return self.at + NOTIFICATION_DEADLINE_SECONDS

    def summary(self) -> str:
        if not self.indicators:
            return "no breach indicators"
        status = "NOTIFIABLE BREACH" if self.notifiable else "anomalies only"
        return (
            f"{status}: "
            + "; ".join(
                f"{i.source}={i.count} ({i.severity})"
                for i in self.indicators
            )
        )


class BreachMonitor:
    """Delta-based scanner over the system's mediation counters."""

    def __init__(
        self,
        dbfs: DatabaseFS,
        log: ProcessingLog,
        clock: Clock,
    ) -> None:
        self.dbfs = dbfs
        self.log = log
        self.clock = clock
        self._extra_counters: Dict[str, _Counter] = {}
        self._last_denied_accesses = 0
        self._last_error_entries = 0
        self.reports: List[BreachReport] = []

    # -- pluggable signal sources -------------------------------------------

    def watch_counter(
        self,
        name: str,
        read: "callable",
        severity: str,
        description: str,
    ) -> None:
        """Attach an external counter (IPC rejections, seccomp
        denials, UAF events...).  ``read`` returns its current value.
        """
        self._extra_counters[name] = _Counter(
            read=read, severity=severity, description=description, last=read()
        )

    # -- scanning ---------------------------------------------------------

    def scan(self) -> BreachReport:
        """Classify everything that happened since the previous scan."""
        report = BreachReport(at=self.clock.now())

        denied = self.dbfs.stats.denied_accesses
        delta = denied - self._last_denied_accesses
        self._last_denied_accesses = denied
        if delta > 0:
            report.indicators.append(
                BreachIndicator(
                    source="dbfs-direct-access",
                    count=delta,
                    severity=SEVERITY_HIGH if delta >= 5 else SEVERITY_MEDIUM,
                    description=(
                        "direct DBFS access attempts by non-DED "
                        "credentials (blocked)"
                    ),
                )
            )

        error_entries = [
            e for e in self.log.entries() if e.outcome == OUTCOME_ERROR
        ]
        delta = len(error_entries) - self._last_error_entries
        self._last_error_entries = len(error_entries)
        if delta > 0:
            leak_attempts = sum(
                1
                for e in error_entries[-delta:]
                if "raw PD" in e.detail or "leak" in e.detail.lower()
            )
            if leak_attempts:
                report.indicators.append(
                    BreachIndicator(
                        source="ded-leak-attempt",
                        count=leak_attempts,
                        severity=SEVERITY_HIGH,
                        description=(
                            "processings attempted to return raw PD "
                            "across the DED boundary (blocked)"
                        ),
                    )
                )
            other = delta - leak_attempts
            if other:
                report.indicators.append(
                    BreachIndicator(
                        source="ded-error",
                        count=other,
                        severity=SEVERITY_LOW,
                        description="processing pipeline errors",
                    )
                )

        for name, counter in self._extra_counters.items():
            current = counter.read()
            delta = current - counter.last
            counter.last = current
            if delta > 0:
                report.indicators.append(
                    BreachIndicator(
                        source=name,
                        count=delta,
                        severity=counter.severity,
                        description=counter.description,
                    )
                )

        self.reports.append(report)
        return report

    # -- deadline bookkeeping (Art. 33(1)) ---------------------------------

    def notifiable_reports(self) -> List[BreachReport]:
        """Every scan outcome Art. 33 requires notifying."""
        return [report for report in self.reports if report.notifiable]

    def pending_notifications(self) -> List[BreachReport]:
        """Notifiable reports the authority has not been notified of."""
        return [
            report for report in self.notifiable_reports()
            if report.notified_at is None
        ]

    def overdue_notifications(self, now: float) -> List[BreachReport]:
        """Pending reports whose 72-hour window has already closed."""
        return [
            report for report in self.pending_notifications()
            if report.notification_deadline is not None
            and report.notification_deadline < now
        ]

    def mark_notified(self, report: BreachReport) -> float:
        """Record that the authority was notified (now); returns the
        notification timestamp."""
        report.notified_at = self.clock.now()
        return report.notified_at

    # -- Art. 33(3) notification ---------------------------------------------

    def notification_document(self, report: BreachReport) -> str:
        """Render an Art. 33(3)-structured notification as JSON."""
        subjects = self.dbfs.list_subjects()
        document = {
            "article": "GDPR Art. 33",
            "reported_at": report.at,
            "notification_deadline": report.notification_deadline,
            "nature_of_breach": [
                {
                    "source": i.source,
                    "events": i.count,
                    "severity": i.severity,
                    "description": i.description,
                }
                for i in report.indicators
            ],
            "categories_of_data_subjects": {
                "subjects_held": len(subjects),
                "pd_records_held": len(self.dbfs.all_uids()),
            },
            "likely_consequences": (
                "all recorded attempts were blocked by rgpdOS mediation; "
                "no PD left the system through monitored channels"
            ),
            "measures_taken": [
                "attempts refused at the DBFS/DED/IPC boundary",
                "full audit trail retained in the processing log",
            ],
        }
        return json.dumps(document, sort_keys=True, indent=2)


@dataclass
class _Counter:
    read: "callable"
    severity: str
    description: str
    last: int
