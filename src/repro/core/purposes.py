"""Purposes and purpose–implementation matching.

The paper's programming model revolves around *data processings*: a
pair of one **purpose** (written in a very high level language, by the
project manager) and one **implementation** (written by developers, in
any language).  ``ps_register`` must reject functions with no purpose
and raise an alert when "the specified purpose does not 'match' with
the corresponding implementation".

The paper leaves the matching problem open (§ 3(4): "checking if a
processing's implementation matches its purpose is a challenging
problem which is not yet addressed in rgpdOS. We plan to investigate
approaches borrowed from several research domains such as Semantic and
AI").  This module implements the static-analysis half of that plan
for Python implementations:

* :func:`attach_purpose` / the :func:`processing` decorator bind a
  purpose name to a function (the Python equivalent of Listing 2's
  ``/* purpose3 */`` comment — which :func:`extract_purpose_name`
  also understands, both in docstrings and in C-style sources);
* :class:`PurposeMatcher` parses the implementation with ``ast`` and
  checks that (a) every PD field it touches is covered by the views
  its purpose declares, and (b) it contains no leak-prone constructs
  (``open``, ``print``, ``eval``, ``exec``, socket use, file writes).

A function whose source cannot be analysed is reported *unverifiable*,
which the Processing Store treats like a mismatch: sysadmin approval
required.
"""

from __future__ import annotations

import ast as python_ast
import inspect
import re
import textwrap
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Mapping, Optional, Set, Tuple

from .. import errors
from .datatypes import PDType
from .membrane import LAWFUL_BASES

_PURPOSE_ATTR = "__rgpdos_purpose__"

#: Call targets that can leak PD out of the process.
_FORBIDDEN_CALLS = frozenset(
    {"open", "print", "eval", "exec", "compile", "__import__", "input"}
)
#: Modules whose import inside a processing is leak-prone.
_FORBIDDEN_MODULES = frozenset(
    {"socket", "subprocess", "os", "sys", "requests", "urllib", "http"}
)


@dataclass(frozen=True)
class Purpose:
    """A declared purpose: the high-level half of a data processing."""

    name: str
    description: str = ""
    uses: Tuple[Tuple[str, Optional[str]], ...] = ()
    produces: Tuple[str, ...] = ()
    basis: str = "consent"

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise errors.RegistrationError(f"invalid purpose name {self.name!r}")
        if self.basis not in LAWFUL_BASES:
            raise errors.RegistrationError(
                f"purpose {self.name!r} has unknown lawful basis {self.basis!r} "
                f"(valid: {LAWFUL_BASES})"
            )

    def uses_type(self, type_name: str) -> bool:
        return any(name == type_name for name, _ in self.uses)

    def view_for_type(self, type_name: str) -> Optional[str]:
        """The declared view for a type (None means whole-type use)."""
        for name, view in self.uses:
            if name == type_name:
                return view
        return None

    def allowed_fields(self, registry: Mapping[str, PDType]) -> FrozenSet[str]:
        """Union of fields this purpose may touch, across its used types."""
        allowed: Set[str] = set()
        for type_name, view_name in self.uses:
            pd_type = registry.get(type_name)
            if pd_type is None:
                raise errors.RegistrationError(
                    f"purpose {self.name!r} uses undeclared type {type_name!r}"
                )
            if view_name is None:
                allowed |= pd_type.field_names
            else:
                allowed |= pd_type.view(view_name).fields
        return frozenset(allowed)


# ---------------------------------------------------------------------------
# Binding purposes to implementations
# ---------------------------------------------------------------------------


def attach_purpose(fn: Callable, purpose_name: str) -> Callable:
    """Tag a function with its purpose name."""
    setattr(fn, _PURPOSE_ATTR, purpose_name)
    return fn


def processing(purpose: str) -> Callable[[Callable], Callable]:
    """Decorator form: ``@processing(purpose="purpose3")``.

    >>> @processing(purpose="compute_age")
    ... def compute_age(user):
    ...     '''Compute a user's age.'''
    ...     if user.year_of_birthdate:
    ...         return 2026 - user.year_of_birthdate
    ...     return None
    """

    def decorate(fn: Callable) -> Callable:
        return attach_purpose(fn, purpose)

    return decorate


_DOCSTRING_PURPOSE = re.compile(r"purpose\s*:\s*(\w+)", re.IGNORECASE)
_C_COMMENT_PURPOSE = re.compile(r"/\*\s*(\w+)\s*\*/")
_HASH_COMMENT_PURPOSE = re.compile(r"#\s*purpose\s*:?\s*(\w+)", re.IGNORECASE)


def extract_purpose_name(implementation: object) -> Optional[str]:
    """Find the purpose a function or source string declares.

    Resolution order: explicit attribute (decorator), ``purpose: X`` in
    the docstring, ``# purpose: X`` comment in Python source, or a
    Listing-2-style ``/* purposeN */`` comment in C-like source
    strings.  Returns None when nothing declares a purpose — which
    ``ps_register`` then rejects.
    """
    if callable(implementation):
        tagged = getattr(implementation, _PURPOSE_ATTR, None)
        if tagged:
            return str(tagged)
        doc = inspect.getdoc(implementation) or ""
        match = _DOCSTRING_PURPOSE.search(doc)
        if match:
            return match.group(1)
        try:
            source = inspect.getsource(implementation)
        except (OSError, TypeError):
            return None
        match = _HASH_COMMENT_PURPOSE.search(source)
        return match.group(1) if match else None
    if isinstance(implementation, str):
        match = _C_COMMENT_PURPOSE.search(implementation)
        if match:
            return match.group(1)
        match = _HASH_COMMENT_PURPOSE.search(implementation)
        if match:
            return match.group(1)
        match = _DOCSTRING_PURPOSE.search(implementation)
        return match.group(1) if match else None
    return None


# ---------------------------------------------------------------------------
# Static purpose-implementation matching
# ---------------------------------------------------------------------------


@dataclass
class MatchReport:
    """Outcome of a purpose–implementation match check."""

    purpose: str
    matches: bool
    verifiable: bool
    accessed_fields: FrozenSet[str] = frozenset()
    allowed_fields: FrozenSet[str] = frozenset()
    violations: List[str] = field(default_factory=list)

    def summary(self) -> str:
        if not self.verifiable:
            return f"purpose {self.purpose!r}: implementation unverifiable"
        if self.matches:
            return f"purpose {self.purpose!r}: implementation matches"
        return (
            f"purpose {self.purpose!r}: MISMATCH — "
            + "; ".join(self.violations)
        )


class _AccessCollector(python_ast.NodeVisitor):
    """Collects field accesses on parameters and forbidden constructs."""

    def __init__(self, param_names: Set[str]) -> None:
        self.param_names = param_names
        self.accessed: Set[str] = set()
        self.violations: List[str] = []

    def visit_Attribute(self, node: python_ast.Attribute) -> None:
        if isinstance(node.value, python_ast.Name) and node.value.id in self.param_names:
            self.accessed.add(node.attr)
        self.generic_visit(node)

    def visit_Subscript(self, node: python_ast.Subscript) -> None:
        if (
            isinstance(node.value, python_ast.Name)
            and node.value.id in self.param_names
            and isinstance(node.slice, python_ast.Constant)
            and isinstance(node.slice.value, str)
        ):
            self.accessed.add(node.slice.value)
        self.generic_visit(node)

    def visit_Call(self, node: python_ast.Call) -> None:
        target = node.func
        if isinstance(target, python_ast.Name) and target.id in _FORBIDDEN_CALLS:
            self.violations.append(
                f"leak-prone call to {target.id}() at line {node.lineno}"
            )
        # param.get("field") pattern
        if (
            isinstance(target, python_ast.Attribute)
            and isinstance(target.value, python_ast.Name)
            and target.value.id in self.param_names
            and target.attr == "get"
            and node.args
            and isinstance(node.args[0], python_ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            self.accessed.add(node.args[0].value)
        self.generic_visit(node)

    def visit_Import(self, node: python_ast.Import) -> None:
        for alias in node.names:
            root = alias.name.split(".")[0]
            if root in _FORBIDDEN_MODULES:
                self.violations.append(
                    f"leak-prone import of {alias.name!r} at line {node.lineno}"
                )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: python_ast.ImportFrom) -> None:
        root = (node.module or "").split(".")[0]
        if root in _FORBIDDEN_MODULES:
            self.violations.append(
                f"leak-prone import from {node.module!r} at line {node.lineno}"
            )
        self.generic_visit(node)


class PurposeMatcher:
    """Static check that an implementation stays within its purpose.

    ``registry`` maps type names to :class:`PDType` so view names in
    the purpose resolve to field sets.  Non-PD parameters can be
    excluded by name via ``ignore_params``.
    """

    def __init__(self, registry: Mapping[str, PDType]) -> None:
        self._registry = dict(registry)

    def check(
        self,
        purpose: Purpose,
        implementation: Callable,
        ignore_params: FrozenSet[str] = frozenset(),
    ) -> MatchReport:
        allowed = purpose.allowed_fields(self._registry)
        try:
            source = textwrap.dedent(inspect.getsource(implementation))
            tree = python_ast.parse(source)
        except (OSError, TypeError, SyntaxError, IndentationError):
            return MatchReport(
                purpose=purpose.name,
                matches=False,
                verifiable=False,
                allowed_fields=allowed,
                violations=["source code unavailable for analysis"],
            )

        try:
            signature = inspect.signature(implementation)
            params = {
                name
                for name in signature.parameters
                if name not in ignore_params
            }
        except (TypeError, ValueError):
            params = set()

        collector = _AccessCollector(params)
        collector.visit(tree)
        violations = list(collector.violations)
        overreach = collector.accessed - allowed
        if overreach:
            violations.append(
                f"accesses fields outside the declared views: {sorted(overreach)}"
            )
        return MatchReport(
            purpose=purpose.name,
            matches=not violations,
            verifiable=True,
            accessed_fields=frozenset(collector.accessed),
            allowed_fields=allowed,
            violations=violations,
        )
