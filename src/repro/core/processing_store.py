"""The Processing Store (PS) — rgpdOS's only entry point.

Paper § 2: *"Its public interface consists of two functions:
ps_register and ps_invoke.  Every F_pd function must be registered
first in PS before they can be invoked.  On call to ps_register, PS
makes the following checks: if the function has no specified purpose,
it is rejected; if the specified purpose does not 'match' with the
corresponding implementation, PS raises an alert that requires an
explicit sysadmin approval."*

Enforcement rules 1 and 2 live here: stored processings are private to
the PS, and invocation is only possible through :meth:`ps_invoke`
(which instantiates a fresh DED per call — "when PS receives a
ps_invoke call, it instantiates a DED").

``ps_invoke`` follows the paper's signature: "the reference of a data
processing operation, optionally a reference to PD, a data collection
method and a boolean indicating whether or not the data collection
function is to be called to initialize DBFS."
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from .. import errors
from ..kernel.pim import DEDPlacer
from ..kernel.tee import TEEPlatform, measure_code
from ..obs import NULL_TELEMETRY, Telemetry
from ..storage.cache import CacheConfig, DEFAULT_CACHE_CONFIG
from ..storage.dbfs import DatabaseFS
from ..storage.query import Predicate
from .active_data import PDRef
from .builtins import (
    BUILTIN_ACQUISITION,
    BUILTIN_COPY,
    BUILTIN_DELETE,
    BUILTIN_NAMES,
    BUILTIN_UPDATE,
    SYSADMIN,
    BuiltinFunctions,
    EraseReport,
)
from .clock import Clock
from .ded import (
    DataExecutionDomain,
    DEDCostModel,
    InvocationResult,
    MembraneDecisionCache,
)
from .membrane import BASIS_LEGAL_OBLIGATION, BASIS_LEGITIMATE_INTEREST
from .processing_log import ProcessingLog
from .purposes import (
    MatchReport,
    Purpose,
    PurposeMatcher,
    extract_purpose_name,
)
from .semantic import SemanticMatcher, SemanticReport


@dataclass
class Processing:
    """One registered data processing: purpose + implementation."""

    name: str
    purpose: Purpose
    fn: Callable
    is_builtin: bool = False
    aggregate: bool = False
    registered_at: float = 0.0
    approved_by: str = ""
    match_report: Optional[MatchReport] = None
    semantic_report: Optional[SemanticReport] = None
    #: MRENCLAVE-style code measurement, recorded at registration so a
    #: TEE-protected invocation can verify the enclave runs exactly
    #: the registered implementation (§ 3(3)).
    measurement: str = ""


class ProcessingStore:
    """The PS component.  One per rgpdOS instance."""

    def __init__(
        self,
        dbfs: DatabaseFS,
        clock: Clock,
        log: ProcessingLog,
        cost_model: Optional[DEDCostModel] = None,
        tee_platform: Optional[TEEPlatform] = None,
        semantic_matcher: Optional[SemanticMatcher] = None,
        placer: Optional[DEDPlacer] = None,
        cache_config: Optional[CacheConfig] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.dbfs = dbfs
        self.clock = clock
        self.log = log
        self.cost_model = cost_model
        self.tee_platform = tee_platform
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.cache_config = (
            cache_config if cache_config is not None else DEFAULT_CACHE_CONFIG
        )
        #: Shared across every DED this PS creates: each ps_invoke gets
        #: a fresh DED (the paper's rule), but consent decisions carry
        #: over — the membrane version in the cache key keeps them
        #: exactly as fresh as re-evaluation would be.
        self.decision_cache = MembraneDecisionCache(
            capacity=self.cache_config.decision_cache_entries
        )
        #: Optional § 3(4) semantic check: when configured, ps_register
        #: also requires the implementation's vocabulary to plausibly
        #: match the purpose description (alert + sysadmin approval
        #: otherwise, same protocol as the mechanical matcher).
        self.semantic_matcher = semantic_matcher
        #: Optional § 3(3) DED placer: when configured, every DED run
        #: records an advisory host/PIM/storage placement decision in
        #: its trace.
        self.placer = placer
        self._attestation_nonces = itertools.count(0xA11)
        self.builtins = BuiltinFunctions(dbfs, clock, log)
        self._purposes: Dict[str, Purpose] = {}
        self._processings: Dict[str, Processing] = {}  # rule 1: PS-private
        self._ded_instances = itertools.count(1)
        self._register_builtins()

    # ------------------------------------------------------------------
    # Purpose declarations
    # ------------------------------------------------------------------

    def declare_purpose(self, purpose: Purpose) -> None:
        """Install a purpose declaration (from the DSL loader)."""
        if purpose.name in self._purposes:
            raise errors.RegistrationError(
                f"purpose {purpose.name!r} already declared"
            )
        self._purposes[purpose.name] = purpose

    def purpose(self, name: str) -> Purpose:
        purpose = self._purposes.get(name)
        if purpose is None:
            raise errors.RegistrationError(
                f"purpose {name!r} is not declared; install its declaration "
                "before registering an implementation"
            )
        return purpose

    def list_purposes(self) -> List[str]:
        return sorted(self._purposes)

    # ------------------------------------------------------------------
    # ps_register
    # ------------------------------------------------------------------

    def ps_register(
        self,
        fn: Callable,
        purpose: Optional[str] = None,
        name: Optional[str] = None,
        aggregate: bool = False,
        sysadmin_approved: bool = False,
    ) -> Processing:
        """Register an F_pd^r function.

        The paper's two checks, in order:

        1. *no specified purpose → rejected* — the purpose comes from
           the ``purpose`` argument or from the function itself
           (decorator / docstring / comment); nothing found means
           :class:`MissingPurposeError`.
        2. *purpose does not match the implementation → alert* — the
           static matcher runs; on mismatch (or unverifiable source),
           :class:`PurposeMismatchAlert` is raised unless the call
           carries ``sysadmin_approved=True``, in which case the
           approval is recorded on the processing.
        """
        purpose_name = purpose or extract_purpose_name(fn)
        if not purpose_name:
            raise errors.MissingPurposeError(
                f"function {getattr(fn, '__name__', fn)!r} declares no "
                "purpose; every F_pd function must specify one"
            )
        declared = self.purpose(purpose_name)

        processing_name = name or getattr(fn, "__name__", purpose_name)
        if processing_name in self._processings:
            raise errors.RegistrationError(
                f"processing {processing_name!r} already registered"
            )

        registry = {
            type_name: self.dbfs.get_type(type_name)
            for type_name in self.dbfs.list_types()
        }
        matcher = PurposeMatcher(registry)
        report = matcher.check(declared, fn)
        approved_by = ""
        if not report.matches:
            if not sysadmin_approved:
                raise errors.PurposeMismatchAlert(report.summary())
            approved_by = SYSADMIN
        semantic_report = None
        if self.semantic_matcher is not None:
            semantic_report = self.semantic_matcher.check(declared, fn)
            if not semantic_report.plausible:
                if not sysadmin_approved:
                    raise errors.PurposeMismatchAlert(
                        semantic_report.summary()
                    )
                approved_by = SYSADMIN

        processing = Processing(
            name=processing_name,
            purpose=declared,
            fn=fn,
            aggregate=aggregate,
            registered_at=self.clock.now(),
            approved_by=approved_by,
            match_report=report,
            semantic_report=semantic_report,
            measurement=measure_code(fn),
        )
        self._processings[processing_name] = processing
        return processing

    def is_registered(self, name: str) -> bool:
        return name in self._processings

    def list_processings(self) -> List[str]:
        return sorted(self._processings)

    def describe_processing(self, name: str) -> Dict[str, object]:
        """Public metadata about a processing (never the function)."""
        processing = self._get(name)
        return {
            "name": processing.name,
            "purpose": processing.purpose.name,
            "description": processing.purpose.description,
            "basis": processing.purpose.basis,
            "uses": list(processing.purpose.uses),
            "produces": list(processing.purpose.produces),
            "is_builtin": processing.is_builtin,
            "approved_by": processing.approved_by,
        }

    # ------------------------------------------------------------------
    # ps_invoke
    # ------------------------------------------------------------------

    def ps_invoke(
        self,
        processing_name: str,
        target: Union[PDRef, str, Sequence[PDRef], None] = None,
        subject_id: Optional[str] = None,
        collection_method: Optional[str] = None,
        collect_first: bool = False,
        collect_payloads: Optional[
            Sequence[Tuple[str, Mapping[str, object]]]
        ] = None,
        use_tee: bool = False,
        where: Union["Predicate", Sequence["Predicate"], None] = None,
        **builtin_kwargs: object,
    ) -> Union[InvocationResult, PDRef, EraseReport, None]:
        """Invoke a registered processing.

        * ``target`` — a PD ref, a PD type name, or a list of refs.
        * ``collect_first`` + ``collection_method`` + ``collect_payloads``
          — the paper's "data collection function is to be called to
          initialize DBFS": each payload is ``(subject_id, record)``
          and is acquired through the declared collection interface
          before the processing runs.
        * built-in processings take their own keyword arguments
          (``changes=`` for update, ``mode=`` for delete, ...) and the
          acting identity via ``actor=``.
        """
        with self.telemetry.op(
            "ps.invoke", processing=processing_name, subject_id=subject_id,
        ):
            return self._ps_invoke_impl(
                processing_name, target, subject_id, collection_method,
                collect_first, collect_payloads, use_tee, where,
                **builtin_kwargs,
            )

    def _ps_invoke_impl(
        self,
        processing_name: str,
        target: Union[PDRef, str, Sequence[PDRef], None],
        subject_id: Optional[str],
        collection_method: Optional[str],
        collect_first: bool,
        collect_payloads: Optional[
            Sequence[Tuple[str, Mapping[str, object]]]
        ],
        use_tee: bool,
        where: Union["Predicate", Sequence["Predicate"], None],
        **builtin_kwargs: object,
    ) -> Union[InvocationResult, PDRef, EraseReport, None]:
        processing = self._get(processing_name)

        if collect_first:
            if not isinstance(target, str):
                raise errors.InvocationError(
                    "collection-first invocation needs a PD type name target"
                )
            if not collection_method:
                raise errors.InvocationError(
                    "collection-first invocation needs a collection_method"
                )
            for payload_subject, record in collect_payloads or ():
                self.builtins.acquisition(
                    type_name=target,
                    record=record,
                    subject_id=payload_subject,
                    method=collection_method,
                )

        if processing.is_builtin:
            return self._invoke_builtin(processing, target, **builtin_kwargs)

        if target is None:
            raise errors.InvocationError(
                f"processing {processing_name!r} needs a PD target "
                "(a ref, a type name, or a list of refs)"
            )
        enclave = self._provision_enclave(processing) if use_tee else None
        ded = DataExecutionDomain(
            dbfs=self.dbfs,
            clock=self.clock,
            log=self.log,
            cost_model=self.cost_model,
            instance=next(self._ded_instances),
            placer=self.placer,
            decision_cache=self.decision_cache,
            telemetry=self.telemetry,
        )
        try:
            return ded.run(
                purpose=processing.purpose,
                processing_name=processing.name,
                fn=processing.fn,
                target=target,
                aggregate=processing.aggregate,
                subject_id=subject_id,
                enclave=enclave,
                where=where,
            )
        finally:
            if enclave is not None:
                enclave.destroy()

    def _provision_enclave(self, processing: Processing):
        """Create and attest an enclave for one TEE-protected DED run.

        § 3(3): the enclave is measured from the registered
        implementation; PD is released only after the platform attests
        that the enclave's measurement matches what ``ps_register``
        recorded.  A mismatch (tampered implementation) aborts the
        invocation before any PD is loaded.
        """
        if self.tee_platform is None:
            raise errors.InvocationError(
                "TEE-protected invocation requested but this rgpdOS has "
                "no TEE platform configured"
            )
        enclave = self.tee_platform.create_enclave(processing.fn)
        nonce = next(self._attestation_nonces).to_bytes(8, "big")
        report = enclave.attest(nonce)
        if not self.tee_platform.verify(
            report,
            expected_measurement=processing.measurement,
            expected_nonce=nonce,
        ):
            enclave.destroy()
            raise errors.InvocationError(
                f"attestation failed for processing {processing.name!r}: "
                "enclave measurement does not match the registered "
                "implementation"
            )
        return enclave

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _get(self, name: str) -> Processing:
        processing = self._processings.get(name)
        if processing is None:
            raise errors.InvocationError(
                f"no processing named {name!r} is registered in the PS"
            )
        return processing

    def _invoke_builtin(
        self, processing: Processing, target: object, **kwargs: object
    ) -> Union[PDRef, EraseReport, None]:
        if processing.name == BUILTIN_ACQUISITION:
            return self.builtins.acquisition(**kwargs)  # type: ignore[arg-type]
        if not isinstance(target, PDRef):
            raise errors.InvocationError(
                f"built-in {processing.name!r} needs a PDRef target"
            )
        if processing.name == BUILTIN_UPDATE:
            return self.builtins.update(target, **kwargs)  # type: ignore[arg-type]
        if processing.name == BUILTIN_COPY:
            return self.builtins.copy(target, **kwargs)  # type: ignore[arg-type]
        if processing.name == BUILTIN_DELETE:
            return self.builtins.delete(target, **kwargs)  # type: ignore[arg-type]
        raise errors.InvocationError(
            f"unknown built-in {processing.name!r}"
        )  # pragma: no cover - the registry only holds the four names

    def _register_builtins(self) -> None:
        """Install the four built-in F_pd^w processings."""
        built_in_purposes = {
            BUILTIN_UPDATE: Purpose(
                name="builtin_update",
                description="Rectify stored PD on behalf of its subject",
                basis=BASIS_LEGITIMATE_INTEREST,
            ),
            BUILTIN_DELETE: Purpose(
                name="builtin_delete",
                description="Erase PD (right to be forgotten, GDPR Art. 17)",
                basis=BASIS_LEGAL_OBLIGATION,
            ),
            BUILTIN_COPY: Purpose(
                name="builtin_copy",
                description="Duplicate PD with membrane consistency",
                basis=BASIS_LEGITIMATE_INTEREST,
            ),
            BUILTIN_ACQUISITION: Purpose(
                name="builtin_acquisition",
                description="Collect PD through a declared interface",
                basis=BASIS_LEGITIMATE_INTEREST,
            ),
        }
        handlers: Dict[str, Callable] = {
            BUILTIN_UPDATE: self.builtins.update,
            BUILTIN_DELETE: self.builtins.delete,
            BUILTIN_COPY: self.builtins.copy,
            BUILTIN_ACQUISITION: self.builtins.acquisition,
        }
        for name in BUILTIN_NAMES:
            purpose = built_in_purposes[name]
            self._purposes[purpose.name] = purpose
            self._processings[name] = Processing(
                name=name,
                purpose=purpose,
                fn=handlers[name],
                is_builtin=True,
                registered_at=self.clock.now(),
            )
