"""Loader: declaration ASTs → runtime objects.

The loader is the semantic phase of the DSL pipeline: it converts a
parsed :class:`~repro.dsl.ast.Program` into
:class:`~repro.core.datatypes.PDType` and
:class:`~repro.core.purposes.Purpose` objects, resolving durations,
modifiers and the paper's own spellings:

* ``age: 1Y`` — Listing 1 spells the time-to-live entry ``age``; the
  loader accepts ``age``, ``ttl`` and ``time_to_live``;
* ``sensitivity: hight`` — the listing's typo is accepted as ``high``;
* field modifiers ``[sensitive]`` and ``[optional]``.

All semantic errors (unknown view in a consent entry, unknown field in
a view, bad duration) surface as :class:`~repro.errors.SemanticError`
with the declaration name in the message.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .. import errors
from ..core.clock import parse_duration
from ..core.datatypes import (
    FIELD_TYPES,
    ORIGINS,
    SENSITIVITY_LEVELS,
    FieldDef,
    PDType,
)
from ..core.purposes import Purpose
from ..core.views import View
from .ast import Program, PurposeDecl, TypeDecl
from .parser import parse

_TTL_KEYS = ("age", "ttl", "time_to_live")
_SENSITIVITY_ALIASES = {"hight": "high"}  # Listing 1 spells it "hight"
_TYPE_ALIASES = {
    "str": "string",
    "integer": "int",
    "boolean": "bool",
    "double": "float",
}
_KNOWN_SCALARS = frozenset({"origin", "sensitivity", *_TTL_KEYS})


def load_type(decl: TypeDecl) -> PDType:
    """Build a :class:`PDType` from one ``type`` declaration."""
    fields: List[FieldDef] = []
    for f in decl.fields:
        type_name = _TYPE_ALIASES.get(f.type_name, f.type_name)
        if type_name not in FIELD_TYPES:
            raise errors.SemanticError(
                f"type {decl.name!r}: field {f.name!r} has unknown type "
                f"{f.type_name!r} (valid: {sorted(FIELD_TYPES)})"
            )
        unknown_modifiers = set(f.modifiers) - {"sensitive", "optional"}
        if unknown_modifiers:
            raise errors.SemanticError(
                f"type {decl.name!r}: field {f.name!r} has unknown "
                f"modifiers {sorted(unknown_modifiers)}"
            )
        fields.append(
            FieldDef(
                name=f.name,
                field_type=type_name,
                required="optional" not in f.modifiers,
                sensitive="sensitive" in f.modifiers,
            )
        )

    views: Dict[str, View] = {}
    for v in decl.views:
        if v.name in views:
            raise errors.SemanticError(
                f"type {decl.name!r}: duplicate view {v.name!r}"
            )
        if not v.fields:
            raise errors.SemanticError(
                f"type {decl.name!r}: view {v.name!r} lists no fields"
            )
        views[v.name] = View(name=v.name, fields=frozenset(v.fields))

    consent: Dict[str, str] = {}
    for entry in decl.consent:
        if entry.purpose in consent:
            raise errors.SemanticError(
                f"type {decl.name!r}: duplicate consent entry for "
                f"purpose {entry.purpose!r}"
            )
        consent[entry.purpose] = entry.scope

    collection = {e.method: e.artefact for e in decl.collection}

    unknown_scalars = set(decl.scalars) - _KNOWN_SCALARS
    if unknown_scalars:
        raise errors.SemanticError(
            f"type {decl.name!r}: unknown entries {sorted(unknown_scalars)}"
        )

    origin = decl.scalars.get("origin", "subject")
    if origin not in ORIGINS:
        raise errors.SemanticError(
            f"type {decl.name!r}: unknown origin {origin!r} (valid: {ORIGINS})"
        )

    sensitivity = decl.scalars.get("sensitivity", "low")
    sensitivity = _SENSITIVITY_ALIASES.get(sensitivity, sensitivity)
    if sensitivity not in SENSITIVITY_LEVELS:
        raise errors.SemanticError(
            f"type {decl.name!r}: unknown sensitivity {sensitivity!r} "
            f"(valid: {SENSITIVITY_LEVELS})"
        )

    ttl_seconds = None
    ttl_entries = [key for key in _TTL_KEYS if key in decl.scalars]
    if len(ttl_entries) > 1:
        raise errors.SemanticError(
            f"type {decl.name!r}: multiple TTL entries {ttl_entries}"
        )
    if ttl_entries:
        ttl_seconds = parse_duration(decl.scalars[ttl_entries[0]])
        if ttl_seconds == 0:
            raise errors.SemanticError(
                f"type {decl.name!r}: zero TTL"
            )

    try:
        return PDType(
            name=decl.name,
            fields=tuple(fields),
            views=views,
            default_consent=consent,
            collection=collection,
            origin=origin,
            ttl_seconds=ttl_seconds,
            sensitivity=sensitivity,
        )
    except errors.SchemaViolationError as exc:
        raise errors.SemanticError(f"type {decl.name!r}: {exc}") from exc


def load_purpose(decl: PurposeDecl) -> Purpose:
    """Build a :class:`Purpose` from one ``purpose`` declaration."""
    uses: Tuple[Tuple[str, object], ...] = tuple(
        (u.type_name, u.view) for u in decl.uses
    )
    try:
        return Purpose(
            name=decl.name,
            description=decl.description,
            uses=uses,  # type: ignore[arg-type]
            produces=decl.produces,
            basis=decl.basis,
        )
    except errors.RegistrationError as exc:
        raise errors.SemanticError(f"purpose {decl.name!r}: {exc}") from exc


def load_program(program: Program) -> Tuple[Dict[str, PDType], Dict[str, Purpose]]:
    """Load every declaration; cross-checks purposes against types.

    A purpose that uses an undeclared type or view fails here, not at
    invocation time — the sysadmin learns about configuration mistakes
    when the declarations are installed.
    """
    types = {decl.name: load_type(decl) for decl in program.types}
    purposes = {decl.name: load_purpose(decl) for decl in program.purposes}
    for purpose in purposes.values():
        for type_name, view_name in purpose.uses:
            pd_type = types.get(type_name)
            if pd_type is None:
                raise errors.SemanticError(
                    f"purpose {purpose.name!r} uses undeclared type {type_name!r}"
                )
            if view_name is not None and view_name not in pd_type.views:
                raise errors.SemanticError(
                    f"purpose {purpose.name!r} uses unknown view {view_name!r} "
                    f"of type {type_name!r}"
                )
    return types, purposes


def load_source(source: str) -> Tuple[Dict[str, PDType], Dict[str, Purpose]]:
    """Parse and load a declaration source in one step."""
    return load_program(parse(source))
