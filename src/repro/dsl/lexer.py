"""Lexer for the rgpdOS declaration languages.

Two surface languages share this token stream:

* the **type declaration language** of Listing 1 (``type user { ... }``),
* the **purpose declaration language** the paper introduces as "a new
  very high level language as purposes should probably be written by
  the project manager" (``purpose compute_age { ... }``).

The token inventory is small: punctuation, quoted strings, numbers,
durations (``1Y``, ``90D`` — a number immediately followed by letters,
as in Listing 1's ``age: 1Y``), and words.  Words are deliberately
permissive — they include dots and dashes — because collection entries
name artefacts like ``user_form.html`` and ``fetch_data.py`` bare.

Comments: ``//`` and ``#`` to end of line, ``/* ... */`` blocks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from .. import errors

# Token types.
LBRACE = "LBRACE"
RBRACE = "RBRACE"
LBRACKET = "LBRACKET"
RBRACKET = "RBRACKET"
COLON = "COLON"
COMMA = "COMMA"
SEMI = "SEMI"
STRING = "STRING"
NUMBER = "NUMBER"
DURATION = "DURATION"
WORD = "WORD"
EOF = "EOF"

_PUNCT = {
    "{": LBRACE,
    "}": RBRACE,
    "[": LBRACKET,
    "]": RBRACKET,
    ":": COLON,
    ",": COMMA,
    ";": SEMI,
}

_WORD_CHARS = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_.-/"
)


@dataclass(frozen=True)
class Token:
    """One lexeme with its source position (1-based)."""

    type: str
    value: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.type}, {self.value!r}, {self.line}:{self.column})"


class Lexer:
    """Streaming tokenizer; :func:`tokenize` is the convenience entry."""

    def __init__(self, source: str) -> None:
        self.source = source
        self.pos = 0
        self.line = 1
        self.column = 1

    def _peek(self) -> str:
        return self.source[self.pos] if self.pos < len(self.source) else ""

    def _peek2(self) -> str:
        return self.source[self.pos : self.pos + 2]

    def _advance(self) -> str:
        char = self.source[self.pos]
        self.pos += 1
        if char == "\n":
            self.line += 1
            self.column = 1
        else:
            self.column += 1
        return char

    def _skip_trivia(self) -> None:
        """Skip whitespace and all three comment forms."""
        while self.pos < len(self.source):
            char = self._peek()
            if char in " \t\r\n":
                self._advance()
            elif char == "#" or self._peek2() == "//":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif self._peek2() == "/*":
                start_line, start_col = self.line, self.column
                self._advance()
                self._advance()
                while self.pos < len(self.source) and self._peek2() != "*/":
                    self._advance()
                if self.pos >= len(self.source):
                    raise errors.LexerError(
                        "unterminated block comment", start_line, start_col
                    )
                self._advance()
                self._advance()
            else:
                return

    def _lex_string(self) -> Token:
        line, column = self.line, self.column
        quote = self._advance()
        chars: List[str] = []
        while True:
            if self.pos >= len(self.source):
                raise errors.LexerError("unterminated string", line, column)
            char = self._advance()
            if char == quote:
                return Token(STRING, "".join(chars), line, column)
            if char == "\\" and self._peek() in (quote, "\\"):
                chars.append(self._advance())
            else:
                chars.append(char)

    def _lex_number_or_duration(self) -> Token:
        line, column = self.line, self.column
        digits: List[str] = []
        while self._peek().isdigit() or self._peek() == ".":
            digits.append(self._advance())
        suffix: List[str] = []
        while self._peek().isalpha():
            suffix.append(self._advance())
        text = "".join(digits)
        if suffix:
            return Token(DURATION, text + "".join(suffix), line, column)
        return Token(NUMBER, text, line, column)

    def _lex_word(self) -> Token:
        line, column = self.line, self.column
        chars: List[str] = []
        while self._peek() in _WORD_CHARS:
            chars.append(self._advance())
        return Token(WORD, "".join(chars), line, column)

    def tokens(self) -> Iterator[Token]:
        while True:
            self._skip_trivia()
            if self.pos >= len(self.source):
                yield Token(EOF, "", self.line, self.column)
                return
            char = self._peek()
            if char in _PUNCT:
                line, column = self.line, self.column
                self._advance()
                yield Token(_PUNCT[char], char, line, column)
            elif char in "\"'":
                yield self._lex_string()
            elif char.isdigit():
                yield self._lex_number_or_duration()
            elif char in _WORD_CHARS:
                yield self._lex_word()
            else:
                raise errors.LexerError(
                    f"unexpected character {char!r}", self.line, self.column
                )


def tokenize(source: str) -> List[Token]:
    """Tokenize a full declaration source (EOF token included)."""
    return list(Lexer(source).tokens())
